//! Machine-readable bench baseline for the CI perf trajectory.
//!
//! Runs two series once per configuration and reports, per series point:
//! name, `n` (batch size / fanout), median wall-clock nanoseconds over the
//! repetitions, and the `edges_scanned` work counter:
//!
//! * **T1 multi-source** — the per-source product loop, the bit-parallel
//!   batch engine, and the partitioned threaded driver;
//! * **T12 direction choice** — the forced-forward pair search against the
//!   `PlannedEngine`'s statistics-chosen backward search on the
//!   direction-skewed workload;
//! * **T13 incremental update** — absorbing a small edge batch through the
//!   `DeltaGraph` overlay against the full `CsrGraph` rebuild, plus
//!   evaluation over the live overlay (asserting the overlay is ≥ 5×
//!   cheaper and that the `PlannedEngine` plan memo survives the delta
//!   epoch);
//! * **T14 static analysis** — the `PlannedEngine`'s statically-empty
//!   fast path against the plain product engine on an
//!   alphabet-unsatisfiable query (asserting the planned side reports
//!   `edges_scanned == 0`), plus plan-time-certified rewrites on the
//!   cached-site workload against the unrewritten evaluation.
//! * **T15 hot path** — the direction-optimizing hybrid product BFS
//!   against the forced-sparse baseline on the high-fanout pull workload
//!   (asserting strictly fewer edge scans), warm pooled scratch against a
//!   cold arena per evaluation (asserting `scratch_reused > 0`; the
//!   cold-vs-warm median gap is the recorded series), and the
//!   multi-target lane kernel against the per-target backward loop
//!   (asserting strictly fewer edge scans).
//!
//! * **T16 serving** — end-to-end mixed read/write serving through the
//!   `rpq-server` session layer: N concurrent submissions against
//!   epoch-pinned snapshots racing two writer commits, plus the server's
//!   aggregated per-class p50/p99 latency (asserting the admission cap
//!   rejects above capacity and a budgeted query terminates early with
//!   `edges_scanned <= budget`).
//! * **T17 conjunctive join planning** — the cost-based atom order with
//!   semijoin propagation against the worst static order and the naive
//!   independent-atom evaluator on the hot/rare skew workload (asserting
//!   the planned order scans strictly fewer edges than both, with
//!   identical binding sets).
//! * **T18 intra-query parallelism** — the frontier-parallel product
//!   search and the wave-parallel batch kernel by degree of parallelism
//!   (asserting identical answers and identical `edges_scanned` at every
//!   DoP; the wall-clock speedup gate lives in the t18 bench, which can
//!   check core count).
//!
//! ```text
//! bench_baseline [--json PATH] [--repeats N]
//! ```
//!
//! Without `--json` the tables go to stdout; with it, the T1 document is
//! written to `PATH` and the T12–T18 documents to siblings
//! `BENCH_t12.json` … `BENCH_t18.json` (CI uploads all eight as the
//! bench-regression artifacts).

use std::time::Instant;

use rpq_automata::parse_regex;
use rpq_bench::{
    crpq_workload, direction_workload, distributed_workload, eval_workload, incremental_workload,
    multi_source_workload, multi_target_workload, pull_workload, skewed_workload,
};
use rpq_core::{
    eval_product_backward_reversed_csr, eval_product_csr, eval_product_csr_with,
    eval_product_pair_forward_csr, eval_product_to_batch_csr, Engine, EvalScratch, EvalStats,
    FrontierMode, ProductEngine, Query, ScratchPool,
};
use rpq_core::{EvalControl, EvalRequest, Termination};
use rpq_distributed::PartitionedBatchEngine;
use rpq_graph::{CsrGraph, DeltaGraph};
use rpq_optimizer::{
    execute_join, execute_naive, parse_crpq, plan_join, Direction, HeadBindings, PlannedEngine,
    PlannerConfig,
};
use rpq_server::{Catalog, QueryClass, Server, ServerConfig, SubmitError};

struct SeriesPoint {
    name: &'static str,
    n: usize,
    median_ns: u128,
    edges_scanned: usize,
}

/// Median wall-clock nanoseconds of `repeats` runs of `f`, plus the stats
/// of the last run (the workloads are deterministic, so any run's counters
/// are the series' counters).
fn measure(repeats: usize, mut f: impl FnMut() -> EvalStats) -> (u128, EvalStats) {
    let mut times: Vec<u128> = Vec::with_capacity(repeats);
    let mut stats = EvalStats::default();
    for _ in 0..repeats {
        let start = Instant::now();
        stats = f();
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut repeats = 15usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| {
                            eprintln!("--json requires a path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
                i += 2;
            }
            "--repeats" => {
                repeats = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--repeats requires a number >= 1");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_baseline [--json PATH] [--repeats N]");
                std::process::exit(2);
            }
        }
    }

    let mut points: Vec<SeriesPoint> = Vec::new();
    for &nsrc in &[16usize, 64] {
        let w = multi_source_workload(64, 32, nsrc);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);

        let (t, stats) = measure(repeats, || {
            let mut total = EvalStats::default();
            for &s in &w.sources {
                total.merge(&ProductEngine.eval(&query, &graph, s).stats);
            }
            total
        });
        points.push(SeriesPoint {
            name: "multi_per_source_loop",
            n: nsrc,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        let loop_edges = stats.edges_scanned;

        let (t, stats) = measure(repeats, || {
            ProductEngine.eval_batch(&query, &graph, &w.sources).stats
        });
        points.push(SeriesPoint {
            name: "multi_batch_bitparallel",
            n: nsrc,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert!(
            stats.edges_scanned < loop_edges,
            "bit-parallel batch must scan fewer edges than the loop \
             (batch {} vs loop {loop_edges} at n={nsrc})",
            stats.edges_scanned
        );

        let engine = PartitionedBatchEngine::new(4);
        let (t, stats) = measure(repeats, || {
            engine.eval_batch(&query, &graph, &w.sources).stats
        });
        points.push(SeriesPoint {
            name: "multi_batch_partitioned",
            n: nsrc,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
    }

    // T12 direction-choice series: forced-forward vs planned(backward)
    // pair reachability on the direction-skewed workload. The assertion
    // mirrors the t12 bench's acceptance criterion, so a planning
    // regression fails this job rather than shifting the baseline.
    let mut t12_points: Vec<SeriesPoint> = Vec::new();
    for &fanout in &[64usize, 256] {
        let w = direction_workload(fanout);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());
        assert_eq!(
            planned.plan(&query, &graph).direction,
            Direction::Backward,
            "planner must choose backward at fanout {fanout}"
        );

        let (t, stats) = measure(repeats, || {
            eval_product_pair_forward_csr(query.nfa(), &graph, w.source, w.target).stats
        });
        t12_points.push(SeriesPoint {
            name: "pair_forced_forward",
            n: fanout,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        let forced_edges = stats.edges_scanned;

        let (t, stats) = measure(repeats, || {
            planned.eval_pair(&query, &graph, w.source, w.target).stats
        });
        t12_points.push(SeriesPoint {
            name: "pair_planned_backward",
            n: fanout,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert!(
            stats.edges_scanned < forced_edges,
            "planned direction must scan strictly fewer edges than \
             forced-forward (planned {} vs forward {forced_edges} at fanout {fanout})",
            stats.edges_scanned
        );
    }

    // T13 incremental-update series: absorbing a small edge batch through
    // the DeltaGraph overlay vs the full CsrGraph rebuild, plus evaluation
    // over the live overlay. The assertions mirror the t13 bench's
    // acceptance criteria (overlay >= 5x cheaper; plan-cache hit across
    // the delta epoch), so a snapshot or memo regression fails this job
    // rather than shifting the baseline.
    let mut t13_points: Vec<SeriesPoint> = Vec::new();
    for &nodes in &[1024usize, 4096] {
        let w = incremental_workload(nodes, 16);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let inverse = w.delta.inverse();

        let mut dg = DeltaGraph::from_instance(&w.instance);
        let mut overlay_min = u128::MAX;
        let (overlay_ns, _) = measure(repeats, || {
            let start = Instant::now();
            dg.apply_delta(&w.delta);
            dg.apply_delta(&inverse);
            overlay_min = overlay_min.min(start.elapsed().as_nanos());
            EvalStats::default()
        });
        t13_points.push(SeriesPoint {
            name: "snapshot_delta_overlay",
            n: nodes,
            median_ns: overlay_ns,
            edges_scanned: w.delta.len(),
        });

        let (rebuild_ns, _) = measure(repeats, || {
            std::hint::black_box(CsrGraph::from(&w.instance));
            EvalStats::default()
        });
        t13_points.push(SeriesPoint {
            name: "snapshot_full_rebuild",
            n: nodes,
            median_ns: rebuild_ns,
            edges_scanned: w.instance.num_edges(),
        });
        // Gate the rebuild's median against the overlay's *minimum*:
        // scheduler noise can only inflate the microsecond-scale overlay
        // samples, so the minimum keeps this assertion deterministic on
        // loaded CI runners (the true gap is orders of magnitude).
        assert!(
            rebuild_ns >= 5 * overlay_min.max(1),
            "overlay snapshot must be >= 5x cheaper than a full rebuild              (overlay {overlay_min}ns vs rebuild {rebuild_ns}ns at {nodes} nodes)"
        );

        // plan memo survives the delta epoch
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());
        planned.plan(&query, &dg);
        dg.apply_delta(&w.delta);
        let res = planned.eval_view(&query, &dg, w.source);
        assert_eq!(
            (res.stats.plan_cache_hits, res.stats.plan_cache_misses),
            (1, 0),
            "PlannedEngine must report a plan-cache hit across the delta epoch"
        );

        let (t, stats) = measure(repeats, || {
            eval_product_csr(query.nfa(), &dg, w.source).stats
        });
        t13_points.push(SeriesPoint {
            name: "eval_over_delta",
            n: nodes,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
    }

    // T14 static-analysis series: the statically-empty fast path vs the
    // plain engine discovering emptiness by traversal, and the certified
    // constraint rewrite vs the unrewritten query. The empty-side
    // assertion mirrors the t14 bench's acceptance criterion
    // (`edges_scanned == 0`), so an analysis regression fails this job
    // rather than shifting the baseline.
    let mut t14_points: Vec<SeriesPoint> = Vec::new();
    for &depth in &[64usize, 256] {
        let mut w = skewed_workload(depth, 32);
        let ghost_q = parse_regex(&mut w.alphabet, "ghost.cold*").unwrap();
        let ghost_query = Query::new(ghost_q, &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::unconstrained(ProductEngine, w.alphabet.clone());

        let (t, stats) = measure(repeats, || {
            planned.eval(&ghost_query, &graph, w.source).stats
        });
        t14_points.push(SeriesPoint {
            name: "analysis_empty_planned",
            n: depth,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert_eq!(
            stats.edges_scanned, 0,
            "statically empty query must not scan edges at depth {depth}"
        );

        let (t, stats) = measure(repeats, || {
            ProductEngine.eval(&ghost_query, &graph, w.source).stats
        });
        t14_points.push(SeriesPoint {
            name: "analysis_empty_plain",
            n: depth,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
    }
    for &depth in &[32usize, 128] {
        let w = distributed_workload(depth);
        let query = Query::new(w.query.clone(), &w.alphabet);
        let graph = CsrGraph::from(&w.instance);
        let planned = PlannedEngine::new(ProductEngine, w.constraints.clone(), w.alphabet.clone());
        let plan = planned.plan(&query, &graph);
        assert_eq!(
            plan.facts.rewrites_certified, 1,
            "cache-substitution rewrite must certify at depth {depth}"
        );

        let (t, stats) = measure(repeats, || planned.eval(&query, &graph, w.source).stats);
        t14_points.push(SeriesPoint {
            name: "analysis_certified_rewrite",
            n: depth,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });

        let (t, stats) = measure(repeats, || {
            ProductEngine.eval(&query, &graph, w.source).stats
        });
        t14_points.push(SeriesPoint {
            name: "analysis_plain_query",
            n: depth,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
    }

    // T15 hot-path series: hybrid vs forced-sparse on the pull workload,
    // warm pooled scratch vs cold allocation, and the multi-target lane
    // kernel vs the per-target backward loop. The assertions mirror the
    // t15 bench's acceptance criteria, so a hot-path regression fails this
    // job rather than shifting the baseline.
    let mut t15_points: Vec<SeriesPoint> = Vec::new();
    for &hubs in &[48usize, 96] {
        let w = pull_workload(hubs);
        let graph = CsrGraph::from(&w.instance);
        let nfa = rpq_automata::Nfa::thompson(&w.query);

        let mut scratch = EvalScratch::new();
        let (t, stats) = measure(repeats, || {
            eval_product_csr_with(
                &nfa,
                &graph,
                w.source,
                FrontierMode::ForcedSparse,
                &mut scratch,
            )
            .stats
        });
        t15_points.push(SeriesPoint {
            name: "hot_pull_sparse",
            n: hubs,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        let sparse_edges = stats.edges_scanned;

        let (t, stats) = measure(repeats, || {
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch).stats
        });
        t15_points.push(SeriesPoint {
            name: "hot_pull_hybrid",
            n: hubs,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert!(
            stats.pull_levels >= 1 && stats.edges_scanned < sparse_edges,
            "hybrid must pull and scan strictly fewer edges than forced-sparse \
             (hybrid {} vs sparse {sparse_edges} at {hubs} hubs)",
            stats.edges_scanned
        );
    }
    {
        let w = eval_workload(11, 400);
        let graph = CsrGraph::from(&w.instance);
        let nfa = rpq_automata::Nfa::thompson(&w.queries[3].1); // `broad`
        let pool = ScratchPool::new();
        drop(pool.checkout()); // warm the pool before measuring

        let (t, stats) = measure(repeats, || {
            let mut scratch = pool.checkout();
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch).stats
        });
        t15_points.push(SeriesPoint {
            name: "hot_warm_scratch",
            n: 400,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert!(
            stats.scratch_reused > 0,
            "warm pooled evaluation must report scratch reuse"
        );
        assert_eq!(pool.allocs(), 1, "warm series must not grow the pool");

        let (t, stats) = measure(repeats, || {
            let mut scratch = EvalScratch::new();
            eval_product_csr_with(&nfa, &graph, w.source, FrontierMode::Hybrid, &mut scratch).stats
        });
        t15_points.push(SeriesPoint {
            name: "hot_cold_alloc",
            n: 400,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
    }
    for &targets_n in &[16usize, 64] {
        let w = multi_target_workload(64, 16, targets_n);
        let graph = CsrGraph::from(&w.instance);
        let reversed = rpq_automata::Nfa::thompson(&w.query).reverse();

        let (t, stats) = measure(repeats, || {
            let mut total = EvalStats::default();
            for &target in &w.targets {
                total.merge(&eval_product_backward_reversed_csr(&reversed, &graph, target).stats);
            }
            total
        });
        t15_points.push(SeriesPoint {
            name: "hot_looped_eval_to",
            n: targets_n,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        let loop_edges = stats.edges_scanned;

        let (t, stats) = measure(repeats, || {
            eval_product_to_batch_csr(&reversed, &graph, &w.targets).stats
        });
        t15_points.push(SeriesPoint {
            name: "hot_lanes_to_batch",
            n: targets_n,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert!(
            stats.edges_scanned < loop_edges,
            "multi-target lanes must scan strictly fewer edges than the loop \
             (lanes {} vs loop {loop_edges} at n={targets_n})",
            stats.edges_scanned
        );
    }

    // T16 serving series: N concurrent sessions submit through the shared
    // planner while the writer commits a delta batch and its inverse; one
    // measured unit is submissions + commits + joins. The p50/p99 points
    // come from the server's own per-class latency aggregation. The
    // assertions mirror the t16 bench's acceptance criteria (admission
    // cap enforced, budgeted queries terminate early within budget), so a
    // serving regression fails this job rather than shifting the
    // baseline.
    let mut t16_points: Vec<SeriesPoint> = Vec::new();
    for &readers in &[4usize, 8] {
        let w = incremental_workload(1024, 16);
        let catalog = std::sync::Arc::new(Catalog::from_instance(&w.instance));
        let server = Server::new(catalog.clone(), w.alphabet.clone()).with_config(ServerConfig {
            max_concurrent: readers,
            ..ServerConfig::default()
        });
        let query = Query::new(w.query.clone(), &w.alphabet);
        let inverse = w.delta.inverse();

        let (t, stats) = measure(repeats, || {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    server
                        .session()
                        .submit(&query, EvalRequest::source(w.source))
                        .expect("under cap")
                })
                .collect();
            catalog.commit(&w.delta);
            catalog.commit(&inverse);
            let mut total = EvalStats::default();
            for h in handles {
                total.merge(&h.join().stats);
            }
            total
        });
        t16_points.push(SeriesPoint {
            name: "serve_mixed_read_write",
            n: readers,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });

        let snap = server.metrics().class(QueryClass::Single);
        assert!(
            snap.queries >= readers,
            "the serving series must record per-class metrics"
        );
        assert!(snap.p50_latency_ns <= snap.p99_latency_ns);
        t16_points.push(SeriesPoint {
            name: "serve_p50_latency",
            n: readers,
            median_ns: snap.p50_latency_ns as u128,
            edges_scanned: snap.edges_scanned,
        });
        t16_points.push(SeriesPoint {
            name: "serve_p99_latency",
            n: readers,
            median_ns: snap.p99_latency_ns as u128,
            edges_scanned: snap.edges_scanned,
        });

        // Admission: with every slot held, the next submission rejects.
        let session = server.session();
        let held: Vec<_> = (0..readers)
            .map(|_| {
                session
                    .submit(&query, EvalRequest::source(w.source))
                    .expect("fills a slot")
            })
            .collect();
        assert!(
            matches!(
                session.submit(&query, EvalRequest::source(w.source)),
                Err(SubmitError::Rejected { .. })
            ),
            "admission must reject above the cap at readers={readers}"
        );
        for h in held {
            let _ = h.join();
        }

        // Budgets: a tiny explicit budget terminates the broad closure
        // early, never scanning past the budget.
        let broad = {
            let mut ab = w.alphabet.clone();
            Query::parse(&mut ab, "(l0+l1+l2)*").unwrap()
        };
        let resp = session
            .submit(&broad, EvalRequest::source(w.source).with_budget(8))
            .expect("under cap")
            .join();
        assert_eq!(
            resp.termination,
            Termination::BudgetExhausted,
            "the broad closure must exhaust an 8-edge budget"
        );
        assert!(
            resp.stats.edges_scanned <= 8,
            "scanned {} > budget 8",
            resp.stats.edges_scanned
        );
    }

    // T17 conjunctive-join series: the cost-based atom order (rare
    // bottleneck first, hot atom backward from the bound join variable)
    // against the worst static order and the naive independent-atom
    // evaluator. The assertions mirror the t17 bench's acceptance
    // criteria, so a join-planning regression fails this job rather than
    // shifting the baseline.
    let mut t17_points: Vec<SeriesPoint> = Vec::new();
    for &n_src in &[64usize, 256] {
        let w = crpq_workload(n_src, 16);
        let mut ab = w.alphabet.clone();
        let crpq = parse_crpq(&mut ab, w.text).expect("workload text parses");
        let graph = CsrGraph::from(&w.instance);
        let plan = plan_join(
            &crpq,
            graph.stats(),
            &PlannerConfig::default(),
            false,
            false,
        );
        let run = |order: &[usize]| {
            let mut scratch = EvalScratch::new();
            execute_join(
                &crpq,
                order,
                &graph,
                HeadBindings::default(),
                FrontierMode::Hybrid,
                &EvalControl::UNLIMITED,
                &mut scratch,
            )
        };

        let (t, stats) = measure(repeats, || run(&plan.order).stats);
        t17_points.push(SeriesPoint {
            name: "crpq_planned_order",
            n: n_src,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        let planned_edges = stats.edges_scanned;
        let planned_pairs = run(&plan.order).pairs;
        assert_eq!(
            planned_pairs.len(),
            w.answers,
            "every source must reach the sink at n_src={n_src}"
        );

        let worst_order = [vec![0usize, 1], vec![1, 0]]
            .into_iter()
            .max_by_key(|o| run(o).stats.edges_scanned)
            .unwrap();
        let (t, stats) = measure(repeats, || run(&worst_order).stats);
        t17_points.push(SeriesPoint {
            name: "crpq_worst_static_order",
            n: n_src,
            median_ns: t,
            edges_scanned: stats.edges_scanned,
        });
        assert_eq!(
            run(&worst_order).pairs,
            planned_pairs,
            "atom order must never change semantics at n_src={n_src}"
        );
        assert!(
            planned_edges * 2 < stats.edges_scanned,
            "planned order must scan strictly fewer edges than the worst \
             static order (planned {planned_edges} vs worst {} at n_src={n_src})",
            stats.edges_scanned
        );

        let (t, _) = measure(repeats, || {
            let (pairs, edges) = execute_naive(&crpq, &graph, HeadBindings::default());
            EvalStats {
                edges_scanned: edges,
                answers: pairs.len(),
                ..Default::default()
            }
        });
        let (naive_pairs, naive_edges) = execute_naive(&crpq, &graph, HeadBindings::default());
        t17_points.push(SeriesPoint {
            name: "crpq_naive_independent",
            n: n_src,
            median_ns: t,
            edges_scanned: naive_edges,
        });
        assert_eq!(naive_pairs, planned_pairs);
        assert!(
            planned_edges < naive_edges,
            "semijoin propagation must scan fewer edges than independent \
             atom evaluation (planned {planned_edges} vs naive {naive_edges} \
             at n_src={n_src})"
        );
    }

    // T18 intra-query parallelism series: the frontier-parallel product
    // search and the wave-parallel batch kernel by degree of parallelism,
    // against their sequential siblings on a broad-closure web workload.
    // The assertions mirror the t18 bench's acceptance criteria (identical
    // answers and identical edges_scanned at every DoP — set-identical
    // levels price identically), so a parallel-soundness regression fails
    // this job rather than shifting the baseline. Timing claims live in
    // the t18 bench gate, not here: this job may run on loaded or
    // single-core runners, where only the work counters are stable.
    let mut t18_points: Vec<SeriesPoint> = Vec::new();
    {
        use rpq_core::{eval_product_batch_parallel_csr_with, eval_product_parallel_csr_with};
        use rpq_graph::Oid;
        let w = eval_workload(13, 4_000);
        let graph = CsrGraph::from(&w.instance);
        let broad = rpq_automata::Nfa::thompson(&w.queries[3].1);
        let pool = ScratchPool::with_capacity(8);
        let mut scratch = EvalScratch::new();
        let seq =
            eval_product_csr_with(&broad, &graph, w.source, FrontierMode::Hybrid, &mut scratch);
        let sources: Vec<Oid> = (0..graph.num_nodes() as u32).step_by(16).map(Oid).collect();
        let seq_batch = {
            use rpq_core::eval_product_batch_csr_with;
            eval_product_batch_csr_with(&broad, &graph, &sources, &mut scratch)
        };
        for &dop in &[1usize, 2, 4] {
            let (t, stats) = measure(repeats, || {
                eval_product_parallel_csr_with(
                    &broad,
                    &graph,
                    w.source,
                    None,
                    FrontierMode::Hybrid,
                    &EvalControl::UNLIMITED,
                    dop,
                    &pool,
                    &mut scratch,
                )
                .0
                .stats
            });
            t18_points.push(SeriesPoint {
                name: match dop {
                    1 => "par_product_dop1",
                    2 => "par_product_dop2",
                    _ => "par_product_dop4",
                },
                n: dop,
                median_ns: t,
                edges_scanned: stats.edges_scanned,
            });
            assert_eq!(
                stats.edges_scanned, seq.stats.edges_scanned,
                "parallel product search must price exactly like sequential at dop={dop}"
            );
            let (par, _) = eval_product_parallel_csr_with(
                &broad,
                &graph,
                w.source,
                None,
                FrontierMode::Hybrid,
                &EvalControl::UNLIMITED,
                dop,
                &pool,
                &mut scratch,
            );
            assert_eq!(
                par.answers, seq.answers,
                "parallel product search diverged at dop={dop}"
            );

            let (t, stats) = measure(repeats, || {
                eval_product_batch_parallel_csr_with(
                    &broad,
                    &graph,
                    &sources,
                    dop,
                    &pool,
                    &mut scratch,
                )
                .stats
            });
            t18_points.push(SeriesPoint {
                name: match dop {
                    1 => "par_batch_dop1",
                    2 => "par_batch_dop2",
                    _ => "par_batch_dop4",
                },
                n: dop,
                median_ns: t,
                edges_scanned: stats.edges_scanned,
            });
            let par_batch = eval_product_batch_parallel_csr_with(
                &broad,
                &graph,
                &sources,
                dop,
                &pool,
                &mut scratch,
            );
            assert_eq!(
                par_batch.per_source(),
                seq_batch.per_source(),
                "wave-parallel batch diverged at dop={dop}"
            );
        }
    }

    for (title, pts) in [
        ("t1_multi_source", &points),
        ("t12_direction_choice", &t12_points),
        ("t13_incremental_update", &t13_points),
        ("t14_static_analysis", &t14_points),
        ("t15_hot_path", &t15_points),
        ("t16_serving", &t16_points),
        ("t17_crpq", &t17_points),
        ("t18_parallel", &t18_points),
    ] {
        println!("\n[{title}]");
        println!(
            "{:<28} {:>6} {:>14} {:>14}",
            "series", "n", "median_ns", "edges_scanned"
        );
        for p in pts {
            println!(
                "{:<28} {:>6} {:>14} {:>14}",
                p.name, p.n, p.median_ns, p.edges_scanned
            );
        }
    }

    if let Some(path) = json_path {
        write_doc(&path, "t1_multi_source", repeats, &points);
        // The T12 series lands next to the T1 artifact regardless of how
        // that file is named.
        let sibling = |name: &str| match std::path::Path::new(&path).parent() {
            Some(dir) if !dir.as_os_str().is_empty() => {
                dir.join(name).to_string_lossy().into_owned()
            }
            _ => name.to_owned(),
        };
        write_doc(
            &sibling("BENCH_t12.json"),
            "t12_direction_choice",
            repeats,
            &t12_points,
        );
        write_doc(
            &sibling("BENCH_t13.json"),
            "t13_incremental_update",
            repeats,
            &t13_points,
        );
        write_doc(
            &sibling("BENCH_t14.json"),
            "t14_static_analysis",
            repeats,
            &t14_points,
        );
        write_doc(
            &sibling("BENCH_t15.json"),
            "t15_hot_path",
            repeats,
            &t15_points,
        );
        write_doc(
            &sibling("BENCH_t16.json"),
            "t16_serving",
            repeats,
            &t16_points,
        );
        write_doc(&sibling("BENCH_t17.json"), "t17_crpq", repeats, &t17_points);
        write_doc(
            &sibling("BENCH_t18.json"),
            "t18_parallel",
            repeats,
            &t18_points,
        );
    }
}

/// Write one `{bench, repeats, series: [...]}` JSON document. Series names
/// are static identifiers, so plain formatting is valid JSON without an
/// escaping pass.
fn write_doc(path: &str, bench: &str, repeats: usize, points: &[SeriesPoint]) {
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"median_ns\": {}, \"edges_scanned\": {}}}",
                p.name, p.n, p.median_ns, p.edges_scanned
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"repeats\": {repeats},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    std::fs::write(path, doc).unwrap_or_else(|e| {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}
