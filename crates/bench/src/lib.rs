//! Shared workloads for the experiment harness.
//!
//! Every experiment in `EXPERIMENTS.md` (T1–T7) draws its inputs from here
//! so that `cargo bench` and the `paper-figures` binary agree on what is
//! being measured. All generation is seeded — rerunning reproduces the same
//! graphs, queries, and constraint systems.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq_automata::{parse_regex, Alphabet, Regex, Symbol};
use rpq_constraints::{ConstraintKind, ConstraintSet, PathConstraint};
use rpq_graph::generators::web_graph;
use rpq_graph::{EdgeDelta, Instance, Oid};

/// A web-like evaluation workload: graph, source, and a query suite over
/// labels `l0..l2`.
pub struct EvalWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance.
    pub instance: Instance,
    /// Evaluation source.
    pub source: Oid,
    /// Named queries.
    pub queries: Vec<(&'static str, Regex)>,
}

/// Build the T1 workload with roughly `nodes` nodes.
pub fn eval_workload(seed: u64, nodes: usize) -> EvalWorkload {
    let mut alphabet = Alphabet::new();
    let labels: Vec<Symbol> = (0..3).map(|i| alphabet.intern(&format!("l{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (instance, source) = web_graph(&mut rng, nodes, 3, &labels);
    let queries = [
        ("chain", "l0.l1.l2"),
        ("star", "l0.(l1+l2)*"),
        ("nested", "(l0.l1)*.l2"),
        ("broad", "(l0+l1+l2)*"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_regex(&mut alphabet, src).unwrap()))
    .collect();
    EvalWorkload {
        alphabet,
        instance,
        source,
        queries,
    }
}

/// A label-skewed evaluation workload: a spine of rare `cold`-labeled
/// edges where every spine node also fans out `hot_fanout` edges on one
/// hot label. The query `cold*` walks the spine only, so a label-indexed
/// engine touches `O(depth)` edges while a scan-and-filter engine pays the
/// hot fanout at every step — the T1 skew experiment.
pub struct SkewedWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance (build form; snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// Evaluation source (spine head).
    pub source: Oid,
    /// The spine query `cold*`.
    pub query: Regex,
}

/// Build the skewed workload: `depth` spine nodes, each with `hot_fanout`
/// hot edges into a shared target pool (shared so the node count — and
/// with it the engines' per-run allocation — stays small; the skew lives
/// in the *edges*, which is what the label index prunes).
pub fn skewed_workload(depth: usize, hot_fanout: usize) -> SkewedWorkload {
    let mut alphabet = Alphabet::new();
    let cold = alphabet.intern("cold");
    let hot = alphabet.intern("hot");
    let mut instance = Instance::new();
    let mut spine: Vec<Oid> = (0..=depth).map(|_| instance.add_node()).collect();
    let pool: Vec<Oid> = (0..hot_fanout).map(|_| instance.add_node()).collect();
    for i in 0..depth {
        instance.add_edge(spine[i], cold, spine[i + 1]);
        for &target in &pool {
            instance.add_edge(spine[i], hot, target);
        }
    }
    let source = spine.remove(0);
    let query = parse_regex(&mut alphabet, "cold*").unwrap();
    SkewedWorkload {
        alphabet,
        instance,
        source,
        query,
    }
}

/// A multi-source, shared-prefix evaluation workload: `n_sources` entry
/// nodes each hold one `cold` edge into the head of a shared spine (plus
/// `hot_fanout` hot-label noise edges, keeping the label skew), so every
/// source's search funnels into the same suffix. The query `cold*` walks
/// entry + spine. A per-source loop re-walks the spine once per source
/// (`O(n_sources × depth)` edge scans); the bit-parallel batch engine
/// walks it once with all source lanes merged (`O(n_sources + depth)`) —
/// the T1 multi-source experiment.
pub struct MultiSourceWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance (build form; snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// The batch of evaluation sources (the entry nodes).
    pub sources: Vec<Oid>,
    /// The spine query `cold*`.
    pub query: Regex,
}

/// Build the multi-source shared-prefix workload: `n_sources` entries ×
/// one shared spine of `depth` cold edges, `hot_fanout` hot edges per
/// entry and per spine node into a shared target pool.
pub fn multi_source_workload(
    depth: usize,
    hot_fanout: usize,
    n_sources: usize,
) -> MultiSourceWorkload {
    let mut alphabet = Alphabet::new();
    let cold = alphabet.intern("cold");
    let hot = alphabet.intern("hot");
    let mut instance = Instance::new();
    let spine: Vec<Oid> = (0..=depth).map(|_| instance.add_node()).collect();
    let pool: Vec<Oid> = (0..hot_fanout).map(|_| instance.add_node()).collect();
    let sources: Vec<Oid> = (0..n_sources).map(|_| instance.add_node()).collect();
    for i in 0..depth {
        instance.add_edge(spine[i], cold, spine[i + 1]);
        for &target in &pool {
            instance.add_edge(spine[i], hot, target);
        }
    }
    for &entry in &sources {
        instance.add_edge(entry, cold, spine[0]);
        for &target in &pool {
            instance.add_edge(entry, hot, target);
        }
    }
    let query = parse_regex(&mut alphabet, "cold*").unwrap();
    MultiSourceWorkload {
        alphabet,
        instance,
        sources,
        query,
    }
}

/// A high-fanout pull workload (T15): one source fanning into a complete
/// digraph of `hubs` nodes on a single label, queried with `h*`. After the
/// first BFS level every hub pair is reached, so the sparse push sweep
/// re-scans all `hubs²` edges to discover nothing, while the
/// direction-optimizing hybrid's shrinking pull bound collapses to ~0 and
/// the pull sweep probes almost nothing — the shape where
/// `FrontierMode::Hybrid` must scan *strictly* fewer edges than
/// `FrontierMode::ForcedSparse`.
pub struct PullWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance (build form; snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// Evaluation source (the fan root).
    pub source: Oid,
    /// The saturating query `h*`.
    pub query: Regex,
}

/// Build the T15 pull workload over a complete digraph of `hubs` nodes.
pub fn pull_workload(hubs: usize) -> PullWorkload {
    let mut alphabet = Alphabet::new();
    let h = alphabet.intern("h");
    let mut instance = Instance::new();
    let source = instance.add_node();
    let hub_ids: Vec<Oid> = (0..hubs).map(|_| instance.add_node()).collect();
    for &hub in &hub_ids {
        instance.add_edge(source, h, hub);
    }
    for &a in &hub_ids {
        for &b in &hub_ids {
            if a != b {
                instance.add_edge(a, h, b);
            }
        }
    }
    let query = parse_regex(&mut alphabet, "h*").unwrap();
    PullWorkload {
        alphabet,
        instance,
        source,
        query,
    }
}

/// A multi-target funnel workload (T15): `n_targets` exit nodes hang off
/// the tail of a shared `cold` spine (plus hot-label noise edges *into*
/// the spine, keeping the reverse-adjacency label skew). The query `cold*`
/// asked backward from each exit walks the same spine, so a per-target
/// `eval_to` loop pays `O(n_targets × depth)` edge scans while the
/// bit-parallel multi-target lane kernel walks the reverse spine once with
/// all target lanes merged — `O(n_targets + depth)`.
pub struct MultiTargetWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance (build form; snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// The batch of evaluation targets (the exit nodes).
    pub targets: Vec<Oid>,
    /// The spine query `cold*`.
    pub query: Regex,
}

/// Build the multi-target funnel: a spine of `depth` cold edges whose tail
/// fans into `n_targets` exits, `hot_fanout` hot noise edges into each
/// spine node from a shared pool.
pub fn multi_target_workload(
    depth: usize,
    hot_fanout: usize,
    n_targets: usize,
) -> MultiTargetWorkload {
    let mut alphabet = Alphabet::new();
    let cold = alphabet.intern("cold");
    let hot = alphabet.intern("hot");
    let mut instance = Instance::new();
    let spine: Vec<Oid> = (0..=depth).map(|_| instance.add_node()).collect();
    let pool: Vec<Oid> = (0..hot_fanout).map(|_| instance.add_node()).collect();
    let targets: Vec<Oid> = (0..n_targets).map(|_| instance.add_node()).collect();
    for i in 0..depth {
        instance.add_edge(spine[i], cold, spine[i + 1]);
        for &noise in &pool {
            instance.add_edge(noise, hot, spine[i]);
        }
    }
    for &exit in &targets {
        instance.add_edge(spine[depth], cold, exit);
        for &noise in &pool {
            instance.add_edge(noise, hot, exit);
        }
    }
    let query = parse_regex(&mut alphabet, "cold*").unwrap();
    MultiTargetWorkload {
        alphabet,
        instance,
        targets,
        query,
    }
}

/// A direction-skewed pair workload (T12): the chain query
/// `hot.hot.cold` from `source` to `target` over a graph whose *first*
/// label group is plentiful (`source` fans out `fanout` hot edges, each
/// hot target fans on once more) while the *last* label group is a single
/// cold edge into `target`. A forward search pays ~`2·fanout` edge scans
/// before reaching the cold step; the backward search enters through the
/// one cold edge and walks ~3 edges total — the direction planner must
/// pick backward here, and win by ~`fanout/1.5`×.
pub struct DirectionWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The instance (build form; snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// Pair-query source (the hot fan root).
    pub source: Oid,
    /// Pair-query target (the cold sink).
    pub target: Oid,
    /// The chain query `hot.hot.cold`.
    pub query: Regex,
}

/// Build the T12 direction-skew workload with the given hot fanout.
pub fn direction_workload(fanout: usize) -> DirectionWorkload {
    let mut alphabet = Alphabet::new();
    let hot = alphabet.intern("hot");
    let cold = alphabet.intern("cold");
    let mut instance = Instance::new();
    let source = instance.add_node();
    let firsts: Vec<Oid> = (0..fanout).map(|_| instance.add_node()).collect();
    let seconds: Vec<Oid> = (0..fanout).map(|_| instance.add_node()).collect();
    let target = instance.add_node();
    for i in 0..fanout {
        instance.add_edge(source, hot, firsts[i]);
        instance.add_edge(firsts[i], hot, seconds[i]);
    }
    instance.add_edge(seconds[0], cold, target);
    let query = parse_regex(&mut alphabet, "hot.hot.cold").unwrap();
    DirectionWorkload {
        alphabet,
        instance,
        source,
        target,
        query,
    }
}

/// An incremental-update workload (T13): a web-like base graph plus a
/// small [`EdgeDelta`] batch over its existing nodes. The comparison under
/// test: absorbing the batch through a `rpq_graph::DeltaGraph` overlay
/// (`O(batch)` sorted-log patches) versus the full `CsrGraph::from`
/// rebuild (`O(V + E)` re-sort) the seed architecture paid per mutation.
pub struct IncrementalWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The base instance (snapshot with `CsrGraph::from` or wrap in a
    /// `DeltaGraph`).
    pub instance: Instance,
    /// The small mutation batch (adds and deletes over existing nodes).
    pub delta: EdgeDelta,
    /// Evaluation source for the post-delta query checks.
    pub source: Oid,
    /// The evaluation query `l0.(l1+l2)*`.
    pub query: Regex,
}

/// Build the T13 workload: a seeded `web_graph` with roughly `3 × nodes`
/// edges and a delta of `batch` adds plus `batch / 2` deletes drawn over
/// the same node set (deterministic from the sizes).
pub fn incremental_workload(nodes: usize, batch: usize) -> IncrementalWorkload {
    use rand::Rng as _;
    let mut alphabet = Alphabet::new();
    let labels: Vec<Symbol> = (0..3).map(|i| alphabet.intern(&format!("l{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(nodes as u64 ^ 0x7d13);
    let (instance, source) = web_graph(&mut rng, nodes, 3, &labels);

    let mut delta = EdgeDelta::new();
    let existing: Vec<(Oid, Symbol, Oid)> = instance.edges().collect();
    for _ in 0..batch / 2 {
        let (f, l, t) = existing[rng.random_range(0..existing.len())];
        delta.del(f, l, t);
    }
    let n = instance.num_nodes() as u32;
    for _ in 0..batch {
        let f = Oid(rng.random_range(0..n));
        let t = Oid(rng.random_range(0..n));
        let l = labels[rng.random_range(0..labels.len())];
        delta.add(f, l, t);
    }
    let query = parse_regex(&mut alphabet, "l0.(l1+l2)*").unwrap();
    IncrementalWorkload {
        alphabet,
        instance,
        delta,
        source,
        query,
    }
}

/// A word-constraint system of `n_rules` rules over `sigma` letters with
/// words of length ≤ `max_len` (T2): deterministic from the seed, always
/// free of derived-emptiness degeneracies (right-hand sides are non-empty).
pub fn word_system(
    seed: u64,
    sigma: usize,
    n_rules: usize,
    max_len: usize,
) -> (Alphabet, ConstraintSet) {
    use rand::Rng as _;
    let mut alphabet = Alphabet::new();
    let syms: Vec<Symbol> = (0..sigma)
        .map(|i| alphabet.intern(&format!("w{i}")))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut constraints = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let lu = rng.random_range(1..=max_len);
        let lv = rng.random_range(1..=max_len);
        let u: Vec<Symbol> = (0..lu).map(|_| syms[rng.random_range(0..sigma)]).collect();
        let v: Vec<Symbol> = (0..lv).map(|_| syms[rng.random_range(0..sigma)]).collect();
        constraints.push(PathConstraint {
            lhs: Regex::word(&u),
            rhs: Regex::word(&v),
            kind: if rng.random_range(0..2) == 0 {
                ConstraintKind::Inclusion
            } else {
                ConstraintKind::Equality
            },
        });
    }
    (alphabet, ConstraintSet::from_constraints(constraints))
}

/// The T3 regex family: nested alternation/star towers of the given depth
/// whose inclusion checks exercise determinization.
pub fn regex_pair(alphabet: &mut Alphabet, depth: usize) -> (Regex, Regex) {
    // p_d = (a.b)^d . (a+b)*   and   q_d = (a.(b+()))^d . (a+b)*
    let mut p = String::new();
    let mut q = String::new();
    for _ in 0..depth {
        p.push_str("a.b.");
        q.push_str("a.(b+()).");
    }
    p.push_str("(a+b)*");
    q.push_str("(a+b)*");
    (
        parse_regex(alphabet, &p).unwrap(),
        parse_regex(alphabet, &q).unwrap(),
    )
}

/// The T4 equality systems, ordered by expected sphere size.
pub fn boundedness_systems() -> Vec<(&'static str, Vec<&'static str>, &'static str)> {
    vec![
        ("idempotent", vec!["a.a = a"], "a*"),
        ("cycle3", vec!["a.a.a = ()"], "a*"),
        ("commute", vec!["a.b = b.a"], "(a.b)*"),
        ("absorb", vec!["b.a = a", "b.b = b"], "b*.a"),
        ("mixed", vec!["a.b.a = b", "b.b = a.a"], "(a+b).(a+b)"),
    ]
}

/// T5: a cached-site distributed workload: the query `(a.b)*` cached as `l`
/// on a deep alternating backbone with trap branches; returns everything a
/// bench needs to run plain vs optimized.
pub struct DistributedWorkload {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// The site graph.
    pub instance: Instance,
    /// Query source (where the cache constraint holds).
    pub source: Oid,
    /// The recursive query.
    pub query: Regex,
    /// The constraints holding at the source.
    pub constraints: ConstraintSet,
}

/// Build the T5 workload with a backbone of `depth` a·b segments.
pub fn distributed_workload(depth: usize) -> DistributedWorkload {
    let mut alphabet = Alphabet::new();
    let a = alphabet.intern("a");
    let b = alphabet.intern("b");
    let l = alphabet.intern("l");
    let mut instance = Instance::new();
    let v0 = instance.add_named_node("v0");
    let mut prev = v0;
    let mut evens = vec![v0];
    for i in 1..=2 * depth {
        let v = instance.add_named_node(&format!("v{i}"));
        instance.add_edge(prev, if i % 2 == 1 { a } else { b }, v);
        if i % 2 == 0 {
            evens.push(v);
            let trap = instance.add_node();
            instance.add_edge(v, a, trap);
        }
        prev = v;
    }
    for &e in &evens {
        instance.add_edge(v0, l, e);
    }
    let query = parse_regex(&mut alphabet, "(a.b)*").unwrap();
    let constraints = ConstraintSet::parse(&mut alphabet, ["l = (a.b)*"]).unwrap();
    DistributedWorkload {
        alphabet,
        instance,
        source: v0,
        query,
        constraints,
    }
}

/// A join-order-skewed conjunctive workload (T17). `n_src` source nodes
/// each fan out on `hot` across `spread` hub nodes, but only hub 0
/// continues on `rare` to a single sink. For the CRPQ
/// `ans(x, z) :- x -[hot]-> y, y -[rare]-> z` the cost-based planner
/// must pick the rare atom first (one edge, binds `y = hub0`) and then
/// run the hot atom *backward* from the bound hub — scanning `n_src + 1`
/// edges total — while the worst static order (hot atom first, unbound)
/// scans all `n_src × spread` hot edges before the join prunes anything.
pub struct CrpqWorkload {
    /// Shared alphabet (`hot`, `rare`).
    pub alphabet: Alphabet,
    /// The instance (snapshot with `CsrGraph::from`).
    pub instance: Instance,
    /// The conjunctive query text (parse with `rpq_optimizer::parse_crpq`
    /// against [`CrpqWorkload::alphabet`]).
    pub text: &'static str,
    /// Total `hot` edges (`n_src × spread`) — the worst order's scan bill.
    pub hot_edges: usize,
    /// Expected answer count (`n_src`: every source reaches the sink via
    /// hub 0).
    pub answers: usize,
}

/// Build the T17 workload with `n_src` sources fanning over `spread` hubs.
pub fn crpq_workload(n_src: usize, spread: usize) -> CrpqWorkload {
    let mut alphabet = Alphabet::new();
    let hot = alphabet.intern("hot");
    let rare = alphabet.intern("rare");
    let mut instance = Instance::new();
    let hubs: Vec<Oid> = (0..spread).map(|_| instance.add_node()).collect();
    for _ in 0..n_src {
        let s = instance.add_node();
        for &h in &hubs {
            instance.add_edge(s, hot, h);
        }
    }
    let sink = instance.add_node();
    instance.add_edge(hubs[0], rare, sink);
    CrpqWorkload {
        alphabet,
        instance,
        text: "ans(x, z) :- x -[hot]-> y, y -[rare]-> z",
        hot_edges: n_src * spread,
        answers: n_src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let w1 = eval_workload(3, 50);
        let w2 = eval_workload(3, 50);
        assert_eq!(w1.instance.num_edges(), w2.instance.num_edges());
        assert_eq!(w1.queries.len(), 4);
    }

    #[test]
    fn skewed_workload_shape() {
        let w = skewed_workload(16, 32);
        assert_eq!(w.instance.num_edges(), 16 * 33);
        let csr = rpq_graph::CsrGraph::from(&w.instance);
        let hot = w.alphabet.get("hot").unwrap();
        let cold = w.alphabet.get("cold").unwrap();
        assert_eq!(csr.stats().edge_count(hot), 16 * 32);
        assert_eq!(csr.stats().edge_count(cold), 16);
        assert_eq!(csr.stats().hottest(), Some(hot));
    }

    #[test]
    fn pull_workload_triggers_the_pull_sweep() {
        use rpq_core::{eval_product_csr_with, EvalScratch, FrontierMode};
        let w = pull_workload(24);
        assert_eq!(w.instance.num_edges(), 24 + 24 * 23);
        let csr = rpq_graph::CsrGraph::from(&w.instance);
        let nfa = rpq_automata::Nfa::thompson(&w.query);
        let mut scratch = EvalScratch::new();
        let sparse = eval_product_csr_with(
            &nfa,
            &csr,
            w.source,
            FrontierMode::ForcedSparse,
            &mut scratch,
        );
        let hybrid =
            eval_product_csr_with(&nfa, &csr, w.source, FrontierMode::Hybrid, &mut scratch);
        assert_eq!(sparse.answers, hybrid.answers);
        assert_eq!(sparse.answers.len(), 25, "h* saturates the digraph");
        assert!(hybrid.stats.pull_levels >= 1, "hybrid never pulled");
        assert!(
            hybrid.stats.edges_scanned < sparse.stats.edges_scanned,
            "hybrid {} must beat sparse {}",
            hybrid.stats.edges_scanned,
            sparse.stats.edges_scanned
        );
    }

    #[test]
    fn multi_target_workload_shape() {
        let w = multi_target_workload(16, 8, 12);
        let csr = rpq_graph::CsrGraph::from(&w.instance);
        let cold = w.alphabet.get("cold").unwrap();
        let hot = w.alphabet.get("hot").unwrap();
        assert_eq!(csr.stats().edge_count(cold), 16 + 12);
        assert_eq!(csr.stats().edge_count(hot), (16 + 12) * 8);
        assert_eq!(w.targets.len(), 12);
        // every exit reaches back to the whole spine under cold*
        let nfa = rpq_automata::Nfa::thompson(&w.query);
        let res = rpq_core::eval_product_backward_reversed_csr(&nfa.reverse(), &csr, w.targets[0]);
        assert_eq!(res.answers.len(), 16 + 2, "spine + exit itself");
    }

    #[test]
    fn direction_workload_is_backward_skewed() {
        let w = direction_workload(32);
        let csr = rpq_graph::CsrGraph::from(&w.instance);
        let hot = w.alphabet.get("hot").unwrap();
        let cold = w.alphabet.get("cold").unwrap();
        assert_eq!(csr.stats().edge_count(hot), 64);
        assert_eq!(csr.stats().edge_count(cold), 1);
        let res =
            rpq_core::eval_product_csr(&rpq_automata::Nfa::thompson(&w.query), &csr, w.source);
        assert_eq!(res.answers, vec![w.target]);
    }

    #[test]
    fn incremental_workload_delta_touches_existing_nodes() {
        let w = incremental_workload(256, 16);
        assert_eq!(w.delta.adds.len(), 16);
        assert_eq!(w.delta.dels.len(), 8);
        let n = w.instance.num_nodes() as u32;
        for &(f, _, t) in w.delta.adds.iter().chain(&w.delta.dels) {
            assert!(f.0 < n && t.0 < n);
        }
        // the batch is a tiny fraction of the base
        assert!(w.delta.len() * 20 < w.instance.num_edges());
    }

    #[test]
    fn word_system_shape() {
        let (_, set) = word_system(1, 3, 8, 4);
        assert!(set.all_word_constraints());
        assert!(set.len() >= 8);
    }

    #[test]
    fn regex_pair_inclusion_direction() {
        let mut ab = Alphabet::new();
        let (p, q) = regex_pair(&mut ab, 3);
        // p ⊆ q by construction (b vs b+ε)
        assert!(rpq_automata::ops::regex_included(&p, &q));
        assert!(!rpq_automata::ops::regex_included(&q, &p));
    }

    #[test]
    fn crpq_workload_shape() {
        let w = crpq_workload(8, 4);
        assert_eq!(w.hot_edges, 32);
        assert_eq!(w.answers, 8);
        // hot fan-out plus the single rare bottleneck edge
        assert_eq!(w.instance.num_edges(), 33);
        assert!(w.text.contains(":-"));
    }

    #[test]
    fn distributed_workload_constraint_holds() {
        let w = distributed_workload(8);
        assert!(w.constraints.holds_at(&w.instance, w.source));
    }
}
