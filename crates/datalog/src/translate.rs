//! The Section 2.3 translations: path queries as linear monadic Datalog.
//!
//! Two presentations are given in the paper and both are implemented:
//!
//! * the **quotient** program `D_p`, with one IDB `still-left_q` per
//!   repeated quotient `q` of `p` ("q is the subquery still left to
//!   evaluate from x"), and
//! * the **state** program, with one IDB `state_h` per state of an fsa for
//!   `p` ("the two approaches are, of course, syntactic variants of each
//!   other").
//!
//! Both generate: an initialization rule from `source`, one chain rule per
//! (class, label) / automaton transition over the EDB `ref(y, l, x)`, and
//! `answer(x)` projection rules. The produced programs are checked linear
//! and monadic by construction (asserted in tests via the analyses of
//! [`crate::ir`]).

use rpq_automata::{Alphabet, DerivativeClosure, Nfa, Regex};
use rpq_graph::{CsrGraph, Instance, Oid};

use crate::engine::{eval_seminaive, FixpointStats};
use crate::ir::{Atom, PredId, Program, RuleBuilder, Term};
use crate::storage::Database;

/// A translated query: the program plus the handles needed to run it.
#[derive(Clone, Debug)]
pub struct TranslatedQuery {
    /// The Datalog program.
    pub program: Program,
    /// EDB `ref(source, label, destination)`.
    pub ref_pred: PredId,
    /// EDB `source(o)`.
    pub source_pred: PredId,
    /// IDB `answer(x)`.
    pub answer_pred: PredId,
    /// Number of `still-left`/`state` predicates generated.
    pub idb_count: usize,
}

/// Encode graph constants: nodes and labels share the `u64` domain (they
/// never meet in a column, so no tagging is needed).
pub fn node_const(o: Oid) -> u64 {
    o.index() as u64
}

/// Label constant encoding.
pub fn label_const(s: rpq_automata::Symbol) -> u64 {
    s.index() as u64
}

fn declare_base(program: &mut Program) -> (PredId, PredId, PredId) {
    let ref_pred = program.declare("ref", 3, true);
    let source_pred = program.declare("source", 1, true);
    let answer_pred = program.declare("answer", 1, false);
    (ref_pred, source_pred, answer_pred)
}

/// The quotient program `D_p` (Section 2.3, first presentation).
///
/// `P` is the closure of repeated quotients of `p` over `symbols`; for each
/// `q ∈ P` and label `l` with `q/l ≠ ∅` there is a rule
/// `still-left_{q/l}(x) :- still-left_q(y), ref(y, l, x).`
pub fn translate_quotient(
    query: &Regex,
    alphabet: &Alphabet,
) -> Result<TranslatedQuery, rpq_automata::derivative::ClosureOverflow> {
    let symbols: Vec<_> = alphabet.symbols().collect();
    let closure = DerivativeClosure::compute(query, &symbols, 1 << 16)?;
    let mut program = Program::default();
    let (ref_pred, source_pred, answer_pred) = declare_base(&mut program);

    // one predicate per quotient class (skip the ∅ class entirely)
    let mut class_pred: Vec<Option<PredId>> = Vec::with_capacity(closure.len());
    for (i, class) in closure.classes.iter().enumerate() {
        if *class == Regex::Empty {
            class_pred.push(None);
        } else {
            let name = format!("still_left_{i}"); // rendered regex in docs
            class_pred.push(Some(program.declare(&name, 1, false)));
        }
    }

    // initialization: still-left_p(o) :- source(o).
    if let Some(p0) = class_pred[0] {
        let mut b = RuleBuilder::new();
        let o = b.var("o");
        program.add_rule(b.rule(
            Atom {
                pred: p0,
                terms: vec![o],
            },
            vec![Atom {
                pred: source_pred,
                terms: vec![o],
            }],
        ));
    }

    // transitions
    for (c, row) in closure.trans.iter().enumerate() {
        let Some(cp) = class_pred[c] else { continue };
        for (k, &target) in row.iter().enumerate() {
            let Some(tp) = class_pred[target] else {
                continue;
            };
            let mut b = RuleBuilder::new();
            let (x, y) = (b.var("x"), b.var("y"));
            program.add_rule(b.rule(
                Atom {
                    pred: tp,
                    terms: vec![x],
                },
                vec![
                    Atom {
                        pred: cp,
                        terms: vec![y],
                    },
                    Atom {
                        pred: ref_pred,
                        terms: vec![y, Term::Const(label_const(closure.symbols[k])), x],
                    },
                ],
            ));
        }
    }

    // answers: answer(x) :- still-left_q(x) for ε ∈ L(q).
    for (c, &nullable) in closure.nullable.iter().enumerate() {
        let Some(cp) = class_pred[c] else { continue };
        if nullable {
            let mut b = RuleBuilder::new();
            let x = b.var("x");
            program.add_rule(b.rule(
                Atom {
                    pred: answer_pred,
                    terms: vec![x],
                },
                vec![Atom {
                    pred: cp,
                    terms: vec![x],
                }],
            ));
        }
    }

    let idb_count = class_pred.iter().flatten().count();
    Ok(TranslatedQuery {
        program,
        ref_pred,
        source_pred,
        answer_pred,
        idb_count,
    })
}

/// The automaton-state program (Section 2.3, second presentation):
/// `state_h(x) :- state_j(y), ref(y, l, x)` for each transition `h = δ(j, l)`.
/// ε-transitions of the (Thompson) NFA become unary copy rules
/// `state_h(x) :- state_j(x)`, preserving linearity and monadicity.
pub fn translate_states(nfa: &Nfa) -> TranslatedQuery {
    let mut program = Program::default();
    let (ref_pred, source_pred, answer_pred) = declare_base(&mut program);

    let state_pred: Vec<PredId> = (0..nfa.num_states())
        .map(|h| program.declare(&format!("state_{h}"), 1, false))
        .collect();

    // initialization: state_s(o) :- source(o).
    {
        let mut b = RuleBuilder::new();
        let o = b.var("o");
        program.add_rule(b.rule(
            Atom {
                pred: state_pred[nfa.start() as usize],
                terms: vec![o],
            },
            vec![Atom {
                pred: source_pred,
                terms: vec![o],
            }],
        ));
    }

    for j in 0..nfa.num_states() as u32 {
        for &h in nfa.eps_transitions(j) {
            let mut b = RuleBuilder::new();
            let x = b.var("x");
            program.add_rule(b.rule(
                Atom {
                    pred: state_pred[h as usize],
                    terms: vec![x],
                },
                vec![Atom {
                    pred: state_pred[j as usize],
                    terms: vec![x],
                }],
            ));
        }
        for &(l, h) in nfa.transitions(j) {
            let mut b = RuleBuilder::new();
            let (x, y) = (b.var("x"), b.var("y"));
            program.add_rule(b.rule(
                Atom {
                    pred: state_pred[h as usize],
                    terms: vec![x],
                },
                vec![
                    Atom {
                        pred: state_pred[j as usize],
                        terms: vec![y],
                    },
                    Atom {
                        pred: ref_pred,
                        terms: vec![y, Term::Const(label_const(l)), x],
                    },
                ],
            ));
        }
    }

    for h in nfa.accepting_states() {
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        program.add_rule(b.rule(
            Atom {
                pred: answer_pred,
                terms: vec![x],
            },
            vec![Atom {
                pred: state_pred[h as usize],
                terms: vec![x],
            }],
        ));
    }

    TranslatedQuery {
        program,
        ref_pred,
        source_pred,
        answer_pred,
        idb_count: state_pred.len(),
    }
}

/// Load a label-indexed snapshot into the EDB relations of a translated
/// query. The CSR arena order (per-node rows sorted by `(Symbol, Oid)`)
/// gives the `ref` relation a deterministic, label-clustered tuple order.
pub fn load_csr(tq: &TranslatedQuery, graph: &CsrGraph, source: Oid) -> Database {
    load_csr_multi(tq, graph, std::slice::from_ref(&source))
}

/// Like [`load_csr`], but seeds the `source` EDB relation with *every*
/// source in the batch: the initialization rule then derives the start
/// predicate for all of them in round 0, so one semi-naive fixpoint
/// answers the whole multi-source batch (union semantics — the monadic
/// programs do not track which seed derived which answer).
pub fn load_csr_multi(tq: &TranslatedQuery, graph: &CsrGraph, sources: &[Oid]) -> Database {
    let mut db = Database::for_program(&tq.program);
    for (a, l, b) in graph.edges() {
        db.insert(
            tq.ref_pred,
            vec![node_const(a), label_const(l), node_const(b)],
        );
    }
    for &source in sources {
        db.insert(tq.source_pred, vec![node_const(source)]);
    }
    db
}

/// Load an instance into the EDB relations of a translated query.
///
/// Compatibility wrapper: snapshots the instance into a [`CsrGraph`] and
/// delegates to [`load_csr`]. Callers loading many queries over one graph
/// should snapshot once.
pub fn load_instance(tq: &TranslatedQuery, instance: &Instance, source: Oid) -> Database {
    load_csr(tq, &CsrGraph::from(instance), source)
}

/// Run a translated query with the semi-naive engine; returns sorted
/// answers and the fixpoint statistics.
pub fn run(tq: &TranslatedQuery, instance: &Instance, source: Oid) -> (Vec<Oid>, FixpointStats) {
    let mut db = load_instance(tq, instance, source);
    let stats = eval_seminaive(&tq.program, &mut db);
    let mut answers: Vec<Oid> = db
        .relation(tq.answer_pred)
        .iter()
        .map(|t| Oid(t[0] as u32))
        .collect();
    answers.sort();
    (answers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::eval_naive;
    use rpq_automata::parse_regex;
    use rpq_core::eval_product;
    use rpq_graph::InstanceBuilder;

    fn fig2() -> (Alphabet, Instance, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        let (inst, names) = b.finish();
        let o1 = names["o1"];
        (ab, inst, o1)
    }

    #[test]
    fn quotient_translation_is_linear_monadic_chain() {
        let (ab, _, _) = fig2();
        let mut ab = ab;
        let r = parse_regex(&mut ab, "a.b*").unwrap();
        let tq = translate_quotient(&r, &ab).unwrap();
        assert!(tq.program.is_linear());
        assert!(tq.program.is_monadic());
        // every transition rule is a chain rule
        let chains = tq
            .program
            .rules
            .iter()
            .filter(|r| tq.program.is_chain_rule(r))
            .count();
        assert!(chains >= 2, "{}", tq.program);
    }

    #[test]
    fn state_translation_is_linear_monadic() {
        let (ab, _, _) = fig2();
        let mut ab = ab;
        let r = parse_regex(&mut ab, "a.(b+a)*").unwrap();
        let tq = translate_states(&Nfa::thompson(&r));
        assert!(tq.program.is_linear());
        assert!(tq.program.is_monadic());
    }

    #[test]
    fn both_translations_agree_with_product_engine() {
        let (mut ab, inst, o1) = fig2();
        for q in ["a.b*", "(a+b)*", "a.b.b", "b*", "(a.b)*"] {
            let r = parse_regex(&mut ab, q).unwrap();
            let nfa = Nfa::thompson(&r);
            let expected = eval_product(&nfa, &inst, o1).answers;
            let tq1 = translate_quotient(&r, &ab).unwrap();
            let (a1, _) = run(&tq1, &inst, o1);
            assert_eq!(a1, expected, "quotient translation on {q}");
            let tq2 = translate_states(&nfa);
            let (a2, _) = run(&tq2, &inst, o1);
            assert_eq!(a2, expected, "state translation on {q}");
        }
    }

    #[test]
    fn naive_and_seminaive_agree_on_translation() {
        let (mut ab, inst, o1) = fig2();
        let r = parse_regex(&mut ab, "a.b*").unwrap();
        let tq = translate_quotient(&r, &ab).unwrap();
        let mut db1 = load_instance(&tq, &inst, o1);
        let mut db2 = load_instance(&tq, &inst, o1);
        eval_naive(&tq.program, &mut db1);
        eval_seminaive(&tq.program, &mut db2);
        let mut t1: Vec<_> = db1.relation(tq.answer_pred).iter().cloned().collect();
        let mut t2: Vec<_> = db2.relation(tq.answer_pred).iter().cloned().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
    }

    #[test]
    fn program_renders_paper_shape() {
        let (mut ab, _, _) = fig2();
        let r = parse_regex(&mut ab, "a.b*").unwrap();
        let tq = translate_quotient(&r, &ab).unwrap();
        let rendered = tq.program.render();
        assert!(rendered.contains("still_left_0(o) :- source(o)."));
        assert!(rendered.contains("answer(x) :- still_left_"));
        assert!(rendered.contains("ref(y, "));
    }

    #[test]
    fn empty_query_translates_to_empty_answers() {
        let (mut ab, inst, o1) = fig2();
        let r = parse_regex(&mut ab, "[]").unwrap();
        let tq = translate_quotient(&r, &ab).unwrap();
        let (ans, _) = run(&tq, &inst, o1);
        assert!(ans.is_empty());
        let tq2 = translate_states(&Nfa::thompson(&r));
        let (ans2, _) = run(&tq2, &inst, o1);
        assert!(ans2.is_empty());
    }
}
