//! Query-subquery (QSQ) evaluation for the generated RPQ programs.
//!
//! The paper points to "an analogy between our evaluation technique and
//! the magic-set \[9\] or query–subquery \[31\] evaluation of a datalog
//! program" (Section 1, elaborated by the Section 3.1 protocol): the
//! distributed algorithm *is* a top-down, goal-directed evaluation in
//! which each site receives subgoals (subqueries) and answers flow back.
//!
//! This module implements that connection concretely: a QSQ-style
//! evaluator for **linear monadic** programs of the shape produced by
//! [`crate::translate`]. Subgoals are (predicate, constant) pairs; a
//! subgoal table plays the role of the paper's per-site "list of the
//! subqueries it has been asked to perform" (the dedup that guarantees
//! termination), and the answer table accumulates proven facts. For the
//! RPQ programs the subgoal table is exactly the set of `(quotient, node)`
//! pairs the product-automaton engine visits — asserted in the tests.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ir::{Atom, Const, PredId, Program, Term};
use crate::storage::Database;

/// Statistics from a QSQ run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QsqStats {
    /// Distinct subgoals registered (the dedup table size).
    pub subgoals: usize,
    /// Facts derived (with duplicates filtered).
    pub facts: usize,
    /// Rule firings attempted.
    pub firings: usize,
}

/// Errors from [`eval_qsq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QsqError {
    /// The program is not linear or not monadic in its IDB predicates.
    UnsupportedShape,
    /// A rule's IDB body atom has a non-variable argument (not produced by
    /// the RPQ translations).
    UnsupportedRule,
}

impl std::fmt::Display for QsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QsqError::UnsupportedShape => {
                write!(f, "QSQ evaluator requires a linear monadic program")
            }
            QsqError::UnsupportedRule => write!(f, "unsupported rule shape for QSQ"),
        }
    }
}

impl std::error::Error for QsqError {}

/// Top-down evaluation of `goal_pred` (unary) with an unbound argument:
/// computes exactly the facts of `goal_pred` derivable from the program,
/// exploring only the subgoals reachable from the goal (the magic-set
/// effect). EDB relations are read from `db`; derived IDB facts are *not*
/// written back (the answer map is returned).
pub fn eval_qsq(
    program: &Program,
    db: &Database,
    goal_pred: PredId,
) -> Result<(Vec<Const>, QsqStats), QsqError> {
    if !program.is_linear() || !program.is_monadic() {
        return Err(QsqError::UnsupportedShape);
    }

    // Index rules by their (single) IDB body predicate, and collect
    // "source rules" whose bodies are all-EDB.
    let mut by_idb: HashMap<PredId, Vec<&crate::ir::Rule>> = HashMap::new();
    let mut source_rules: Vec<&crate::ir::Rule> = Vec::new();
    for rule in &program.rules {
        let idb_atoms: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|a| !program.predicates[a.pred].is_edb)
            .collect();
        match idb_atoms.len() {
            0 => source_rules.push(rule),
            1 => {
                if !matches!(idb_atoms[0].terms.first(), Some(Term::Var(_))) {
                    return Err(QsqError::UnsupportedRule);
                }
                by_idb.entry(idb_atoms[0].pred).or_default().push(rule);
            }
            _ => return Err(QsqError::UnsupportedShape),
        }
    }

    let mut stats = QsqStats::default();
    // facts[p] = set of constants proven for unary IDB p
    let mut facts: HashMap<PredId, HashSet<Const>> = HashMap::new();
    // worklist of newly derived facts
    let mut queue: VecDeque<(PredId, Const)> = VecDeque::new();

    // Seed: fire all-EDB rules (these bind the initial subgoals — for RPQ
    // programs, `still-left_p(o) :- source(o)`).
    for rule in &source_rules {
        stats.firings += 1;
        for (pred, t) in fire_edb_only(program, db, rule) {
            if facts.entry(pred).or_default().insert(t[0]) {
                queue.push_back((pred, t[0]));
            }
        }
    }

    // Propagate: a new fact p(c) can fire every rule with p in the body,
    // with the IDB variable bound to c. Subgoal = (rule, c) dedup is
    // implicit in the fact table (monadic ⇒ fact = subgoal answer).
    let mut seen_subgoals: HashSet<(PredId, Const)> = HashSet::new();
    while let Some((pred, c)) = queue.pop_front() {
        if !seen_subgoals.insert((pred, c)) {
            continue;
        }
        let Some(rules) = by_idb.get(&pred) else {
            continue;
        };
        for rule in rules {
            stats.firings += 1;
            for (hpred, t) in fire_with_binding(program, db, rule, pred, c) {
                if facts.entry(hpred).or_default().insert(t[0]) {
                    queue.push_back((hpred, t[0]));
                }
            }
        }
    }

    stats.subgoals = seen_subgoals.len();
    stats.facts = facts.values().map(HashSet::len).sum();
    let mut answers: Vec<Const> = facts
        .get(&goal_pred)
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    answers.sort_unstable();
    Ok((answers, stats))
}

/// Fire a rule with an all-EDB body, returning head facts.
fn fire_edb_only(
    program: &Program,
    db: &Database,
    rule: &crate::ir::Rule,
) -> Vec<(PredId, Vec<Const>)> {
    let mut out = Vec::new();
    join(
        program,
        db,
        rule,
        0,
        &mut vec![None; rule.var_names.len()],
        None,
        &mut out,
    );
    out
}

/// Fire a rule with its IDB atom's variable bound to `c`.
fn fire_with_binding(
    program: &Program,
    db: &Database,
    rule: &crate::ir::Rule,
    idb_pred: PredId,
    c: Const,
) -> Vec<(PredId, Vec<Const>)> {
    let mut bindings = vec![None; rule.var_names.len()];
    // bind the IDB atom's variable
    for atom in &rule.body {
        if atom.pred == idb_pred && !program.predicates[atom.pred].is_edb {
            if let Some(Term::Var(v)) = atom.terms.first() {
                bindings[*v as usize] = Some(c);
            }
        }
    }
    let mut out = Vec::new();
    join(
        program,
        db,
        rule,
        0,
        &mut bindings,
        Some(idb_pred),
        &mut out,
    );
    out
}

/// Backtracking join over the rule's EDB atoms (the IDB atom, if any, is
/// already bound and skipped).
fn join(
    program: &Program,
    db: &Database,
    rule: &crate::ir::Rule,
    i: usize,
    bindings: &mut Vec<Option<Const>>,
    skip_idb: Option<PredId>,
    out: &mut Vec<(PredId, Vec<Const>)>,
) {
    if i == rule.body.len() {
        let head: Vec<Const> = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => bindings[*v as usize].expect("range restricted"),
            })
            .collect();
        out.push((rule.head.pred, head));
        return;
    }
    let atom = &rule.body[i];
    let is_idb = !program.predicates[atom.pred].is_edb;
    if is_idb && Some(atom.pred) == skip_idb {
        join(program, db, rule, i + 1, bindings, skip_idb, out);
        return;
    }
    if is_idb {
        // linear programs: at most one IDB atom, always skipped
        return;
    }
    let rel = db.relation(atom.pred);
    let pattern: Vec<Option<Const>> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => bindings[*v as usize],
        })
        .collect();
    for tuple in rel.select(&pattern) {
        let mut next = bindings.clone();
        let mut ok = true;
        for (t, &val) in atom.terms.iter().zip(tuple.iter()) {
            if let Term::Var(v) = t {
                match next[*v as usize] {
                    Some(b) if b != val => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => next[*v as usize] = Some(val),
                }
            }
        }
        if ok {
            join(program, db, rule, i + 1, &mut next, skip_idb, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{load_instance, translate_quotient, translate_states};
    use rpq_automata::{parse_regex, Alphabet, Nfa};
    use rpq_graph::{InstanceBuilder, Oid};

    fn fig2() -> (Alphabet, rpq_graph::Instance, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        b.edge("o2", "b", "o3");
        b.edge("o3", "b", "o2");
        let (inst, names) = b.finish();
        let o1 = names["o1"];
        (ab, inst, o1)
    }

    #[test]
    fn qsq_matches_bottom_up_on_fig2() {
        let (mut ab, inst, o1) = fig2();
        for qs in ["a.b*", "(a+b)*", "b.b", "(a.b)*"] {
            let q = parse_regex(&mut ab, qs).unwrap();
            let tq = translate_quotient(&q, &ab).unwrap();
            let db = load_instance(&tq, &inst, o1);
            let (qsq_answers, _) = eval_qsq(&tq.program, &db, tq.answer_pred).unwrap();
            let (bu_answers, _) = crate::translate::run(&tq, &inst, o1);
            let bu: Vec<Const> = bu_answers.iter().map(|o| o.index() as Const).collect();
            assert_eq!(qsq_answers, bu, "{qs}");
        }
    }

    #[test]
    fn qsq_subgoals_equal_product_pairs() {
        // the magic-set effect: QSQ visits exactly the (state, node) pairs
        // of the product-automaton evaluation (for the state translation)
        let (mut ab, inst, o1) = fig2();
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let nfa = Nfa::thompson(&q);
        let ts = translate_states(&nfa);
        let db = load_instance(&ts, &inst, o1);
        let (_, stats) = eval_qsq(&ts.program, &db, ts.answer_pred).unwrap();
        let product = rpq_core::eval_product(&nfa, &inst, o1);
        // QSQ subgoals = state facts + answer facts; product pairs count
        // reachable (state, node) pairs. They agree up to the answer copies.
        assert!(stats.subgoals <= product.stats.pairs_visited + product.stats.answers + 1);
        assert!(stats.subgoals >= product.stats.pairs_visited / 2);
    }

    #[test]
    fn qsq_explores_only_reachable_subgoals() {
        // add a disconnected component: bottom-up still scans its ref
        // tuples, QSQ never creates subgoals there
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("o1", "a", "o2");
        // disconnected
        for i in 0..20 {
            b.edge(&format!("x{i}"), "a", &format!("x{}", i + 1));
        }
        let (inst, names) = b.finish();
        let q = parse_regex(&mut ab, "a*").unwrap();
        let tq = translate_quotient(&q, &ab).unwrap();
        let db = load_instance(&tq, &inst, names["o1"]);
        let (answers, stats) = eval_qsq(&tq.program, &db, tq.answer_pred).unwrap();
        assert_eq!(answers.len(), 2); // o1, o2
        assert!(
            stats.subgoals <= 6,
            "QSQ must not visit the disconnected chain: {stats:?}"
        );
    }

    #[test]
    fn qsq_rejects_nonlinear_programs() {
        use crate::ir::{Program, RuleBuilder};
        let mut p = Program::default();
        let e = p.declare("e", 2, true);
        let t = p.declare("t", 1, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: t,
                terms: vec![x],
            },
            vec![
                Atom {
                    pred: t,
                    terms: vec![y],
                },
                Atom {
                    pred: t,
                    terms: vec![x],
                },
                Atom {
                    pred: e,
                    terms: vec![y, x],
                },
            ],
        ));
        let db = Database::for_program(&p);
        assert_eq!(eval_qsq(&p, &db, t), Err(QsqError::UnsupportedShape));
    }

    #[test]
    fn qsq_stats_are_populated() {
        let (mut ab, inst, o1) = fig2();
        let q = parse_regex(&mut ab, "a.b*").unwrap();
        let tq = translate_quotient(&q, &ab).unwrap();
        let db = load_instance(&tq, &inst, o1);
        let (_, stats) = eval_qsq(&tq.program, &db, tq.answer_pred).unwrap();
        assert!(stats.subgoals > 0);
        assert!(stats.facts > 0);
        assert!(stats.firings > 0);
    }
}
