//! The magic-sets transformation.
//!
//! Section 1 of the paper: "we also point to an analogy between our
//! evaluation technique and the magic-set \[9\] or query–subquery \[31\]
//! evaluation of a datalog program." [`crate::qsq`] realizes the top-down
//! side of that analogy; this module supplies the bottom-up side — the
//! classical magic-sets rewriting of Bancilhon, Maier, Sagiv & Ullman \[9\]
//! — so the three strategies (plain semi-naive, QSQ, magic + semi-naive)
//! can be run and measured against each other on the same programs
//! (bench `t8_datalog_strategies`).
//!
//! The transformation is the textbook one with left-to-right sideways
//! information passing:
//!
//! 1. **Adorn** predicates starting from the query's binding pattern
//!    (`b` = bound, `f` = free); a body variable is bound if it occurs in
//!    a bound head position or in any earlier body atom.
//! 2. For every adorned rule and every IDB body atom `qᵝ`, emit a **magic
//!    rule** `m_qᵝ(bound args) :- m_pᵅ(bound head args), prefix…` that
//!    derives the subgoals demanded by the computation so far.
//! 3. **Guard** each original rule with its head's magic atom.
//! 4. Seed with the query's magic fact and evaluate semi-naive.
//!
//! On the paper's RPQ programs the query is `answer(X)` with `X` free, and
//! the program is already source-seeded, so magic degenerates gracefully
//! (the guards demand everything — same fixpoint). On bound-argument
//! queries over binary IDBs (e.g. transitive closure `tc(c, X)`, or the
//! same-generation program) the transformation prunes the classic way;
//! the tests assert both behaviors.

use std::collections::{HashMap, VecDeque};

use crate::engine::{eval_seminaive, FixpointStats};
use crate::ir::{Atom, Const, PredId, Program, Rule, Term};
use crate::storage::Database;

/// A query: a goal predicate and a binding pattern (`Some(c)` = bound to
/// `c`, `None` = free).
#[derive(Clone, Debug)]
pub struct MagicQuery {
    /// The goal predicate (IDB) in the *original* program.
    pub pred: PredId,
    /// One entry per argument position.
    pub pattern: Vec<Option<Const>>,
}

impl MagicQuery {
    /// The adornment string, e.g. `"bf"`.
    pub fn adornment(&self) -> String {
        self.pattern
            .iter()
            .map(|p| if p.is_some() { 'b' } else { 'f' })
            .collect()
    }
}

/// Result of [`magic_transform`].
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten program (EDB predicates re-declared, adorned IDB and
    /// magic predicates added).
    pub program: Program,
    /// The adorned query predicate in [`Self::program`].
    pub query_pred: PredId,
    /// Map original-EDB → rewritten-EDB predicate ids.
    pub edb_map: HashMap<PredId, PredId>,
    /// The magic predicates, for statistics (their cardinality counts the
    /// demanded subgoals).
    pub magic_preds: Vec<PredId>,
}

/// Statistics from [`eval_magic`].
#[derive(Clone, Debug, Default)]
pub struct MagicStats {
    /// The semi-naive fixpoint statistics on the rewritten program.
    pub fixpoint: FixpointStats,
    /// Total demanded subgoals (tuples across magic predicates).
    pub demanded: usize,
    /// IDB tuples excluding magic predicates (comparable to a plain
    /// semi-naive run's `idb_tuples`).
    pub idb_tuples: usize,
}

/// Apply the magic-sets transformation for `query`.
///
/// Panics if `query.pred` is an EDB predicate or the pattern arity is
/// wrong — caller errors, not data errors.
pub fn magic_transform(program: &Program, query: &MagicQuery) -> MagicProgram {
    assert!(
        !program.predicates[query.pred].is_edb,
        "magic query goal must be an IDB predicate"
    );
    assert_eq!(
        query.pattern.len(),
        program.predicates[query.pred].arity,
        "query pattern arity mismatch"
    );

    let mut out = Program::default();
    let mut edb_map: HashMap<PredId, PredId> = HashMap::new();
    for (p, decl) in program.predicates.iter().enumerate() {
        if decl.is_edb {
            edb_map.insert(p, out.declare(&decl.name, decl.arity, true));
        }
    }

    // (original pred, adornment) → (adorned id, magic id)
    let mut adorned: HashMap<(PredId, String), (PredId, PredId)> = HashMap::new();
    let mut magic_preds: Vec<PredId> = Vec::new();
    let mut queue: VecDeque<(PredId, String)> = VecDeque::new();

    let declare_adorned = |out: &mut Program,
                           adorned: &mut HashMap<(PredId, String), (PredId, PredId)>,
                           magic_preds: &mut Vec<PredId>,
                           queue: &mut VecDeque<(PredId, String)>,
                           p: PredId,
                           ad: &str|
     -> (PredId, PredId) {
        if let Some(&ids) = adorned.get(&(p, ad.to_owned())) {
            return ids;
        }
        let name = &program.predicates[p].name;
        let arity = program.predicates[p].arity;
        let bound = ad.chars().filter(|&c| c == 'b').count();
        let a_id = out.declare(&format!("{name}#{ad}"), arity, false);
        let m_id = out.declare(&format!("m_{name}#{ad}"), bound, false);
        magic_preds.push(m_id);
        adorned.insert((p, ad.to_owned()), (a_id, m_id));
        queue.push_back((p, ad.to_owned()));
        (a_id, m_id)
    };

    let q_ad = query.adornment();
    let (query_pred, query_magic) = declare_adorned(
        &mut out,
        &mut adorned,
        &mut magic_preds,
        &mut queue,
        query.pred,
        &q_ad,
    );

    let mut processed: HashMap<(PredId, String), bool> = HashMap::new();
    while let Some((p, ad)) = queue.pop_front() {
        if processed.insert((p, ad.clone()), true).is_some() {
            continue;
        }
        let (p_adorned, p_magic) = adorned[&(p, ad.clone())];
        for rule in program.rules.iter().filter(|r| r.head.pred == p) {
            // Bound variables so far: head variables at 'b' positions.
            let mut bound: Vec<bool> = vec![false; rule.var_names.len()];
            for (term, a) in rule.head.terms.iter().zip(ad.chars()) {
                if a == 'b' {
                    if let Term::Var(v) = term {
                        bound[*v as usize] = true;
                    }
                }
            }
            let head_bound_terms: Vec<Term> = rule
                .head
                .terms
                .iter()
                .zip(ad.chars())
                .filter(|(_, a)| *a == 'b')
                .map(|(t, _)| *t)
                .collect();
            let magic_head_atom = Atom {
                pred: p_magic,
                terms: head_bound_terms.clone(),
            };

            let mut new_body: Vec<Atom> = vec![magic_head_atom.clone()];
            for atom in &rule.body {
                if program.predicates[atom.pred].is_edb {
                    new_body.push(Atom {
                        pred: edb_map[&atom.pred],
                        terms: atom.terms.clone(),
                    });
                } else {
                    // Adorn by current boundness.
                    let sub_ad: String = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => 'b',
                            Term::Var(v) => {
                                if bound[*v as usize] {
                                    'b'
                                } else {
                                    'f'
                                }
                            }
                        })
                        .collect();
                    let (a_id, m_id) = declare_adorned(
                        &mut out,
                        &mut adorned,
                        &mut magic_preds,
                        &mut queue,
                        atom.pred,
                        &sub_ad,
                    );
                    // Magic rule: demand this subgoal from the prefix.
                    let magic_terms: Vec<Term> = atom
                        .terms
                        .iter()
                        .zip(sub_ad.chars())
                        .filter(|(_, a)| *a == 'b')
                        .map(|(t, _)| *t)
                        .collect();
                    out.add_rule(Rule {
                        head: Atom {
                            pred: m_id,
                            terms: magic_terms,
                        },
                        body: new_body.clone(),
                        var_names: rule.var_names.clone(),
                    });
                    new_body.push(Atom {
                        pred: a_id,
                        terms: atom.terms.clone(),
                    });
                }
                // After evaluating this atom, all its variables are bound.
                for t in &atom.terms {
                    if let Term::Var(v) = t {
                        bound[*v as usize] = true;
                    }
                }
            }

            // Guarded original rule.
            out.add_rule(Rule {
                head: Atom {
                    pred: p_adorned,
                    terms: rule.head.terms.clone(),
                },
                body: new_body,
                var_names: rule.var_names.clone(),
            });
        }
    }

    // Seed: the query's magic fact.
    out.add_rule(Rule {
        head: Atom {
            pred: query_magic,
            terms: query
                .pattern
                .iter()
                .filter_map(|p| p.map(Term::Const))
                .collect(),
        },
        body: Vec::new(),
        var_names: Vec::new(),
    });

    MagicProgram {
        program: out,
        query_pred,
        edb_map,
        magic_preds,
    }
}

/// Transform, load the EDB, evaluate semi-naive, and extract the query
/// answers (full tuples of the goal predicate matching the bound
/// constants).
pub fn eval_magic(
    program: &Program,
    db: &Database,
    query: &MagicQuery,
) -> (Vec<Vec<Const>>, MagicStats) {
    let magic = magic_transform(program, query);
    let mut mdb = Database::for_program(&magic.program);
    for (&old, &new) in &magic.edb_map {
        for t in db.relation(old).iter() {
            mdb.insert(new, t.clone());
        }
    }
    let fixpoint = eval_seminaive(&magic.program, &mut mdb);
    let mut answers: Vec<Vec<Const>> = mdb
        .relation(magic.query_pred)
        .iter()
        .filter(|t| {
            query
                .pattern
                .iter()
                .zip(t.iter())
                .all(|(p, &v)| p.is_none_or(|c| c == v))
        })
        .cloned()
        .collect();
    answers.sort();
    answers.dedup();

    let demanded: usize = magic
        .magic_preds
        .iter()
        .map(|&m| mdb.relation(m).len())
        .sum();
    let idb_tuples = magic
        .program
        .idb_predicates()
        .iter()
        .filter(|p| !magic.magic_preds.contains(p))
        .map(|&p| mdb.relation(p).len())
        .sum();
    (
        answers,
        MagicStats {
            fixpoint,
            demanded,
            idb_tuples,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::eval_naive;
    use crate::ir::RuleBuilder;

    /// edge EDB + transitive closure.
    fn tc_program() -> (Program, PredId, PredId) {
        let mut p = Program::default();
        let edge = p.declare("edge", 2, true);
        let tc = p.declare("tc", 2, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, y],
            },
            vec![Atom {
                pred: edge,
                terms: vec![x, y],
            }],
        ));
        let mut b = RuleBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, z],
            },
            vec![
                Atom {
                    pred: edge,
                    terms: vec![x, y],
                },
                Atom {
                    pred: tc,
                    terms: vec![y, z],
                },
            ],
        ));
        (p, edge, tc)
    }

    /// Two disjoint chains: 0→1→2→3 and 10→11→12.
    fn two_chains(p: &Program, edge: PredId) -> Database {
        let mut db = Database::for_program(p);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)] {
            db.insert(edge, vec![a, b]);
        }
        db
    }

    #[test]
    fn magic_tc_bound_first_argument() {
        let (p, edge, tc) = tc_program();
        let db = two_chains(&p, edge);
        let query = MagicQuery {
            pred: tc,
            pattern: vec![Some(0), None],
        };
        let (answers, stats) = eval_magic(&p, &db, &query);
        assert_eq!(
            answers,
            vec![vec![0, 1], vec![0, 2], vec![0, 3]],
            "tc(0, X) = chain from 0 only"
        );
        // Pruning: the full fixpoint has tc-tuples from BOTH chains.
        let mut full_db = two_chains(&p, edge);
        let full = eval_seminaive(&p, &mut full_db);
        assert!(
            stats.idb_tuples < full.idb_tuples,
            "magic ({}) must derive fewer tuples than full evaluation ({})",
            stats.idb_tuples,
            full.idb_tuples
        );
    }

    #[test]
    fn magic_agrees_with_naive_on_all_sources() {
        let (p, edge, tc) = tc_program();
        let mut db = two_chains(&p, edge);
        eval_naive(&p, &mut db);
        for source in [0u64, 1, 2, 3, 10, 11, 12, 99] {
            let query = MagicQuery {
                pred: tc,
                pattern: vec![Some(source), None],
            };
            let fresh = two_chains(&p, edge);
            let (answers, _) = eval_magic(&p, &fresh, &query);
            let mut expected: Vec<Vec<Const>> = db
                .relation(tc)
                .iter()
                .filter(|t| t[0] == source)
                .cloned()
                .collect();
            expected.sort();
            assert_eq!(answers, expected, "source {source}");
        }
    }

    #[test]
    fn all_free_query_degenerates_to_full_fixpoint() {
        let (p, edge, tc) = tc_program();
        let db = two_chains(&p, edge);
        let query = MagicQuery {
            pred: tc,
            pattern: vec![None, None],
        };
        let (answers, _) = eval_magic(&p, &db, &query);
        let mut full_db = two_chains(&p, edge);
        eval_naive(&p, &mut full_db);
        let mut expected: Vec<Vec<Const>> = full_db.relation(tc).iter().cloned().collect();
        expected.sort();
        assert_eq!(answers, expected);
    }

    /// The classic same-generation program.
    fn sg_program() -> (Program, [PredId; 3], PredId) {
        let mut p = Program::default();
        let up = p.declare("up", 2, true);
        let flat = p.declare("flat", 2, true);
        let down = p.declare("down", 2, true);
        let sg = p.declare("sg", 2, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: sg,
                terms: vec![x, y],
            },
            vec![Atom {
                pred: flat,
                terms: vec![x, y],
            }],
        ));
        let mut b = RuleBuilder::new();
        let (x, x1, y1, y) = (b.var("x"), b.var("x1"), b.var("y1"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: sg,
                terms: vec![x, y],
            },
            vec![
                Atom {
                    pred: up,
                    terms: vec![x, x1],
                },
                Atom {
                    pred: sg,
                    terms: vec![x1, y1],
                },
                Atom {
                    pred: down,
                    terms: vec![y1, y],
                },
            ],
        ));
        (p, [up, flat, down], sg)
    }

    #[test]
    fn magic_same_generation() {
        let (p, [up, flat, down], sg) = sg_program();
        let mut db = Database::for_program(&p);
        // A small balanced gadget: 0 up 1, 1 flat 2, 2 down 3 ⟹ sg(0,3).
        // Plus an unrelated component 7/8/9.
        db.insert(up, vec![0, 1]);
        db.insert(flat, vec![1, 2]);
        db.insert(down, vec![2, 3]);
        db.insert(flat, vec![0, 5]);
        db.insert(up, vec![7, 8]);
        db.insert(flat, vec![8, 8]);
        db.insert(down, vec![8, 9]);
        let (answers, stats) = eval_magic(
            &p,
            &db,
            &MagicQuery {
                pred: sg,
                pattern: vec![Some(0), None],
            },
        );
        assert_eq!(answers, vec![vec![0, 3], vec![0, 5]]);
        // Pruned: sg(7, 9) is never derived.
        let mut full_db = Database::for_program(&p);
        for (r, t) in [
            (up, vec![0u64, 1]),
            (flat, vec![1, 2]),
            (down, vec![2, 3]),
            (flat, vec![0, 5]),
            (up, vec![7, 8]),
            (flat, vec![8, 8]),
            (down, vec![8, 9]),
        ] {
            full_db.insert(r, t);
        }
        let full = eval_seminaive(&p, &mut full_db);
        assert!(stats.idb_tuples < full.idb_tuples);
        assert!(stats.demanded >= 1);
    }

    #[test]
    fn transformed_program_shape() {
        let (p, _, tc) = tc_program();
        let magic = magic_transform(
            &p,
            &MagicQuery {
                pred: tc,
                pattern: vec![Some(0), None],
            },
        );
        let rendered = magic.program.render();
        assert!(rendered.contains("tc#bf"), "{rendered}");
        assert!(rendered.contains("m_tc#bf"), "{rendered}");
        // The seed fact.
        assert!(rendered.contains("m_tc#bf(0)."), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "IDB predicate")]
    fn edb_goal_rejected() {
        let (p, edge, _) = tc_program();
        magic_transform(
            &p,
            &MagicQuery {
                pred: edge,
                pattern: vec![None, None],
            },
        );
    }
}
