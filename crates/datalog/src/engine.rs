//! Naive and semi-naive bottom-up evaluation.
//!
//! Both compute the least fixpoint of a positive program over a database.
//! Semi-naive evaluation restricts one IDB body atom per rule to the
//! *delta* (tuples new in the previous round) — the standard optimization
//! that the paper's Datalog connection (Section 2.3) inherits from the
//! deductive-database literature; bench `t1_eval_scaling` compares the two
//! against the direct product-automaton algorithm.

use crate::ir::{Atom, Const, PredId, Program, Rule, Term};
use crate::storage::{Database, Relation};

/// Evaluation statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Number of fixpoint rounds until saturation.
    pub rounds: usize,
    /// Head tuples derived, counting duplicates (work measure).
    pub derivations: usize,
    /// Distinct IDB tuples at the fixpoint.
    pub idb_tuples: usize,
}

/// Bind `terms` against `tuple`, extending `bindings`; undo on mismatch is
/// the caller's responsibility (we clone per candidate for simplicity —
/// bodies here are short).
fn try_bind(terms: &[Term], tuple: &[Const], bindings: &mut [Option<Const>]) -> bool {
    for (t, &v) in terms.iter().zip(tuple.iter()) {
        match t {
            Term::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            Term::Var(x) => {
                let slot = &mut bindings[*x as usize];
                match slot {
                    Some(bound) if *bound != v => return false,
                    Some(_) => {}
                    None => *slot = Some(v),
                }
            }
        }
    }
    true
}

fn atom_pattern(atom: &Atom, bindings: &[Option<Const>]) -> Vec<Option<Const>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(x) => bindings[*x as usize],
        })
        .collect()
}

/// Evaluate one rule; `delta_override` optionally replaces the relation used
/// for one body-atom index (the semi-naive delta). New head tuples are
/// appended to `out`.
fn eval_rule(
    db: &Database,
    rule: &Rule,
    delta_override: Option<(usize, &Relation)>,
    out: &mut Vec<(PredId, Vec<Const>)>,
) {
    let nvars = rule.var_names.len();
    // Depth-first join over body atoms.
    fn go(
        db: &Database,
        rule: &Rule,
        delta_override: Option<(usize, &Relation)>,
        i: usize,
        bindings: &mut [Option<Const>],
        out: &mut Vec<(PredId, Vec<Const>)>,
    ) {
        if i == rule.body.len() {
            let head: Vec<Const> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(x) => bindings[*x as usize].expect("range-restricted rule"),
                })
                .collect();
            out.push((rule.head.pred, head));
            return;
        }
        let atom = &rule.body[i];
        let rel = match delta_override {
            Some((idx, delta)) if idx == i => delta,
            _ => db.relation(atom.pred),
        };
        let pattern = atom_pattern(atom, bindings);
        for tuple in rel.select(&pattern) {
            let mut next = bindings.to_vec();
            if try_bind(&atom.terms, tuple, &mut next) {
                go(db, rule, delta_override, i + 1, &mut next, out);
            }
        }
    }
    let mut bindings = vec![None; nvars];
    go(db, rule, delta_override, 0, &mut bindings, out);
}

/// Naive evaluation: re-derive everything each round until no new tuples.
pub fn eval_naive(program: &Program, db: &mut Database) -> FixpointStats {
    let mut stats = FixpointStats::default();
    loop {
        stats.rounds += 1;
        let mut new_tuples: Vec<(PredId, Vec<Const>)> = Vec::new();
        for rule in &program.rules {
            eval_rule(db, rule, None, &mut new_tuples);
        }
        stats.derivations += new_tuples.len();
        let mut changed = false;
        for (p, t) in new_tuples {
            if db.insert(p, t) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stats.idb_tuples = program
        .idb_predicates()
        .iter()
        .map(|&p| db.relation(p).len())
        .sum();
    stats
}

/// Semi-naive evaluation with per-predicate deltas.
pub fn eval_seminaive(program: &Program, db: &mut Database) -> FixpointStats {
    let mut stats = FixpointStats::default();
    let npreds = program.predicates.len();

    // Round 0: rules whose bodies contain no IDB atom (initialization).
    let mut delta: Vec<Relation> = program
        .predicates
        .iter()
        .map(|p| Relation::new(p.arity))
        .collect();
    {
        let mut new_tuples = Vec::new();
        for rule in &program.rules {
            let has_idb = rule.body.iter().any(|a| !program.predicates[a.pred].is_edb);
            if !has_idb {
                eval_rule(db, rule, None, &mut new_tuples);
            }
        }
        stats.rounds += 1;
        stats.derivations += new_tuples.len();
        for (p, t) in new_tuples {
            if db.insert(p, t.clone()) {
                delta[p].insert(t);
            }
        }
    }

    // Iterate: each rule fires once per IDB body-atom position, with that
    // position restricted to the delta.
    loop {
        let mut new_tuples: Vec<(PredId, Vec<Const>)> = Vec::new();
        for rule in &program.rules {
            for (i, atom) in rule.body.iter().enumerate() {
                if program.predicates[atom.pred].is_edb {
                    continue;
                }
                if delta[atom.pred].is_empty() {
                    continue;
                }
                eval_rule(db, rule, Some((i, &delta[atom.pred])), &mut new_tuples);
            }
        }
        if new_tuples.is_empty() {
            break;
        }
        stats.rounds += 1;
        stats.derivations += new_tuples.len();
        let mut next_delta: Vec<Relation> = (0..npreds)
            .map(|p| Relation::new(program.predicates[p].arity))
            .collect();
        let mut changed = false;
        for (p, t) in new_tuples {
            if db.insert(p, t.clone()) {
                next_delta[p].insert(t);
                changed = true;
            }
        }
        delta = next_delta;
        if !changed {
            break;
        }
    }
    stats.idb_tuples = program
        .idb_predicates()
        .iter()
        .map(|&p| db.relation(p).len())
        .sum();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Atom, Program, RuleBuilder, Term};

    /// edge facts + transitive closure
    fn tc_setup(edges: &[(u64, u64)]) -> (Program, Database, PredId) {
        let mut p = Program::default();
        let edge = p.declare("edge", 2, true);
        let tc = p.declare("tc", 2, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, y],
            },
            vec![Atom {
                pred: edge,
                terms: vec![x, y],
            }],
        ));
        let mut b = RuleBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, z],
            },
            vec![
                Atom {
                    pred: tc,
                    terms: vec![x, y],
                },
                Atom {
                    pred: edge,
                    terms: vec![y, z],
                },
            ],
        ));
        let mut db = Database::for_program(&p);
        for &(a, bb) in edges {
            db.insert(edge, vec![a, bb]);
        }
        (p, db, tc)
    }

    #[test]
    fn naive_computes_transitive_closure() {
        let (p, mut db, tc) = tc_setup(&[(1, 2), (2, 3), (3, 4)]);
        eval_naive(&p, &mut db);
        assert_eq!(db.relation(tc).len(), 6); // all ordered pairs i<j
        assert!(db.relation(tc).contains(&[1, 4]));
        assert!(!db.relation(tc).contains(&[4, 1]));
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let edges = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)];
        let (p, mut db1, tc) = tc_setup(&edges);
        let (_, mut db2, _) = tc_setup(&edges);
        eval_naive(&p, &mut db1);
        eval_seminaive(&p, &mut db2);
        let mut t1: Vec<_> = db1.relation(tc).iter().cloned().collect();
        let mut t2: Vec<_> = db2.relation(tc).iter().cloned().collect();
        t1.sort();
        t2.sort();
        assert_eq!(t1, t2);
    }

    #[test]
    fn seminaive_does_less_rederivation() {
        // long chain: naive re-derives everything each round
        let edges: Vec<(u64, u64)> = (0..30).map(|i| (i, i + 1)).collect();
        let (p, mut db1, _) = tc_setup(&edges);
        let (_, mut db2, _) = tc_setup(&edges);
        let naive = eval_naive(&p, &mut db1);
        let semi = eval_seminaive(&p, &mut db2);
        assert!(
            semi.derivations < naive.derivations / 2,
            "semi-naive {} vs naive {}",
            semi.derivations,
            naive.derivations
        );
        assert_eq!(semi.idb_tuples, naive.idb_tuples);
    }

    #[test]
    fn constants_in_bodies_filter() {
        let mut p = Program::default();
        let e = p.declare("e", 2, true);
        let q = p.declare("q", 1, false);
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        p.add_rule(b.rule(
            Atom {
                pred: q,
                terms: vec![x],
            },
            vec![Atom {
                pred: e,
                terms: vec![Term::Const(7), x],
            }],
        ));
        let mut db = Database::for_program(&p);
        db.insert(e, vec![7, 1]);
        db.insert(e, vec![8, 2]);
        eval_seminaive(&p, &mut db);
        assert!(db.relation(q).contains(&[1]));
        assert!(!db.relation(q).contains(&[2]));
    }

    #[test]
    fn repeated_variable_join() {
        // q(x) :- e(x, x)
        let mut p = Program::default();
        let e = p.declare("e", 2, true);
        let q = p.declare("q", 1, false);
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        p.add_rule(b.rule(
            Atom {
                pred: q,
                terms: vec![x],
            },
            vec![Atom {
                pred: e,
                terms: vec![x, x],
            }],
        ));
        let mut db = Database::for_program(&p);
        db.insert(e, vec![1, 1]);
        db.insert(e, vec![1, 2]);
        eval_naive(&p, &mut db);
        assert_eq!(db.relation(q).len(), 1);
        assert!(db.relation(q).contains(&[1]));
    }

    #[test]
    fn empty_program_terminates() {
        let p = Program::default();
        let mut db = Database::for_program(&p);
        let s1 = eval_naive(&p, &mut db);
        let s2 = eval_seminaive(&p, &mut db);
        assert_eq!(s1.idb_tuples, 0);
        assert_eq!(s2.idb_tuples, 0);
    }
}
