//! Relation storage: tuple sets with a first-column hash index.
//!
//! The generated RPQ programs join a unary IDB atom against
//! `ref(y, l, x)` on `y` (and a constant `l`), so a first-column index is
//! the one access path that matters; everything else falls back to scans.

use std::collections::{HashMap, HashSet};

use crate::ir::{Const, PredId, Program};

/// A set of tuples of fixed arity with a first-column index.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Vec<Const>>,
    /// first-column value → tuples (kept in insertion order).
    index0: HashMap<Const, Vec<Vec<Const>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: HashSet::new(),
            index0: HashMap::new(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert a tuple; returns true if new.
    pub fn insert(&mut self, t: Vec<Const>) -> bool {
        debug_assert_eq!(t.len(), self.arity);
        if self.tuples.insert(t.clone()) {
            if let Some(&first) = t.first() {
                self.index0.entry(first).or_default().push(t);
            }
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &[Const]) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate all tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Const>> {
        self.tuples.iter()
    }

    /// Tuples whose first column equals `v` (indexed access path).
    pub fn select_first(&self, v: Const) -> &[Vec<Const>] {
        self.index0.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tuples matching a pattern of optional constants per column. Uses the
    /// first-column index when the pattern binds column 0.
    pub fn select<'a>(&'a self, pattern: &'a [Option<Const>]) -> Vec<&'a Vec<Const>> {
        debug_assert_eq!(pattern.len(), self.arity);
        let candidates: Box<dyn Iterator<Item = &Vec<Const>>> = match pattern.first() {
            Some(&Some(v)) => Box::new(self.select_first(v).iter()),
            _ => Box::new(self.tuples.iter()),
        };
        candidates
            .filter(|t| {
                t.iter()
                    .zip(pattern.iter())
                    .all(|(x, p)| p.is_none_or(|v| v == *x))
            })
            .collect()
    }
}

/// A database: one [`Relation`] per predicate of a [`Program`].
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: Vec<Relation>,
}

impl Database {
    /// Create relations matching the program's predicate declarations.
    pub fn for_program(program: &Program) -> Database {
        Database {
            relations: program
                .predicates
                .iter()
                .map(|p| Relation::new(p.arity))
                .collect(),
        }
    }

    /// The relation of a predicate.
    pub fn relation(&self, p: PredId) -> &Relation {
        &self.relations[p]
    }

    /// Mutable access (facts loading, engine updates).
    pub fn relation_mut(&mut self, p: PredId) -> &mut Relation {
        &mut self.relations[p]
    }

    /// Insert a fact.
    pub fn insert(&mut self, p: PredId, t: Vec<Const>) -> bool {
        self.relations[p].insert(t)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_indexes() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![1, 2]));
        assert!(!r.insert(vec![1, 2]));
        assert!(r.insert(vec![1, 3]));
        assert!(r.insert(vec![2, 3]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.select_first(1).len(), 2);
        assert_eq!(r.select_first(9).len(), 0);
    }

    #[test]
    fn select_with_patterns() {
        let mut r = Relation::new(3);
        r.insert(vec![1, 10, 2]);
        r.insert(vec![1, 11, 3]);
        r.insert(vec![2, 10, 3]);
        assert_eq!(r.select(&[Some(1), None, None]).len(), 2);
        assert_eq!(r.select(&[Some(1), Some(10), None]).len(), 1);
        assert_eq!(r.select(&[None, Some(10), None]).len(), 2);
        assert_eq!(r.select(&[None, None, None]).len(), 3);
        assert_eq!(r.select(&[Some(9), None, None]).len(), 0);
    }

    #[test]
    fn database_mirrors_program() {
        let mut prog = Program::default();
        let e = prog.declare("e", 2, true);
        let q = prog.declare("q", 1, false);
        let mut db = Database::for_program(&prog);
        db.insert(e, vec![1, 2]);
        db.insert(q, vec![1]);
        assert_eq!(db.relation(e).len(), 1);
        assert_eq!(db.relation(q).len(), 1);
        assert_eq!(db.total_tuples(), 2);
    }
}
