//! # rpq-datalog
//!
//! A positive Datalog engine and the Section 2.3 translations of regular
//! path queries into *linear monadic* Datalog.
//!
//! The paper places path queries "in the broader framework of recursive
//! queries": a path query compiles to a Datalog program whose IDB
//! predicates are unary (`still-left_q` per quotient, or `state_h` per
//! automaton state) and whose rules are linear chain rules over the EDB
//! `ref(source, label, destination)`. Linearity yields the NC upper bound
//! the paper cites from \[19\].
//!
//! * [`ir`] — programs, rules, and the linearity/monadicity/chain analyses;
//! * [`storage`] — indexed relations and databases;
//! * [`engine`] — naive and semi-naive bottom-up fixpoints;
//! * [`qsq`] — top-down query–subquery evaluation (the paper's stated
//!   analogy with the distributed algorithm: subgoals = subqueries);
//! * [`translate`] — the two RPQ translations plus instance loading.
//!
//! ## Example
//!
//! ```
//! use rpq_automata::{parse_regex, Alphabet};
//! use rpq_graph::InstanceBuilder;
//! use rpq_datalog::translate::{translate_quotient, run};
//!
//! let mut ab = Alphabet::new();
//! let mut b = InstanceBuilder::new(&mut ab);
//! b.edge("o1", "a", "o2");
//! b.edge("o2", "b", "o3");
//! let (inst, names) = b.finish();
//! let p = parse_regex(&mut ab, "a.b*").unwrap();
//!
//! let tq = translate_quotient(&p, &ab).unwrap();
//! assert!(tq.program.is_linear() && tq.program.is_monadic());
//! let (answers, _) = run(&tq, &inst, names["o1"]);
//! assert_eq!(answers.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod engines;
pub mod ir;
pub mod magic;
pub mod qsq;
pub mod storage;
pub mod translate;

pub use engine::{eval_naive, eval_seminaive, FixpointStats};
pub use engines::{DatalogMagicEngine, DatalogNaiveEngine, DatalogSeminaiveEngine};
pub use ir::{Atom, Const, PredId, Program, Rule, RuleBuilder, Term};
pub use magic::{eval_magic, magic_transform, MagicProgram, MagicQuery, MagicStats};
pub use qsq::{eval_qsq, QsqStats};
pub use storage::{Database, Relation};
pub use translate::{translate_quotient, translate_states, TranslatedQuery};
