//! Datalog intermediate representation and program analyses.
//!
//! Section 2.3 shows that path queries compile to Datalog programs that are
//! *linear* (at most one intensional predicate per rule body) and *monadic*
//! (all IDB predicates unary) — restrictions with known complexity
//! consequences (linear Datalog is in NC \[19\]). The analyses here verify
//! those properties for arbitrary programs, so the translations in
//! [`crate::translate`] are checked rather than trusted.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A constant of the (untyped) Datalog domain. Encodings of oids and labels
/// are chosen by the caller; the engine only compares constants.
pub type Const = u64;

/// Predicate identifier: index into [`Program::predicates`].
pub type PredId = usize;

/// Rule-local variable identifier.
pub type VarId = u32;

/// A term: variable or constant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A rule-local variable.
    Var(VarId),
    /// A constant.
    Const(Const),
}

/// A predicate declaration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Predicate {
    /// Display name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Extensional (given) vs intensional (derived).
    pub is_edb: bool,
}

/// An atom `p(t1, …, tk)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

/// A rule `head :- body₁, …, bodyₙ.` (n = 0 means a fact schema).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The conjunctive body.
    pub body: Vec<Atom>,
    /// Display names for this rule's variables (index = [`VarId`]).
    pub var_names: Vec<String>,
}

/// A positive Datalog program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Declared predicates.
    pub predicates: Vec<Predicate>,
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Declare a predicate, returning its id. Names must be unique.
    pub fn declare(&mut self, name: &str, arity: usize, is_edb: bool) -> PredId {
        debug_assert!(
            self.predicates.iter().all(|p| p.name != name),
            "duplicate predicate {name}"
        );
        self.predicates.push(Predicate {
            name: name.to_owned(),
            arity,
            is_edb,
        });
        self.predicates.len() - 1
    }

    /// Look up a predicate by name.
    pub fn pred_by_name(&self, name: &str) -> Option<PredId> {
        self.predicates.iter().position(|p| p.name == name)
    }

    /// Add a rule, checking arities.
    pub fn add_rule(&mut self, rule: Rule) {
        assert_eq!(
            rule.head.terms.len(),
            self.predicates[rule.head.pred].arity,
            "head arity mismatch"
        );
        assert!(
            !self.predicates[rule.head.pred].is_edb,
            "EDB predicate in rule head"
        );
        for a in &rule.body {
            assert_eq!(
                a.terms.len(),
                self.predicates[a.pred].arity,
                "body arity mismatch"
            );
        }
        // Range restriction: every head variable occurs in the body.
        for t in &rule.head.terms {
            if let Term::Var(v) = t {
                assert!(
                    rule.body
                        .iter()
                        .flat_map(|a| a.terms.iter())
                        .any(|bt| bt == &Term::Var(*v)),
                    "unsafe rule: head variable not bound in body"
                );
            }
        }
        self.rules.push(rule);
    }

    /// IDB predicates of the program.
    pub fn idb_predicates(&self) -> Vec<PredId> {
        (0..self.predicates.len())
            .filter(|&p| !self.predicates[p].is_edb)
            .collect()
    }

    /// **Linearity** (Section 2.3): at most one IDB atom per rule body.
    pub fn is_linear(&self) -> bool {
        self.rules.iter().all(|r| {
            r.body
                .iter()
                .filter(|a| !self.predicates[a.pred].is_edb)
                .count()
                <= 1
        })
    }

    /// **Monadic** (Section 2.3): all IDB predicates have arity 1.
    pub fn is_monadic(&self) -> bool {
        self.predicates
            .iter()
            .filter(|p| !p.is_edb)
            .all(|p| p.arity == 1)
    }

    /// The predicate dependency graph: `p → q` when `q` occurs in the body
    /// of a rule with head `p`.
    pub fn dependency_graph(&self) -> Vec<Vec<PredId>> {
        let mut deps: Vec<Vec<PredId>> = vec![Vec::new(); self.predicates.len()];
        for r in &self.rules {
            for a in &r.body {
                if !deps[r.head.pred].contains(&a.pred) {
                    deps[r.head.pred].push(a.pred);
                }
            }
        }
        deps
    }

    /// Predicates involved in recursion (inside a dependency-graph cycle).
    pub fn recursive_predicates(&self) -> Vec<PredId> {
        let deps = self.dependency_graph();
        let n = self.predicates.len();
        let comp = rpq_automata::nfa::strongly_connected_components(n, |v, f| {
            for &w in &deps[v] {
                f(w);
            }
        });
        // a predicate is recursive if its SCC contains a cycle: either the
        // SCC has ≥ 2 members or it has a self-loop
        let mut size: HashMap<usize, usize> = HashMap::new();
        for &c in &comp {
            *size.entry(c).or_insert(0) += 1;
        }
        (0..n)
            .filter(|&p| size[&comp[p]] > 1 || deps[p].contains(&p))
            .collect()
    }

    /// Chain-rule detection for the RPQ-generated shape (related work \[10\]:
    /// "chain programs … where the recursive predicates are monadic"): a
    /// rule `h(x) :- b(y), e(y, C, x)` whose body threads a fresh variable
    /// through a binary-or-wider EDB atom from the IDB atom to the head.
    pub fn is_chain_rule(&self, rule: &Rule) -> bool {
        if rule.body.len() != 2 {
            return false;
        }
        let (idb, edb) = match (
            self.predicates[rule.body[0].pred].is_edb,
            self.predicates[rule.body[1].pred].is_edb,
        ) {
            (false, true) => (&rule.body[0], &rule.body[1]),
            (true, false) => (&rule.body[1], &rule.body[0]),
            _ => return false,
        };
        let (Some(Term::Var(hv)), Some(Term::Var(iv))) =
            (rule.head.terms.first(), idb.terms.first())
        else {
            return false;
        };
        // EDB atom must start with the IDB variable and end with the head var.
        matches!(edb.terms.first(), Some(Term::Var(v)) if v == iv)
            && matches!(edb.terms.last(), Some(Term::Var(v)) if v == hv)
            && hv != iv
    }

    /// Render the program in conventional Datalog syntax.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&self.render_rule(r));
            out.push('\n');
        }
        out
    }

    fn render_atom(&self, a: &Atom, names: &[String]) -> String {
        let args: Vec<String> = a
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => names
                    .get(*v as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("V{v}")),
                Term::Const(c) => format!("{c}"),
            })
            .collect();
        format!("{}({})", self.predicates[a.pred].name, args.join(", "))
    }

    fn render_rule(&self, r: &Rule) -> String {
        if r.body.is_empty() {
            format!("{}.", self.render_atom(&r.head, &r.var_names))
        } else {
            let body: Vec<String> = r
                .body
                .iter()
                .map(|a| self.render_atom(a, &r.var_names))
                .collect();
            format!(
                "{} :- {}.",
                self.render_atom(&r.head, &r.var_names),
                body.join(", ")
            )
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Convenience builder for rules with named variables.
pub struct RuleBuilder {
    vars: Vec<String>,
    index: HashMap<String, VarId>,
}

impl RuleBuilder {
    /// Start a rule.
    pub fn new() -> RuleBuilder {
        RuleBuilder {
            vars: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// A named variable term (interned per rule).
    pub fn var(&mut self, name: &str) -> Term {
        if let Some(&v) = self.index.get(name) {
            return Term::Var(v);
        }
        let v = self.vars.len() as VarId;
        self.vars.push(name.to_owned());
        self.index.insert(name.to_owned(), v);
        Term::Var(v)
    }

    /// Finish into a [`Rule`].
    pub fn rule(self, head: Atom, body: Vec<Atom>) -> Rule {
        Rule {
            head,
            body,
            var_names: self.vars,
        }
    }
}

impl Default for RuleBuilder {
    fn default() -> Self {
        RuleBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transitive_closure_program() -> (Program, PredId, PredId) {
        let mut p = Program::default();
        let edge = p.declare("edge", 2, true);
        let tc = p.declare("tc", 2, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, y],
            },
            vec![Atom {
                pred: edge,
                terms: vec![x, y],
            }],
        ));
        let mut b = RuleBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        p.add_rule(b.rule(
            Atom {
                pred: tc,
                terms: vec![x, z],
            },
            vec![
                Atom {
                    pred: tc,
                    terms: vec![x, y],
                },
                Atom {
                    pred: edge,
                    terms: vec![y, z],
                },
            ],
        ));
        (p, edge, tc)
    }

    #[test]
    fn linearity_and_monadicity() {
        let (p, _, _) = transitive_closure_program();
        assert!(p.is_linear());
        assert!(!p.is_monadic()); // tc is binary
    }

    #[test]
    fn nonlinear_detected() {
        let mut p = Program::default();
        let e = p.declare("e", 2, true);
        let t = p.declare("t", 2, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        p.add_rule(b.rule(
            Atom {
                pred: t,
                terms: vec![x, y],
            },
            vec![Atom {
                pred: e,
                terms: vec![x, y],
            }],
        ));
        let mut b = RuleBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        p.add_rule(b.rule(
            Atom {
                pred: t,
                terms: vec![x, z],
            },
            vec![
                Atom {
                    pred: t,
                    terms: vec![x, y],
                },
                Atom {
                    pred: t,
                    terms: vec![y, z],
                },
            ],
        ));
        assert!(!p.is_linear());
    }

    #[test]
    fn recursion_detection() {
        let (p, edge, tc) = transitive_closure_program();
        let rec = p.recursive_predicates();
        assert!(rec.contains(&tc));
        assert!(!rec.contains(&edge));
    }

    #[test]
    #[should_panic(expected = "unsafe rule")]
    fn unsafe_rule_rejected() {
        let mut p = Program::default();
        let e = p.declare("e", 1, true);
        let q = p.declare("q", 1, false);
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        let mut b2 = RuleBuilder::new();
        let _y = b2.var("y");
        let _ = e;
        // q(x) with empty body: x unbound
        p.add_rule(b.rule(
            Atom {
                pred: q,
                terms: vec![x],
            },
            vec![],
        ));
    }

    #[test]
    fn render_is_readable() {
        let (p, _, _) = transitive_closure_program();
        let s = p.render();
        assert!(s.contains("tc(x, y) :- edge(x, y)."));
        assert!(s.contains("tc(x, z) :- tc(x, y), edge(y, z)."));
    }

    #[test]
    fn chain_rule_detection() {
        let mut p = Program::default();
        let r = p.declare("ref", 3, true);
        let s1 = p.declare("state1", 1, false);
        let s2 = p.declare("state2", 1, false);
        let mut b = RuleBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        let rule = b.rule(
            Atom {
                pred: s2,
                terms: vec![x],
            },
            vec![
                Atom {
                    pred: s1,
                    terms: vec![y],
                },
                Atom {
                    pred: r,
                    terms: vec![y, Term::Const(9), x],
                },
            ],
        );
        assert!(p.is_chain_rule(&rule));
        p.add_rule(rule);
        // non-chain: head var equals idb var
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        let rule2 = b.rule(
            Atom {
                pred: s2,
                terms: vec![x],
            },
            vec![Atom {
                pred: s1,
                terms: vec![x],
            }],
        );
        assert!(!p.is_chain_rule(&rule2));
    }

    #[test]
    #[should_panic(expected = "EDB predicate in rule head")]
    fn edb_head_rejected() {
        let mut p = Program::default();
        let e = p.declare("e", 1, true);
        let mut b = RuleBuilder::new();
        let x = b.var("x");
        let body = vec![Atom {
            pred: e,
            terms: vec![x],
        }];
        p.add_rule(b.rule(
            Atom {
                pred: e,
                terms: vec![x],
            },
            body,
        ));
    }
}
