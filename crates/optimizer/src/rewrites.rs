//! Rewrite candidate generation.
//!
//! Three families, matching the paper's optimization examples:
//!
//! 1. **Boundedness reduction** (Example 2, Theorem 4.10): under word
//!    equalities, replace a recursive query with its certified finite
//!    equivalent.
//! 2. **Cached-query substitution** (Example 3): for a cache constraint
//!    `l = r`, if `L(q) = L(r · t)` for some tail `t` (computed as the
//!    existential quotient of `q` by `r`, converted back to a regex by
//!    state elimination), propose `l · t`. The paper's
//!    `a(ba)*c = (ab)*·(ac) → l·a·c` is exactly this shape.
//! 3. **Algebraic simplification**: the minimal-DFA regex (via state
//!    elimination) when it is smaller.
//!
//! Every candidate is *validated* before being offered: either by pure
//! language equivalence, or by constraint implication through
//! [`rpq_constraints::general::check`] — never by construction alone.

use rpq_automata::elim::nfa_to_regex;
use rpq_automata::ops::regex_equivalent;
use rpq_automata::{Dfa, Nfa, Regex};
use rpq_constraints::general::{check, Budget, Verdict};
use rpq_constraints::types::{ConstraintKind, PathConstraint};
use rpq_constraints::{decide_boundedness, Boundedness, ConstraintSet};

/// A validated rewrite candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The equivalent query.
    pub query: Regex,
    /// Which rule produced it.
    pub rule: RewriteRule,
    /// How its validity was established.
    pub proof: &'static str,
}

/// The rewrite family that produced a candidate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RewriteRule {
    /// Theorem 4.10 finite equivalent.
    Boundedness,
    /// Cache-label substitution.
    CacheSubstitution,
    /// Pure language-level simplification.
    Simplification,
    /// Section 5 view cover (Boolean combination of caches, possibly with
    /// a cache-free remainder arm) — see [`crate::views`].
    ViewCover,
    /// Boundedness under full path constraints — the budgeted semi-decision
    /// for the problem the paper leaves open at the end of Section 4.3.
    GeneralBoundedness,
}

/// Generate validated candidates equivalent to `q` under `set`.
pub fn candidates(
    set: &ConstraintSet,
    q: &Regex,
    alphabet: &rpq_automata::Alphabet,
    budget: &Budget,
) -> Vec<Candidate> {
    let mut out = Vec::new();

    // 1. boundedness reduction (word equalities only)
    if set.all_word_equalities() && !set.is_empty() {
        if let Ok(Boundedness::Bounded { equivalent, words }) = decide_boundedness(set, q, alphabet)
        {
            if words.len() <= 64 {
                out.push(Candidate {
                    query: equivalent,
                    rule: RewriteRule::Boundedness,
                    proof: "theorem-4.10-certified",
                });
            }
        }
    }

    // 1b. boundedness under full path constraints (the open-problem
    // semi-decision): only when the word-equality fast path above does not
    // apply and the set actually has constraints to exploit.
    if !set.is_empty() && !set.all_word_equalities() {
        if let rpq_constraints::GeneralBoundedness::Bounded { equivalent, proof } =
            rpq_constraints::bounded_under_path_constraints(set, q, alphabet, budget, 4, 24)
        {
            out.push(Candidate {
                query: equivalent,
                rule: RewriteRule::GeneralBoundedness,
                proof,
            });
        }
    }

    // 2. cached-query substitution: equalities l = r with l a single label
    for c in set.iter() {
        if c.kind != ConstraintKind::Equality {
            continue;
        }
        for (label_side, body_side) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
            let Some(word) = label_side.as_word() else {
                continue;
            };
            if word.len() != 1 || body_side.as_word().is_some_and(|w| w.len() <= 1) {
                continue; // want a genuine cache: single label = larger query
            }
            // tail t = ∃-quotient of q by r; candidate = l · t
            let q_nfa = Nfa::thompson(q);
            let r_nfa = Nfa::thompson(body_side);
            let starts = q_nfa.reachable_via(&r_nfa);
            if starts.is_empty() {
                continue;
            }
            let mut quot = Nfa::empty();
            let off = quot.add_nfa(&q_nfa);
            for s in starts {
                quot.add_eps(quot.start(), s + off);
            }
            // Prefer a *small finite* tail: greedily accumulate the
            // quotient's shortest words until `r · t ≡ q` (this recovers the
            // paper's `l·a·c` from `a(ba)*c`); fall back to the full
            // quotient expression.
            let mut tail: Option<Regex> = None;
            let mut words: Vec<Vec<rpq_automata::Symbol>> = Vec::new();
            for w in quot.enumerate_words(12, 16) {
                // only tails that stay inside q are usable: r·w ⊆ q
                let extension = body_side.clone().then(Regex::word(&w));
                if !rpq_automata::ops::regex_included(&extension, q) {
                    continue;
                }
                words.push(w);
                let t = Regex::from_finite_language(words.clone());
                if regex_equivalent(q, &body_side.clone().then(t.clone())) {
                    tail = Some(t);
                    break;
                }
            }
            if tail.is_none() {
                let t = nfa_to_regex(&quot);
                if t != Regex::Empty && regex_equivalent(q, &body_side.clone().then(t.clone())) {
                    tail = Some(t);
                }
            }
            let Some(tail) = tail else { continue };
            let candidate = label_side.clone().then(tail);
            // validate E ⊨ q = candidate through the implication engine
            let claim = PathConstraint::equality(q.clone(), candidate.clone());
            if let Verdict::Implied { method } = check(set, &claim, budget) {
                out.push(Candidate {
                    query: candidate,
                    rule: RewriteRule::CacheSubstitution,
                    proof: method,
                });
            }
        }
    }

    // 3. algebraic simplification via minimal DFA → regex
    {
        let sigma = {
            let mut max = 0usize;
            for s in q.symbols() {
                max = max.max(s.index() + 1);
            }
            max.max(1)
        };
        let minimal = Dfa::from_nfa(&Nfa::thompson(q), sigma).minimize();
        let simplified = nfa_to_regex(&minimal.to_nfa());
        if simplified.size() < q.size() && regex_equivalent(q, &simplified) {
            out.push(Candidate {
                query: simplified,
                rule: RewriteRule::Simplification,
                proof: "language-equivalence",
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};

    fn setup(lines: &[&str], query: &str) -> (Alphabet, ConstraintSet, Regex) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let q = parse_regex(&mut ab, query).unwrap();
        (ab, set, q)
    }

    #[test]
    fn boundedness_candidate_for_example2_shape() {
        // {ll = l} ⊨ l* = l + ε (equality version of Example 2)
        let (ab, set, q) = setup(&["l.l = l"], "l*");
        let cands = candidates(&set, &q, &ab, &Budget::default());
        let bounded = cands
            .iter()
            .find(|c| c.rule == RewriteRule::Boundedness)
            .expect("boundedness candidate");
        let expect = parse_regex(&mut ab.clone(), "l + ()").unwrap();
        assert!(regex_equivalent(&bounded.query, &expect));
    }

    #[test]
    fn cache_candidate_for_example3() {
        // {l = (ab)*} and q = a(ba)*c → l.a.c
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c");
        let cands = candidates(&set, &q, &ab, &Budget::default());
        let cache = cands
            .iter()
            .find(|c| c.rule == RewriteRule::CacheSubstitution)
            .expect("cache candidate");
        // candidate must start with the cache label
        let l = ab.get("l").unwrap();
        match &cache.query {
            Regex::Concat(parts) => assert_eq!(parts[0], Regex::sym(l)),
            other => panic!("expected concatenation, got {other:?}"),
        }
        let _ = set;
    }

    #[test]
    fn simplification_candidate_shrinks() {
        let (ab, set, q) = setup(&[], "a.a* + a.a*.a.a* + a");
        let cands = candidates(&set, &q, &ab, &Budget::default());
        let simp = cands
            .iter()
            .find(|c| c.rule == RewriteRule::Simplification)
            .expect("simplification candidate");
        assert!(simp.query.size() < q.size());
        assert!(regex_equivalent(&simp.query, &q));
    }

    #[test]
    fn no_candidates_without_opportunity() {
        let (ab, set, q) = setup(&[], "a.b");
        let cands = candidates(&set, &q, &ab, &Budget::default());
        // a.b is already minimal and there are no constraints
        assert!(cands.iter().all(|c| c.rule == RewriteRule::Simplification) || cands.is_empty());
    }

    #[test]
    fn all_candidates_are_equivalent_under_constraints() {
        let (ab, set, q) = setup(&["l = (a.b)*", "m.m = m"], "a.(b.a)*.c");
        for c in candidates(&set, &q, &ab, &Budget::default()) {
            let claim = PathConstraint::equality(q.clone(), c.query.clone());
            assert!(
                check(&set, &claim, &Budget::default()).is_implied(),
                "candidate {:?} not implied",
                c.rule
            );
        }
    }
    #[test]
    fn general_boundedness_candidate_for_path_inclusion() {
        // A genuine path constraint (not a word equality): a* ⊆ a + ε.
        // The Example-2 shape, but outside Theorem 4.10's fragment —
        // handled by the open-problem semi-decision.
        let (ab, set, q) = setup(&["a* <= a + ()"], "a*");
        let cands = candidates(&set, &q, &ab, &Budget::default());
        let gb = cands
            .iter()
            .find(|c| c.rule == RewriteRule::GeneralBoundedness)
            .expect("general-boundedness candidate");
        assert!(gb.query.finite_language(8).is_some(), "{:?}", gb.query);
        let claim = PathConstraint::equality(q.clone(), gb.query.clone());
        assert!(check(&set, &claim, &Budget::default()).is_implied());
    }
}
