//! A query cost model.
//!
//! The paper deliberately leaves "simpler" open ("this could potentially
//! involve a cost measure using information not captured by our basic
//! model"). We provide three measures:
//!
//! * a *static* cost — automaton size plus a recursion penalty: recursion
//!   forces site-set exploration proportional to reachable-graph size,
//!   which is why the paper singles out nonrecursive equivalents
//!   ("guaranteed to terminate", Example 1) and cached rewrites
//!   (Example 3);
//! * an *estimated* cost — the static shape weighted by the per-label
//!   frequency statistics a [`rpq_graph::CsrGraph`] snapshot collects
//!   ([`LabelStats`]), replacing the uniform-fanout guess: a transition on
//!   a hot label costs what the data says it costs;
//! * a *measured* cost — run the query on a snapshot and count work (used
//!   by the benches to validate the static and estimated rankings).

use rpq_automata::{Nfa, Regex};
use rpq_core::eval_product_csr;
use rpq_graph::{CsrGraph, LabelStats, Oid};
use serde::{Deserialize, Serialize};

/// Static cost of a query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StaticCost {
    /// NFA states (message/bookkeeping size driver).
    pub states: usize,
    /// AST size (wire size driver).
    pub ast_size: usize,
    /// Is the language infinite (recursion that may explore the whole
    /// reachable graph)?
    pub recursive: bool,
}

impl StaticCost {
    /// Compute the static cost of `q`.
    pub fn of(q: &Regex) -> StaticCost {
        let nfa = Nfa::thompson(q);
        StaticCost {
            states: nfa.num_states(),
            ast_size: q.size(),
            recursive: !nfa.is_finite_lang(),
        }
    }

    /// Scalar ranking: recursion dominates, then automaton size, then AST.
    pub fn score(&self) -> usize {
        (if self.recursive { 10_000 } else { 0 }) + self.states * 10 + self.ast_size
    }
}

/// Estimated evaluation cost of `q` over a graph summarized by `stats`:
/// per product-BFS visit, a transition on label `l` delivers
/// `edge_count(l)`-proportional work through the label index, so the sum
/// over the query NFA's labeled transitions estimates the per-sweep edge
/// traffic. Recursive queries pay a revisit factor (the fixpoint may sweep
/// the reachable portion several times); the AST size tie-breaks.
///
/// Unlike [`StaticCost::score`], two equivalents with the same shape but
/// different labels rank differently when the data is label-skewed —
/// exactly the case cached rewrites (`l_q = q`) exploit, since the cache
/// label is typically rare.
pub fn estimated_cost(q: &Regex, stats: &LabelStats) -> usize {
    let nfa = Nfa::thompson(q);
    let mut per_sweep = 0usize;
    for s in 0..nfa.num_states() as u32 {
        for &(sym, _) in nfa.transitions(s) {
            per_sweep += stats.edge_count(sym);
        }
    }
    let revisit = if nfa.is_finite_lang() { 1 } else { 4 };
    per_sweep * revisit + q.size()
}

/// Measured cost: evaluation work counters on a concrete snapshot.
pub fn measured_cost(q: &Regex, graph: &CsrGraph, source: Oid) -> usize {
    eval_product_csr(&Nfa::thompson(q), graph, source)
        .stats
        .total_work()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    #[test]
    fn recursion_dominates_cost() {
        let mut ab = Alphabet::new();
        let rec = parse_regex(&mut ab, "l*").unwrap();
        let non = parse_regex(&mut ab, "l + ()").unwrap();
        assert!(StaticCost::of(&rec).score() > StaticCost::of(&non).score());
    }

    #[test]
    fn smaller_expression_cheaper() {
        let mut ab = Alphabet::new();
        let big = parse_regex(&mut ab, "a.b.c.d.e.f + a.b.c.d.e.g").unwrap();
        let small = parse_regex(&mut ab, "a.b.c.d.e.(f+g)").unwrap();
        assert!(StaticCost::of(&small).score() <= StaticCost::of(&big).score());
    }

    #[test]
    fn measured_cost_reflects_work() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..20 {
            b.edge(&format!("n{i}"), "l", &format!("n{}", i + 1));
        }
        let (inst, names) = b.finish();
        let src = names["n0"];
        let graph = CsrGraph::from(&inst);
        let rec = parse_regex(&mut ab, "l*").unwrap();
        let non = parse_regex(&mut ab, "l + ()").unwrap();
        assert!(measured_cost(&rec, &graph, src) > measured_cost(&non, &graph, src));
    }

    #[test]
    fn estimated_cost_prefers_rare_labels() {
        // hot/cold skew: same query shape, but the cold-label variant must
        // rank cheaper once statistics are consulted — StaticCost cannot
        // tell them apart.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..40 {
            b.edge("hub", "hot", &format!("h{i}"));
        }
        b.edge("hub", "cold", "t");
        let (inst, _) = b.finish();
        let stats = CsrGraph::from(&inst).stats().clone();
        let hot = parse_regex(&mut ab, "hot.hot").unwrap();
        let cold = parse_regex(&mut ab, "cold.cold").unwrap();
        assert_eq!(StaticCost::of(&hot).score(), StaticCost::of(&cold).score());
        assert!(estimated_cost(&cold, &stats) < estimated_cost(&hot, &stats));
    }

    #[test]
    fn estimated_cost_penalizes_recursion_on_data() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "l", "y");
        b.edge("y", "l", "x");
        let (inst, _) = b.finish();
        let stats = CsrGraph::from(&inst).stats().clone();
        let rec = parse_regex(&mut ab, "l*").unwrap();
        let non = parse_regex(&mut ab, "l + ()").unwrap();
        assert!(estimated_cost(&rec, &stats) > estimated_cost(&non, &stats));
    }
}
