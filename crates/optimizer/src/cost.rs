//! A query cost model.
//!
//! The paper deliberately leaves "simpler" open ("this could potentially
//! involve a cost measure using information not captured by our basic
//! model"). We provide two measures:
//!
//! * a *static* cost — automaton size plus a recursion penalty: recursion
//!   forces site-set exploration proportional to reachable-graph size,
//!   which is why the paper singles out nonrecursive equivalents
//!   ("guaranteed to terminate", Example 1) and cached rewrites
//!   (Example 3);
//! * a *measured* cost — run the query on a sample instance and count work
//!   (used by the benches to validate the static ranking).

use rpq_automata::{Nfa, Regex};
use rpq_core::eval_product;
use rpq_graph::{Instance, Oid};
use serde::{Deserialize, Serialize};

/// Static cost of a query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StaticCost {
    /// NFA states (message/bookkeeping size driver).
    pub states: usize,
    /// AST size (wire size driver).
    pub ast_size: usize,
    /// Is the language infinite (recursion that may explore the whole
    /// reachable graph)?
    pub recursive: bool,
}

impl StaticCost {
    /// Compute the static cost of `q`.
    pub fn of(q: &Regex) -> StaticCost {
        let nfa = Nfa::thompson(q);
        StaticCost {
            states: nfa.num_states(),
            ast_size: q.size(),
            recursive: !nfa.is_finite_lang(),
        }
    }

    /// Scalar ranking: recursion dominates, then automaton size, then AST.
    pub fn score(&self) -> usize {
        (if self.recursive { 10_000 } else { 0 }) + self.states * 10 + self.ast_size
    }
}

/// Measured cost: evaluation work counters on a concrete instance.
pub fn measured_cost(q: &Regex, instance: &Instance, source: Oid) -> usize {
    eval_product(&Nfa::thompson(q), instance, source)
        .stats
        .total_work()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::InstanceBuilder;

    #[test]
    fn recursion_dominates_cost() {
        let mut ab = Alphabet::new();
        let rec = parse_regex(&mut ab, "l*").unwrap();
        let non = parse_regex(&mut ab, "l + ()").unwrap();
        assert!(StaticCost::of(&rec).score() > StaticCost::of(&non).score());
    }

    #[test]
    fn smaller_expression_cheaper() {
        let mut ab = Alphabet::new();
        let big = parse_regex(&mut ab, "a.b.c.d.e.f + a.b.c.d.e.g").unwrap();
        let small = parse_regex(&mut ab, "a.b.c.d.e.(f+g)").unwrap();
        assert!(StaticCost::of(&small).score() <= StaticCost::of(&big).score());
    }

    #[test]
    fn measured_cost_reflects_work() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..20 {
            b.edge(&format!("n{i}"), "l", &format!("n{}", i + 1));
        }
        let (inst, names) = b.finish();
        let src = names["n0"];
        let rec = parse_regex(&mut ab, "l*").unwrap();
        let non = parse_regex(&mut ab, "l + ()").unwrap();
        assert!(measured_cost(&rec, &inst, src) > measured_cost(&non, &inst, src));
    }
}
