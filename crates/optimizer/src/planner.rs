//! Plan selection: pick the cheapest validated equivalent.
//!
//! "The query processor at each site may use the path constraints holding
//! at the site to replace the query to be executed by a simpler query."
//! [`optimize`] ties the pieces together: generate candidates, rank by the
//! static cost model, return the winner with its provenance. A memoizing
//! [`RewriteCache`] packages the optimizer as the per-site hook expected by
//! `rpq_distributed::Simulator::with_rewrite`.

use std::collections::HashMap;

use parking_lot::Mutex;

use rpq_automata::{Alphabet, Regex};
use rpq_constraints::general::Budget;
use rpq_constraints::ConstraintSet;
use rpq_graph::LabelStats;

use crate::cost::{estimated_cost, StaticCost};
use crate::rewrites::{candidates, Candidate, RewriteRule};

/// The outcome of optimizing one query.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The selected query (the input itself when nothing beat it).
    pub query: Regex,
    /// Cost before.
    pub before: StaticCost,
    /// Cost after.
    pub after: StaticCost,
    /// The applied rule, if any.
    pub applied: Option<RewriteRule>,
    /// All candidates considered (diagnostics).
    pub considered: usize,
}

impl Optimized {
    /// Did optimization change the query?
    pub fn improved(&self) -> bool {
        self.applied.is_some()
    }
}

/// Optimize `q` under `set`: cheapest validated equivalent by static cost.
///
/// Besides the whole-query candidates of [`candidates`], union queries are
/// also rewritten *arm-wise* — the conclusion's "partial use of cached
/// queries rather than using them to fully answer the given query": each
/// union arm is optimized independently and the recombined union is kept
/// when it wins. Arm rewrites are equivalences under `E`, so their union
/// is too (no extra validation round needed).
pub fn optimize(set: &ConstraintSet, q: &Regex, alphabet: &Alphabet, budget: &Budget) -> Optimized {
    optimize_scored(set, q, alphabet, budget, &|r| StaticCost::of(r).score())
}

/// Like [`optimize`], but rank candidates by the *data-aware* estimated
/// cost ([`estimated_cost`]) computed from the per-label statistics of a
/// `rpq_graph::CsrGraph` snapshot, instead of the static shape score. Two
/// equivalents that the static model cannot separate (same automaton size)
/// rank correctly when the data is label-skewed — e.g. a cache substitution
/// whose cache label is rare wins by exactly its selectivity.
pub fn optimize_with_stats(
    set: &ConstraintSet,
    q: &Regex,
    alphabet: &Alphabet,
    budget: &Budget,
    stats: &LabelStats,
) -> Optimized {
    optimize_scored(set, q, alphabet, budget, &|r| estimated_cost(r, stats))
}

fn optimize_scored(
    set: &ConstraintSet,
    q: &Regex,
    alphabet: &Alphabet,
    budget: &Budget,
    score: &dyn Fn(&Regex) -> usize,
) -> Optimized {
    let before = StaticCost::of(q);
    let mut cands: Vec<Candidate> = candidates(set, q, alphabet, budget);

    // Section 5 view covers (total and partial), already verified.
    for v in crate::views::rewrite_with_views(
        set,
        q,
        alphabet,
        &crate::views::ViewSearchConfig::default(),
    ) {
        cands.push(Candidate {
            query: v.query,
            rule: RewriteRule::ViewCover,
            proof: v.proof,
        });
    }

    // union-arm decomposition (one level, non-recursive to bound cost)
    if let Regex::Union(arms) = q {
        let mut rewritten = Vec::with_capacity(arms.len());
        let mut any = false;
        for arm in arms {
            let arm_cands = candidates(set, arm, alphabet, budget);
            let arm_score = score(arm);
            let best_arm = arm_cands
                .into_iter()
                .map(|c| (score(&c.query), c))
                .filter(|(s, _)| *s < arm_score)
                .min_by_key(|(s, _)| *s);
            match best_arm {
                Some((_, c)) => {
                    rewritten.push(c.query);
                    any = true;
                }
                None => rewritten.push(arm.clone()),
            }
        }
        if any {
            cands.push(Candidate {
                query: Regex::union(rewritten),
                rule: crate::rewrites::RewriteRule::CacheSubstitution,
                proof: "arm-wise (equivalence of arms under E)",
            });
        }
    }

    let considered = cands.len();
    let input_score = score(q);
    let mut best: Option<(usize, Candidate)> = None;
    for c in cands {
        let s = score(&c.query);
        if s < input_score && best.as_ref().is_none_or(|(b, _)| s < *b) {
            best = Some((s, c));
        }
    }
    match best {
        Some((_, c)) => Optimized {
            after: StaticCost::of(&c.query),
            query: c.query,
            before,
            applied: Some(c.rule),
            considered,
        },
        None => Optimized {
            query: q.clone(),
            after: before.clone(),
            before,
            applied: None,
            considered,
        },
    }
}

/// A memoizing per-site rewrite hook for the distributed runners: every
/// site shares `set` (or use one cache per site set). Interior mutability
/// because the runners' hook is `Fn`; the memo sits behind a
/// `parking_lot::Mutex`, so the cache is `Send + Sync` and one instance can
/// back the *threaded* runner and the `PartitionedBatchEngine` workers,
/// not just the single-threaded simulator. The lock is held only around
/// memo probes/inserts — the optimization itself runs unlocked (a race
/// costs at most one duplicate optimization of the same query; both
/// results are identical, insertion is idempotent).
pub struct RewriteCache<'a> {
    set: &'a ConstraintSet,
    alphabet: &'a Alphabet,
    budget: Budget,
    stats: Option<LabelStats>,
    memo: Mutex<HashMap<Regex, Regex>>,
}

impl<'a> RewriteCache<'a> {
    /// Create a cache for the given constraint set.
    pub fn new(set: &'a ConstraintSet, alphabet: &'a Alphabet, budget: Budget) -> Self {
        RewriteCache {
            set,
            alphabet,
            budget,
            stats: None,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Rank rewrites with per-label statistics (from a `CsrGraph`
    /// snapshot) instead of the static shape score.
    pub fn with_stats(mut self, stats: LabelStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The rewrite for `q` (memoized).
    pub fn rewrite(&self, q: &Regex) -> Regex {
        if let Some(r) = self.memo.lock().get(q) {
            return r.clone();
        }
        let out = match &self.stats {
            Some(stats) => {
                optimize_with_stats(self.set, q, self.alphabet, &self.budget, stats).query
            }
            None => optimize(self.set, q, self.alphabet, &self.budget).query,
        };
        self.memo.lock().insert(q.clone(), out.clone());
        out
    }

    /// Number of distinct queries optimized.
    pub fn len(&self) -> usize {
        self.memo.lock().len()
    }

    /// Is the memo empty?
    pub fn is_empty(&self) -> bool {
        self.memo.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::ops::regex_equivalent;
    use rpq_automata::parse_regex;

    fn setup(lines: &[&str], query: &str) -> (Alphabet, ConstraintSet, Regex) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let q = parse_regex(&mut ab, query).unwrap();
        (ab, set, q)
    }

    #[test]
    fn example2_optimizes_to_nonrecursive() {
        let (ab, set, q) = setup(&["l.l = l"], "l*");
        let opt = optimize(&set, &q, &ab, &Budget::default());
        assert!(opt.improved());
        assert!(!opt.after.recursive);
        let mut ab2 = ab.clone();
        let expect = parse_regex(&mut ab2, "l + ()").unwrap();
        assert!(regex_equivalent(&opt.query, &expect));
    }

    #[test]
    fn example3_optimizes_to_cache() {
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c");
        let opt = optimize(&set, &q, &ab, &Budget::default());
        assert!(opt.improved(), "{opt:?}");
        assert_eq!(
            opt.applied,
            Some(crate::rewrites::RewriteRule::CacheSubstitution)
        );
        assert!(!opt.after.recursive, "cache hit removes recursion");
    }

    #[test]
    fn no_improvement_returns_input() {
        let (ab, set, q) = setup(&[], "a.b");
        let opt = optimize(&set, &q, &ab, &Budget::default());
        assert!(!opt.improved());
        assert_eq!(opt.query, q);
    }

    #[test]
    fn union_arms_are_rewritten_independently() {
        // two caches: l1 = (a.b)*, l2 = (c.d)*; the query is a union of
        // tails of both — each arm substitutes its own cache.
        let (ab, set, q) = setup(&["l1 = (a.b)*", "l2 = (c.d)*"], "a.(b.a)*.x + c.(d.c)*.y");
        let opt = optimize(&set, &q, &ab, &Budget::default());
        assert!(opt.improved(), "{opt:?}");
        assert!(!opt.after.recursive, "both arms lose recursion: {opt:?}");
        let mut ab2 = ab.clone();
        let expect = parse_regex(&mut ab2, "l1.a.x + l2.c.y").unwrap();
        assert!(
            regex_equivalent(&opt.query, &expect),
            "got {}",
            opt.query.display(&ab)
        );
    }

    #[test]
    fn stats_aware_ranking_uses_label_frequencies() {
        use rpq_graph::{CsrGraph, InstanceBuilder};
        // the cache label `l` is rare on the data; both rankings should
        // accept the cache substitution, and the stats-aware winner's
        // estimated cost must beat the input's.
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c");
        let mut ab2 = ab.clone();
        let mut b = InstanceBuilder::new(&mut ab2);
        for i in 0..20 {
            b.edge(&format!("v{i}"), "a", &format!("w{i}"));
            b.edge(&format!("w{i}"), "b", &format!("v{}", i + 1));
        }
        b.edge("v0", "l", "v5");
        let (inst, _) = b.finish();
        let stats = CsrGraph::from(&inst).stats().clone();
        let opt = optimize_with_stats(&set, &q, &ab, &Budget::default(), &stats);
        assert!(opt.improved(), "{opt:?}");
        assert!(
            estimated_cost(&opt.query, &stats) < estimated_cost(&q, &stats),
            "stats-aware winner must be estimated cheaper"
        );
    }

    #[test]
    fn rewrite_cache_memoizes() {
        let (ab, set, q) = setup(&["l.l = l"], "l*");
        let cache = RewriteCache::new(&set, &ab, Budget::default());
        let r1 = cache.rewrite(&q);
        let r2 = cache.rewrite(&q);
        assert_eq!(r1, r2);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    /// Compile-time: the cache must be shareable across the threaded
    /// distributed runner and the partitioned batch workers.
    #[test]
    fn rewrite_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RewriteCache<'_>>();
    }

    #[test]
    fn one_cache_shared_across_threads() {
        let (ab, set, q) = setup(&["l.l = l"], "l*");
        let cache = RewriteCache::new(&set, &ab, Budget::default());
        let expected = cache.rewrite(&q);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.rewrite(&q), expected);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1, "all threads hit the one memo entry");
    }
}
