//! [`PlannedEngine`] — the optimizer as a first-class evaluation engine.
//!
//! The paper's Section 3.2 processor "may use the path constraints holding
//! at the site to replace the query to be executed by a simpler query" —
//! it chooses *what* to evaluate. A production engine must also choose
//! *how*: the reverse CSR adjacency makes backward evaluation possible,
//! and on label-skewed data the cheap end of a query can be orders of
//! magnitude cheaper than the expensive end. [`PlannedEngine`] wraps any
//! [`Engine`] and, per query × snapshot:
//!
//! 1. runs the constraint rewrite ([`optimize_with_stats`]) against the
//!    snapshot's [`rpq_graph::LabelStats`] — the Section 3.2 *what*;
//! 2. compiles the winner once ([`Query`]) and estimates the forward cost
//!    (edges matching the query's *first* label group) and the backward
//!    cost (edges matching its *last*) — the *how*: [`Direction::Backward`]
//!    when the last group is decisively rarer, [`Direction::Forward`] when
//!    the first is, [`Direction::Bidirectional`] (meet-in-the-middle) when
//!    neither end dominates; the decisiveness factor is a [`PlannerConfig`]
//!    knob (default 2×);
//! 3. memoizes the whole [`Plan`] behind a `parking_lot::Mutex`, so
//!    repeated queries skip both the rewrite search and recompilation, and
//!    one engine instance can be shared across threads (the threaded
//!    distributed runner, `PartitionedBatchEngine` workers).
//!
//! # Epoch-aware plan reuse
//!
//! The memo key carries the snapshot's [`rpq_graph::Epoch`] lineage. For a
//! mutating [`rpq_graph::DeltaGraph`], a small edge batch changes the
//! statistics fingerprint but *not* the base lineage — instead of
//! recompiling, the planner re-derives the two entry costs from the
//! current statistics and **reuses** the memoized plan whenever the
//! direction decision is unchanged and neither cost drifted past the
//! decisiveness factor (any cached plan for the same query is *sound* —
//! statistics only rank candidates — so drift-reuse trades at most
//! optimality, never correctness, and the drift bound caps even that).
//! `compact()` installs a fresh base lineage, which invalidates the memo
//! for that graph — exactly the rebuild-time recompilation the overlay
//! deferred. Hits and misses are counted on the engine
//! ([`PlannedEngine::plan_cache_hits`]) and stamped into every
//! [`rpq_core::EvalStats`] this engine produces, together with the chosen
//! [`Direction`] — the observability seam of the cost-calibration work.
//!
//! Through the [`Engine`] trait ([`Engine::eval`] / [`Engine::eval_batch`])
//! the planner affects only *what* the inner engine runs — set-semantics
//! answers are direction-independent, so the wrapper provably returns the
//! inner engine's answer set. The direction choice pays off on the
//! scenarios the reverse CSR opens: [`PlannedEngine::eval_to`]
//! (target-bound) and [`PlannedEngine::eval_pair`] ((source, target)
//! reachability — bench `t12_direction_choice`); [`PlannedEngine::eval_view`]
//! evaluates over any [`GraphView`] (e.g. a delta overlay) with the same
//! memo.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use rpq_automata::{Alphabet, Nfa, Regex, StateId, Symbol};
use rpq_constraints::general::Budget;
use rpq_constraints::ConstraintSet;
use rpq_core::{
    eval_pairs_bound_controlled_csr_with, eval_pairs_bound_csr_with,
    eval_pairs_bound_parallel_csr_with, eval_pairs_from_sources_controlled_csr_with,
    eval_pairs_from_sources_csr_with, eval_pairs_from_sources_parallel_csr_with,
    eval_pairs_to_targets_controlled_csr_with, eval_pairs_to_targets_csr_with,
    eval_pairs_to_targets_parallel_csr_with, eval_product_backward_controlled_reversed_csr_with,
    eval_product_backward_parallel_reversed_csr_with, eval_product_backward_reversed_csr_with,
    eval_product_batch_csr_with, eval_product_batch_parallel_csr_with,
    eval_product_bounded_backward_reversed_csr_with, eval_product_bounded_csr_with,
    eval_product_controlled_csr_with, eval_product_csr_with, eval_product_matrix_csr_with,
    eval_product_pair_backward_reversed_csr_with, eval_product_pair_controlled_csr_with,
    eval_product_pair_forward_csr_with, eval_product_pair_reversed_csr_with,
    eval_product_parallel_csr_with, eval_product_to_batch_csr_with,
    eval_product_to_batch_parallel_csr_with, seed_candidates, Answers, BatchResult, Engine,
    EvalControl, EvalRequest, EvalResponse, EvalResult, EvalStats, FrontierMode, MatrixResult,
    PairResult, PairSetResult, Query, ScratchPool, SourceSpec, Termination, WorkerPool,
    PAR_LEVEL_THRESHOLD, PULL_SWEEP_DISCOUNT,
};
use rpq_graph::{CsrGraph, GraphView, LabelStats, Oid};

use crate::analysis::{analyze, AnalysisFacts};
use crate::join::{execute_join_parallel, plan_join, Crpq, HeadBindings, JoinPlan};
use crate::planner::optimize_with_stats;

pub use rpq_core::Direction;

/// Tunable planning thresholds.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlannerConfig {
    /// Multiplicative decisiveness factor (≥ 1.0). One end of a query must
    /// be at least this factor cheaper than the other to win the direction
    /// choice outright; the same factor bounds how far the entry costs may
    /// drift before an epoch-reused plan is recompiled. The historical
    /// hardcoded value was 2×, kept as the default pending calibration
    /// against measured `edges_scanned` (see the ROADMAP item).
    pub decisiveness: f64,
    /// Pull-sweep pricing discount for the hybrid product BFS (≥ 1): one
    /// pull sweep over `|Q|·|V|` candidate pairs is priced at
    /// `|Q|·|V| / pull_sweep_discount` edge scans when deciding per level
    /// between push and pull. Larger values switch to pull earlier. The
    /// default is the calibrated [`PULL_SWEEP_DISCOUNT`]; live deployments
    /// can re-derive it from per-class `push_levels` / `pull_levels`
    /// telemetry (`rpq_server::Metrics::suggest_pull_discount`). Requests
    /// that leave their frontier mode at the default hybrid get this value
    /// via [`FrontierMode::hybrid_with_discount`]; explicit request modes
    /// win.
    pub pull_sweep_discount: usize,
    /// Intra-query degree-of-parallelism ceiling (≥ 1): the engine's
    /// [`WorkerPool`] holds `parallelism − 1` extra-worker permits shared
    /// by every concurrent query, and [`PlannedEngine::decide_dop`] asks
    /// for up to this many threads when a query's estimated frontier work
    /// clears [`PAR_LEVEL_THRESHOLD`]. The default 1 keeps every query on
    /// the caller's thread — the pre-parallelism behavior, bit for bit.
    pub parallelism: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            decisiveness: 2.0,
            pull_sweep_discount: PULL_SWEEP_DISCOUNT,
            parallelism: 1,
        }
    }
}

/// One planned query over one snapshot: the rewrite winner compiled once
/// (forward and reversed), plus the direction decision and its cost
/// inputs.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The rewritten (or original) query, compiled.
    pub query: Query,
    /// The rewritten query's reversed NFA (the backward/pair engines run
    /// it over the reverse adjacency), compiled once with the plan.
    pub reversed: Nfa,
    /// Did the constraint rewrite change the query?
    pub improved: bool,
    /// The planned direction for pair/target-bound evaluation.
    pub direction: Direction,
    /// Estimated forward entry cost: edges matching the first label group.
    pub forward_cost: usize,
    /// Estimated backward entry cost: edges matching the last label group.
    pub backward_cost: usize,
    /// Static analysis facts (alphabet pruning, trimming, emptiness,
    /// finiteness, rewrite certification) derived at plan time.
    pub facts: AnalysisFacts,
}

/// Memo key: the snapshot's epoch lineage plus node/edge counts and a hash
/// of the per-label statistics, so snapshots that merely *coincide* in
/// size do not share plans (direction and rewrite ranking both come from
/// the statistics). Lineage 0 (standalone `CsrGraph`s) only ever matches
/// exactly; nonzero lineages additionally allow the drift-bounded reuse
/// described in the module docs.
type MemoKey = (u64, usize, usize, u64);

fn memo_key<G: GraphView>(graph: &G) -> MemoKey {
    (
        graph.epoch().base,
        graph.num_nodes(),
        graph.num_edges(),
        stats_fingerprint(graph.stats()),
    )
}

fn stats_fingerprint(stats: &LabelStats) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (sym, edges) in stats.iter() {
        (sym.index(), edges, stats.source_count(sym)).hash(&mut h);
    }
    h.finish()
}

struct MemoEntry {
    key: MemoKey,
    plan: Arc<Plan>,
}

/// CRPQ join-plan memo key: the query's canonical [`Crpq::signature`] plus
/// the head-boundness flags the request carried (a bound head variable can
/// flip both the starting atom and every direction downstream, so bound
/// and free requests plan separately).
type CrpqSig = (String, bool, bool);

/// One snapshot-keyed entry in the CRPQ join-plan memo.
type CrpqMemoEntry = (MemoKey, Arc<JoinPlan>);

/// Bound on distinct snapshots the plan memo retains **per query**: a
/// long-lived engine over a mutating graph sees a fresh [`MemoKey`] per
/// rebuild (or per out-of-drift delta epoch), and each retired snapshot's
/// plan is dead weight — without a bound the memo grows with snapshots ×
/// queries. The oldest entry is evicted once the bound is hit; the working
/// set of live snapshots in any realistic deployment is far below it.
const MAX_MEMOIZED_SNAPSHOTS: usize = 8;

/// An [`Engine`] wrapper that plans before it evaluates: constraint
/// rewriting (*what*), direction choice (*how*), and a shared, thread-safe
/// compiled-plan memo with epoch-aware reuse. See the module docs.
pub struct PlannedEngine<E> {
    inner: E,
    set: ConstraintSet,
    alphabet: Alphabet,
    budget: Budget,
    config: PlannerConfig,
    memo: Mutex<HashMap<Regex, Vec<MemoEntry>>>,
    crpq_memo: Mutex<HashMap<CrpqSig, Vec<CrpqMemoEntry>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    scratch: ScratchPool,
    workers: WorkerPool,
    /// Live pull-sweep discount: initialized from the config, re-tunable
    /// at runtime (`set_pull_discount`) from serving telemetry without
    /// touching in-flight queries — each request reads it once at start.
    live_discount: AtomicUsize,
}

impl<E> PlannedEngine<E> {
    /// Plan over `set` (the constraints holding at this site) with the
    /// default validation [`Budget`] and [`PlannerConfig`].
    pub fn new(inner: E, set: ConstraintSet, alphabet: Alphabet) -> PlannedEngine<E> {
        PlannedEngine {
            inner,
            set,
            alphabet,
            budget: Budget::default(),
            config: PlannerConfig::default(),
            memo: Mutex::new(HashMap::new()),
            crpq_memo: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            scratch: ScratchPool::new(),
            workers: WorkerPool::new(1),
            live_discount: AtomicUsize::new(PULL_SWEEP_DISCOUNT),
        }
    }

    /// Plan without constraints: the rewrite pass is an identity and only
    /// the direction choice and plan memo remain.
    pub fn unconstrained(inner: E, alphabet: Alphabet) -> PlannedEngine<E> {
        PlannedEngine::new(inner, ConstraintSet::default(), alphabet)
    }

    /// Replace the candidate-validation budget.
    pub fn with_budget(mut self, budget: Budget) -> PlannedEngine<E> {
        self.budget = budget;
        self
    }

    /// Replace the planning thresholds.
    pub fn with_config(mut self, config: PlannerConfig) -> PlannedEngine<E> {
        assert!(config.decisiveness >= 1.0, "decisiveness must be ≥ 1.0");
        assert!(
            config.pull_sweep_discount >= 1,
            "pull_sweep_discount must be ≥ 1"
        );
        assert!(config.parallelism >= 1, "parallelism must be ≥ 1");
        self.config = config;
        self.live_discount = AtomicUsize::new(config.pull_sweep_discount);
        self.workers = WorkerPool::new(config.parallelism);
        if config.parallelism > 1 {
            // Parallel levels check out one arena per extra worker on top
            // of the per-query arena; an undersized pool would thrash.
            let wanted = config.parallelism * 2;
            if self.scratch.capacity() < wanted {
                self.scratch = ScratchPool::with_capacity(wanted);
            }
        }
        self
    }

    /// The frontier mode a request effectively runs under: an explicit
    /// request mode wins; the default hybrid picks up the configured
    /// pull-sweep discount.
    fn effective_mode(&self, requested: FrontierMode) -> FrontierMode {
        match requested {
            FrontierMode::Hybrid => {
                FrontierMode::hybrid_with_discount(self.live_discount.load(Ordering::Relaxed))
            }
            other => other,
        }
    }

    /// The pull-sweep discount currently applied to default-hybrid
    /// requests (the live, possibly re-tuned value — the config holds the
    /// starting point).
    pub fn pull_discount(&self) -> usize {
        self.live_discount.load(Ordering::Relaxed)
    }

    /// Re-tune the live pull-sweep discount (clamped to ≥ 1). In-flight
    /// queries are unaffected — the discount is read once per request when
    /// its frontier mode resolves; only queries planned after this call
    /// see the new pricing.
    pub fn set_pull_discount(&self, discount: usize) {
        self.live_discount.store(discount.max(1), Ordering::Relaxed);
    }

    /// The shared intra-query worker-permit pool (sized by
    /// [`PlannerConfig::parallelism`]).
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.workers
    }

    /// The degree of parallelism worth *asking* for on this planned query:
    /// the configured ceiling when the estimated total frontier work — the
    /// label-statistics edge mass reachable through the planned automaton's
    /// transitions — clears [`PAR_LEVEL_THRESHOLD`], and 1 (sequential, the
    /// zero-regression path) for everything smaller, for statically empty
    /// plans, and for finite languages too short to build a big frontier.
    /// The [`WorkerPool`] lease may still grant less under load.
    pub fn decide_dop<G: GraphView>(&self, plan: &Plan, graph: &G) -> usize {
        if self.workers.parallelism() <= 1 || plan.facts.statically_empty {
            return 1;
        }
        if plan.facts.max_word_len.is_some_and(|cap| cap <= 2) {
            return 1;
        }
        let stats = graph.stats();
        let nfa = plan.query.nfa();
        let mut est = 0usize;
        for q in 0..nfa.num_states() {
            for &(sym, _) in nfa.transitions(q as StateId) {
                est = est.saturating_add(stats.edge_count(sym));
            }
        }
        if est >= PAR_LEVEL_THRESHOLD {
            self.workers.parallelism()
        } else {
            1
        }
    }

    /// The active planning thresholds.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The evaluation scratch pool this engine's product-BFS entry points
    /// draw working memory from: after warm-up, repeated queries of
    /// covered `|Q|·|V|` shape allocate nothing (`ScratchPool::reuses`
    /// counts the warm checkouts; every evaluation also reports
    /// `stats.scratch_reused` when its buffers were capacity-covered).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.scratch
    }

    /// Number of distinct (query, snapshot) plans memoized.
    pub fn plans_cached(&self) -> usize {
        self.memo.lock().values().map(Vec::len).sum()
    }

    /// Plans served from the memo so far (exact-key hits plus epoch-drift
    /// reuses), across every entry point of this engine instance.
    pub fn plan_cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Plans built from scratch so far (rewrite search + compilation).
    pub fn plan_cache_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The plan for `query` over `graph` (memoized): rewrite winner,
    /// compiled NFA, direction decision. Generic over any [`GraphView`].
    pub fn plan<G: GraphView>(&self, query: &Query, graph: &G) -> Arc<Plan> {
        self.plan_status(query.regex(), query.alphabet(), graph).0
    }

    /// The rewritten form of `q` over `graph`'s statistics (memoized) —
    /// usable as the per-site hook of the distributed runners:
    /// `sim.with_rewrite(|_site, q| planned.rewrite(q, &graph))`.
    pub fn rewrite<G: GraphView>(&self, q: &Regex, graph: &G) -> Regex {
        self.plan_status(q, &self.alphabet, graph)
            .0
            .query
            .regex()
            .clone()
    }

    /// Entry cost of a label group under `stats`.
    fn group_cost(symbols: &[Symbol], stats: &LabelStats) -> usize {
        symbols.iter().map(|&s| stats.edge_count(s)).sum()
    }

    /// Epoch-drift reuse check: under the *current* statistics, would the
    /// memoized plan still be chosen? True when the direction decision is
    /// unchanged and neither entry cost drifted past the decisiveness
    /// factor relative to its plan-time value. Alphabet pruning is the one
    /// *stats-dependent soundness* input: a plan that erased symbols is
    /// only reusable while those labels still have zero edges — a delta
    /// that introduces the first edge on a pruned label forces a rebuild,
    /// unlike cost drift, which only risks optimality.
    fn drift_within(&self, plan: &Plan, stats: &LabelStats) -> bool {
        if plan
            .facts
            .pruned_symbols
            .iter()
            .any(|&s| stats.edge_count(s) != 0)
        {
            return false;
        }
        let f = Self::group_cost(&plan.query.nfa().first_symbols(), stats);
        let b = Self::group_cost(&plan.reversed.first_symbols(), stats);
        choose_direction(f, b, &self.config) == plan.direction
            && within_factor(plan.forward_cost, f, self.config.decisiveness)
            && within_factor(plan.backward_cost, b, self.config.decisiveness)
    }

    /// The memoized plan plus whether it was served from the memo (`true`)
    /// or built from scratch (`false`).
    fn plan_status<G: GraphView>(
        &self,
        q: &Regex,
        alphabet: &Alphabet,
        graph: &G,
    ) -> (Arc<Plan>, bool) {
        let key = memo_key(graph);
        // Memo probe by reference — the query is cloned only on a miss.
        {
            let memo = self.memo.lock();
            if let Some(entries) = memo.get(q) {
                if let Some(e) = entries.iter().find(|e| e.key == key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (e.plan.clone(), true);
                }
                if key.0 != 0 {
                    // Same base lineage, different epoch: reuse the plan if
                    // the label-stat drift stays under the decisiveness
                    // threshold (see the module docs).
                    if let Some(e) = entries
                        .iter()
                        .find(|e| e.key.0 == key.0 && self.drift_within(&e.plan, graph.stats()))
                    {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (e.plan.clone(), true);
                    }
                }
            }
        }
        // Planning runs unlocked: a concurrent duplicate costs one extra
        // rewrite search, and insertion is idempotent (same winner).
        let stats = graph.stats();
        let opt = optimize_with_stats(&self.set, q, alphabet, &self.budget, stats);
        // Static analysis: certify the rewrite winner against the
        // constraint closure (reverting it if certification fails),
        // erase zero-edge symbols, trim, and classify the language.
        let analysis = analyze(&self.set, q, opt.query, stats);
        let improved = analysis.facts.rewrites_certified > 0;
        let query = Query::with_nfa(analysis.regex, analysis.nfa, alphabet);
        let reversed = query.nfa().reverse();
        let forward_cost = Self::group_cost(&query.nfa().first_symbols(), stats);
        // last symbols of the query = first symbols of its reversal, which
        // is already compiled — so both cost inputs come for free here
        let backward_cost = Self::group_cost(&reversed.first_symbols(), stats);
        let direction = choose_direction(forward_cost, backward_cost, &self.config);
        let plan = Arc::new(Plan {
            query,
            reversed,
            improved,
            direction,
            forward_cost,
            backward_cost,
            facts: analysis.facts,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut memo = self.memo.lock();
        let entries = memo.entry(q.clone()).or_default();
        if !entries.iter().any(|e| e.key == key) {
            if entries.len() >= MAX_MEMOIZED_SNAPSHOTS {
                // Evict the oldest retired snapshot to bound memory; plans
                // for it will simply be rebuilt if that graph comes back.
                entries.remove(0);
            }
            entries.push(MemoEntry {
                key,
                plan: plan.clone(),
            });
        }
        (plan, false)
    }

    /// Stamp plan observability into an evaluation's counters, analysis
    /// facts included.
    fn stamp(&self, stats: &mut EvalStats, plan: &Plan, hit: bool) {
        stats.plan_cache_hits += usize::from(hit);
        stats.plan_cache_misses += usize::from(!hit);
        stats.plan_direction = Some(plan.direction);
        let facts = &plan.facts;
        stats.symbols_pruned += facts.pruned_symbols.len();
        stats.states_trimmed += facts.states_trimmed;
        stats.finite_language |= facts.finite_language;
        stats.rewrites_certified += facts.rewrites_certified;
        stats.rewrites_rejected += facts.rewrites_rejected;
        stats.analysis_ns += facts.analysis_ns;
    }

    /// The statically-empty fast path: an [`EvalResult`] produced without
    /// touching the graph — zero edges scanned, no frontier allocated.
    fn empty_result(&self, plan: &Plan, hit: bool) -> EvalResult {
        let mut res = EvalResult {
            answers: Vec::new(),
            stats: EvalStats::default(),
        };
        self.stamp(&mut res.stats, plan, hit);
        res
    }

    /// Evaluate `query` from `source` over **any** [`GraphView`] (e.g. a
    /// `rpq_graph::DeltaGraph` absorbing writes) with the epoch-aware plan
    /// memo: the planned (rewritten) query runs through the generic
    /// product BFS. The wrapped engine's strategy applies on the `Engine`
    /// trait's `CsrGraph` entry points; views always use the product
    /// search, which computes the same answer set.
    pub fn eval_view<G: GraphView>(&self, query: &Query, graph: &G, source: Oid) -> EvalResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            return self.empty_result(&plan, hit);
        }
        let mut scratch = self.scratch.checkout();
        let mut res = match plan.facts.max_word_len {
            Some(cap) => eval_product_bounded_csr_with(
                plan.query.nfa(),
                graph,
                source,
                cap,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
            None => eval_product_csr_with(
                plan.query.nfa(),
                graph,
                source,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
        };
        self.stamp(&mut res.stats, &plan, hit);
        res
    }

    /// Target-bound evaluation `{o | target ∈ p(o, I)}` over any
    /// [`GraphView`]: rewrite, then run the backward product BFS over the
    /// reverse adjacency, reusing the plan's cached reversed NFA.
    pub fn eval_to<G: GraphView>(&self, query: &Query, graph: &G, target: Oid) -> EvalResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            return self.empty_result(&plan, hit);
        }
        let mut scratch = self.scratch.checkout();
        let mut res = match plan.facts.max_word_len {
            Some(cap) => eval_product_bounded_backward_reversed_csr_with(
                &plan.reversed,
                graph,
                target,
                cap,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
            None => eval_product_backward_reversed_csr_with(
                &plan.reversed,
                graph,
                target,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
        };
        self.stamp(&mut res.stats, &plan, hit);
        res
    }

    /// Pair reachability `target ∈ p(source, I)?` by the planned
    /// direction: forward with early exit, backward with early exit, or
    /// meet-in-the-middle. Generic over any [`GraphView`].
    pub fn eval_pair<G: GraphView>(
        &self,
        query: &Query,
        graph: &G,
        source: Oid,
        target: Oid,
    ) -> PairResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            let mut res = PairResult {
                reachable: false,
                stats: EvalStats::default(),
            };
            self.stamp(&mut res.stats, &plan, hit);
            return res;
        }
        let nfa = plan.query.nfa();
        let mut scratch = self.scratch.checkout();
        let mut res = match plan.direction {
            Direction::Forward => eval_product_pair_forward_csr_with(
                nfa,
                graph,
                source,
                target,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
            Direction::Backward => eval_product_pair_backward_reversed_csr_with(
                &plan.reversed,
                graph,
                source,
                target,
                FrontierMode::Hybrid,
                &mut scratch,
            ),
            Direction::Bidirectional => eval_product_pair_reversed_csr_with(
                nfa,
                &plan.reversed,
                graph,
                source,
                target,
                &mut scratch,
            ),
        };
        self.stamp(&mut res.stats, &plan, hit);
        res
    }

    /// Stamp plan observability into a response — both the aggregated
    /// response counters and the payload's embedded stats, so legacy
    /// conversions ([`EvalResponse::into_batch`] etc.) carry the plan
    /// fields too.
    fn stamped(&self, mut resp: EvalResponse, plan: &Plan, hit: bool) -> EvalResponse {
        self.stamp(&mut resp.stats, plan, hit);
        match &mut resp.answers {
            Answers::Batch(b) => self.stamp(&mut b.stats, plan, hit),
            Answers::Matrix(m) => self.stamp(&mut m.stats, plan, hit),
            Answers::Nodes(_) | Answers::Reachable(_) | Answers::Bindings(_) => {}
        }
        resp
    }

    /// The unified [`EvalRequest`] entry point over **any** [`GraphView`] —
    /// the form the serving layer drives: one plan probe per request
    /// (rewrite + direction + analysis, memoized per epoch lineage), every
    /// [`SourceSpec`] arm, and uniform budget/cancellation controls.
    ///
    /// Statically empty queries answer without touching the graph.
    /// Finite-language plans cap the product BFS depth at the longest
    /// accepted word — on controlled requests the cap *composes* with the
    /// fetch budget (whichever binds first ends the search). Uncontrolled
    /// multi-item arms run the bit-parallel lane kernels with the plan's
    /// cached reversed automaton; the pair arm honors the request's
    /// direction hint over the planned direction when one is given.
    ///
    /// [`Engine::run`] on a `CsrGraph` delegates here.
    pub fn run_view<G: GraphView + Sync>(
        &self,
        query: &Query,
        graph: &G,
        req: &EvalRequest,
    ) -> EvalResponse {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            let empty_batch =
                |n: usize| BatchResult::from_per_source(vec![Vec::new(); n], EvalStats::default());
            let resp = match &req.spec {
                SourceSpec::Source(_) | SourceSpec::Target(_) => {
                    EvalResponse::from_nodes(EvalResult {
                        answers: Vec::new(),
                        stats: EvalStats::default(),
                    })
                }
                SourceSpec::Sources(ss) => EvalResponse::from_batch(empty_batch(ss.len())),
                SourceSpec::Targets(ts) => EvalResponse::from_batch(empty_batch(ts.len())),
                SourceSpec::Pair { .. } => EvalResponse::from_pair(PairResult {
                    reachable: false,
                    stats: EvalStats::default(),
                }),
                SourceSpec::Matrix { sources, targets } => {
                    EvalResponse::from_matrix(MatrixResult::new(sources.clone(), targets.clone()))
                }
                SourceSpec::Conjunctive { .. } => EvalResponse::from_pairset(PairSetResult::empty(
                    EvalStats::default(),
                    Termination::Complete,
                )),
            };
            return self.stamped(resp, &plan, hit);
        }
        // One worker-pool lease per request: the permits granted here cap
        // every parallel level/wave this request runs, and return to the
        // pool when the response is built.
        let lease = self.workers.lease(self.decide_dop(&plan, graph));
        let dop = lease.dop();
        let resp = if req.is_controlled() {
            self.run_view_controlled(&plan, graph, req, dop)
        } else {
            self.run_view_uncontrolled(&plan, graph, req, dop)
        };
        self.stamped(resp, &plan, hit)
    }

    /// The uncontrolled arms of [`PlannedEngine::run_view`]: the planned
    /// query through the generic product kernels, bounded by the plan's
    /// finite-language depth cap where one exists.
    fn run_view_uncontrolled<G: GraphView + Sync>(
        &self,
        plan: &Plan,
        graph: &G,
        req: &EvalRequest,
        dop: usize,
    ) -> EvalResponse {
        let mode = self.effective_mode(req.frontier_mode);
        let cap = plan.facts.max_word_len;
        let mut scratch = self.scratch.checkout();
        match &req.spec {
            SourceSpec::Source(s) => EvalResponse::from_nodes(if dop > 1 {
                let (res, _) = eval_product_parallel_csr_with(
                    plan.query.nfa(),
                    graph,
                    *s,
                    cap,
                    mode,
                    &EvalControl::UNLIMITED,
                    dop,
                    &self.scratch,
                    &mut scratch,
                );
                res
            } else {
                match cap {
                    Some(cap) => eval_product_bounded_csr_with(
                        plan.query.nfa(),
                        graph,
                        *s,
                        cap,
                        mode,
                        &mut scratch,
                    ),
                    None => eval_product_csr_with(plan.query.nfa(), graph, *s, mode, &mut scratch),
                }
            }),
            SourceSpec::Sources(ss) => EvalResponse::from_batch(if dop > 1 {
                eval_product_batch_parallel_csr_with(
                    plan.query.nfa(),
                    graph,
                    ss,
                    dop,
                    &self.scratch,
                    &mut scratch,
                )
            } else {
                eval_product_batch_csr_with(plan.query.nfa(), graph, ss, &mut scratch)
            }),
            SourceSpec::Target(t) => EvalResponse::from_nodes(if dop > 1 {
                let (res, _) = eval_product_backward_parallel_reversed_csr_with(
                    &plan.reversed,
                    graph,
                    *t,
                    cap,
                    mode,
                    &EvalControl::UNLIMITED,
                    dop,
                    &self.scratch,
                    &mut scratch,
                );
                res
            } else {
                match cap {
                    Some(cap) => eval_product_bounded_backward_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        *t,
                        cap,
                        mode,
                        &mut scratch,
                    ),
                    None => eval_product_backward_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        *t,
                        mode,
                        &mut scratch,
                    ),
                }
            }),
            SourceSpec::Targets(ts) => match cap {
                // Exact depth caps beat lane sharing on short words: keep
                // the per-target bounded loop (mirrors `eval_to_batch`).
                Some(cap) => {
                    let mut stats = EvalStats::default();
                    let mut per = Vec::with_capacity(ts.len());
                    for &t in ts {
                        let r = eval_product_bounded_backward_reversed_csr_with(
                            &plan.reversed,
                            graph,
                            t,
                            cap,
                            mode,
                            &mut scratch,
                        );
                        stats.merge(&r.stats);
                        per.push(r.answers);
                    }
                    EvalResponse::from_batch(BatchResult::from_per_source(per, stats))
                }
                None => EvalResponse::from_batch(if dop > 1 {
                    eval_product_to_batch_parallel_csr_with(
                        &plan.reversed,
                        graph,
                        ts,
                        dop,
                        &self.scratch,
                        &mut scratch,
                    )
                } else {
                    eval_product_to_batch_csr_with(&plan.reversed, graph, ts, &mut scratch)
                }),
            },
            SourceSpec::Pair { source, target } => {
                let direction = req.direction.unwrap_or(plan.direction);
                EvalResponse::from_pair(match direction {
                    Direction::Forward => eval_product_pair_forward_csr_with(
                        plan.query.nfa(),
                        graph,
                        *source,
                        *target,
                        mode,
                        &mut scratch,
                    ),
                    Direction::Backward => eval_product_pair_backward_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        *source,
                        *target,
                        mode,
                        &mut scratch,
                    ),
                    Direction::Bidirectional => eval_product_pair_reversed_csr_with(
                        plan.query.nfa(),
                        &plan.reversed,
                        graph,
                        *source,
                        *target,
                        &mut scratch,
                    ),
                })
            }
            SourceSpec::Matrix { sources, targets } => {
                EvalResponse::from_matrix(eval_product_matrix_csr_with(
                    plan.query.nfa(),
                    graph,
                    sources,
                    targets,
                    &mut scratch,
                ))
            }
            SourceSpec::Conjunctive { sources, targets } => {
                let res = match (sources, targets) {
                    (Some(ss), Some(ts)) if dop > 1 => eval_pairs_bound_parallel_csr_with(
                        plan.query.nfa(),
                        graph,
                        ss,
                        ts,
                        dop,
                        &self.scratch,
                        &mut scratch,
                    ),
                    (Some(ss), Some(ts)) => {
                        eval_pairs_bound_csr_with(plan.query.nfa(), graph, ss, ts, &mut scratch)
                    }
                    (Some(ss), None) if dop > 1 => eval_pairs_from_sources_parallel_csr_with(
                        plan.query.nfa(),
                        graph,
                        ss,
                        dop,
                        &self.scratch,
                        &mut scratch,
                    ),
                    (Some(ss), None) => {
                        eval_pairs_from_sources_csr_with(plan.query.nfa(), graph, ss, &mut scratch)
                    }
                    // The plan's cached reversed automaton serves the
                    // target-bound form — no per-request reversal.
                    (None, Some(ts)) if dop > 1 => eval_pairs_to_targets_parallel_csr_with(
                        &plan.reversed,
                        graph,
                        ts,
                        dop,
                        &self.scratch,
                        &mut scratch,
                    ),
                    (None, Some(ts)) => {
                        eval_pairs_to_targets_csr_with(&plan.reversed, graph, ts, &mut scratch)
                    }
                    (None, None) => {
                        let seeds = seed_candidates(plan.query.nfa(), graph, &mut scratch);
                        if dop > 1 {
                            eval_pairs_from_sources_parallel_csr_with(
                                plan.query.nfa(),
                                graph,
                                &seeds,
                                dop,
                                &self.scratch,
                                &mut scratch,
                            )
                        } else {
                            eval_pairs_from_sources_csr_with(
                                plan.query.nfa(),
                                graph,
                                &seeds,
                                &mut scratch,
                            )
                        }
                    }
                };
                EvalResponse::from_pairset(res)
            }
        }
    }

    /// The controlled arms of [`PlannedEngine::run_view`]: the planned
    /// query through the budget- and cancellation-aware kernels, with the
    /// finite-language depth cap composed into every search. Multi-item
    /// arms share one budget and stop at the first non-complete
    /// termination (unexplored items report empty sets — a sound subset).
    fn run_view_controlled<G: GraphView + Sync>(
        &self,
        plan: &Plan,
        graph: &G,
        req: &EvalRequest,
        dop: usize,
    ) -> EvalResponse {
        let mode = self.effective_mode(req.frontier_mode);
        let cap = plan.facts.max_word_len;
        let cancel = req.cancel.as_deref();
        let mut scratch = self.scratch.checkout();
        match &req.spec {
            SourceSpec::Source(s) => {
                let (res, term) = if dop > 1 {
                    eval_product_parallel_csr_with(
                        plan.query.nfa(),
                        graph,
                        *s,
                        cap,
                        mode,
                        &req.control(),
                        dop,
                        &self.scratch,
                        &mut scratch,
                    )
                } else {
                    eval_product_controlled_csr_with(
                        plan.query.nfa(),
                        graph,
                        *s,
                        cap,
                        mode,
                        &req.control(),
                        &mut scratch,
                    )
                };
                EvalResponse::from_nodes(res).terminated(term)
            }
            SourceSpec::Target(t) => {
                let (res, term) = if dop > 1 {
                    eval_product_backward_parallel_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        *t,
                        cap,
                        mode,
                        &req.control(),
                        dop,
                        &self.scratch,
                        &mut scratch,
                    )
                } else {
                    eval_product_backward_controlled_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        *t,
                        cap,
                        mode,
                        &req.control(),
                        &mut scratch,
                    )
                };
                EvalResponse::from_nodes(res).terminated(term)
            }
            SourceSpec::Sources(ss) => {
                let mut stats = EvalStats::default();
                let mut per = Vec::with_capacity(ss.len());
                let mut term = Termination::Complete;
                for &s in ss {
                    let control = EvalControl {
                        budget: req.budget.map(|b| b.saturating_sub(stats.edges_scanned)),
                        cancel,
                    };
                    let (r, t) = if dop > 1 {
                        eval_product_parallel_csr_with(
                            plan.query.nfa(),
                            graph,
                            s,
                            cap,
                            mode,
                            &control,
                            dop,
                            &self.scratch,
                            &mut scratch,
                        )
                    } else {
                        eval_product_controlled_csr_with(
                            plan.query.nfa(),
                            graph,
                            s,
                            cap,
                            mode,
                            &control,
                            &mut scratch,
                        )
                    };
                    stats.merge(&r.stats);
                    per.push(r.answers);
                    if !t.is_complete() {
                        term = t;
                        break;
                    }
                }
                per.resize(ss.len(), Vec::new());
                EvalResponse::from_batch(BatchResult::from_per_source(per, stats)).terminated(term)
            }
            SourceSpec::Targets(ts) => {
                let mut stats = EvalStats::default();
                let mut per = Vec::with_capacity(ts.len());
                let mut term = Termination::Complete;
                for &t in ts {
                    let control = EvalControl {
                        budget: req.budget.map(|b| b.saturating_sub(stats.edges_scanned)),
                        cancel,
                    };
                    let (r, tt) = if dop > 1 {
                        eval_product_backward_parallel_reversed_csr_with(
                            &plan.reversed,
                            graph,
                            t,
                            cap,
                            mode,
                            &control,
                            dop,
                            &self.scratch,
                            &mut scratch,
                        )
                    } else {
                        eval_product_backward_controlled_reversed_csr_with(
                            &plan.reversed,
                            graph,
                            t,
                            cap,
                            mode,
                            &control,
                            &mut scratch,
                        )
                    };
                    stats.merge(&r.stats);
                    per.push(r.answers);
                    if !tt.is_complete() {
                        term = tt;
                        break;
                    }
                }
                per.resize(ts.len(), Vec::new());
                EvalResponse::from_batch(BatchResult::from_per_source(per, stats)).terminated(term)
            }
            SourceSpec::Pair { source, target } => {
                let (pair, term) = eval_product_pair_controlled_csr_with(
                    plan.query.nfa(),
                    graph,
                    *source,
                    *target,
                    mode,
                    &req.control(),
                    &mut scratch,
                );
                EvalResponse::from_pair(pair).terminated(term)
            }
            SourceSpec::Matrix { sources, targets } => {
                let mut matrix = MatrixResult::new(sources.clone(), targets.clone());
                let mut stats = EvalStats::default();
                let mut term = Termination::Complete;
                for (i, &s) in sources.iter().enumerate() {
                    let control = EvalControl {
                        budget: req.budget.map(|b| b.saturating_sub(stats.edges_scanned)),
                        cancel,
                    };
                    let (r, t) = eval_product_controlled_csr_with(
                        plan.query.nfa(),
                        graph,
                        s,
                        cap,
                        mode,
                        &control,
                        &mut scratch,
                    );
                    for (j, &tgt) in targets.iter().enumerate() {
                        if r.answers.binary_search(&tgt).is_ok() {
                            matrix.set(i, j);
                        }
                    }
                    stats.merge(&r.stats);
                    if !t.is_complete() {
                        term = t;
                        break;
                    }
                }
                stats.answers = matrix.reachable_count();
                matrix.stats = stats;
                EvalResponse::from_matrix(matrix).terminated(term)
            }
            SourceSpec::Conjunctive { sources, targets } => {
                let control = req.control();
                let res = match (sources, targets) {
                    (Some(ss), Some(ts)) => eval_pairs_bound_controlled_csr_with(
                        plan.query.nfa(),
                        graph,
                        ss,
                        ts,
                        mode,
                        &control,
                        &mut scratch,
                    ),
                    (Some(ss), None) => eval_pairs_from_sources_controlled_csr_with(
                        plan.query.nfa(),
                        graph,
                        ss,
                        mode,
                        &control,
                        &mut scratch,
                    ),
                    (None, Some(ts)) => eval_pairs_to_targets_controlled_csr_with(
                        &plan.reversed,
                        graph,
                        ts,
                        mode,
                        &control,
                        &mut scratch,
                    ),
                    (None, None) => {
                        let seeds = seed_candidates(plan.query.nfa(), graph, &mut scratch);
                        eval_pairs_from_sources_controlled_csr_with(
                            plan.query.nfa(),
                            graph,
                            &seeds,
                            mode,
                            &control,
                            &mut scratch,
                        )
                    }
                };
                EvalResponse::from_pairset(res)
            }
        }
    }

    /// The memoized join plan for a conjunctive query over `graph`, plus
    /// whether it was served from the memo. Keyed like [`Plan`]s — by
    /// [`Crpq::signature`], the request's head-boundness flags (a bound
    /// head variable can flip the whole order), and the snapshot's
    /// `MemoKey` — with the same per-entry snapshot bound. Join plans
    /// are rankings, never soundness inputs, so any cached order would be
    /// *correct* on any snapshot; the epoch key only keeps the order in
    /// step with the statistics that justified it.
    pub fn crpq_plan<G: GraphView>(
        &self,
        crpq: &Crpq,
        graph: &G,
        src_bound: bool,
        dst_bound: bool,
    ) -> (Arc<JoinPlan>, bool) {
        let sig = (crpq.signature(), src_bound, dst_bound);
        let key = memo_key(graph);
        {
            let memo = self.crpq_memo.lock();
            if let Some(entries) = memo.get(&sig) {
                if let Some((_, plan)) = entries.iter().find(|(k, _)| *k == key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (plan.clone(), true);
                }
            }
        }
        let plan = Arc::new(plan_join(
            crpq,
            graph.stats(),
            &self.config,
            src_bound,
            dst_bound,
        ));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut memo = self.crpq_memo.lock();
        let entries = memo.entry(sig).or_default();
        if !entries.iter().any(|(k, _)| *k == key) {
            if entries.len() >= MAX_MEMOIZED_SNAPSHOTS {
                entries.remove(0);
            }
            entries.push((key, plan.clone()));
        }
        (plan, false)
    }

    /// Evaluate a conjunctive query end-to-end over any [`GraphView`]:
    /// memoized join planning ([`PlannedEngine::crpq_plan`]), then the
    /// semijoin-propagating executor ([`crate::join::execute_join`]) under the
    /// request's budget/cancellation controls and effective frontier mode.
    ///
    /// The request's [`SourceSpec`] restricts the *head* variables: source
    /// forms bind the first head variable, target forms the second,
    /// pair/matrix forms both, and [`SourceSpec::Conjunctive`] maps
    /// directly; each side's `None` leaves that head variable free. The
    /// response carries [`Answers::Bindings`] with per-atom
    /// `stats.atoms` telemetry in execution order, and plan-memo
    /// hit/miss counters stamped like every other planned evaluation.
    pub fn run_crpq<G: GraphView + Sync>(
        &self,
        crpq: &Crpq,
        graph: &G,
        req: &EvalRequest,
    ) -> EvalResponse {
        let heads = match &req.spec {
            SourceSpec::Source(s) => HeadBindings {
                sources: Some(std::slice::from_ref(s)),
                targets: None,
            },
            SourceSpec::Sources(ss) => HeadBindings {
                sources: Some(ss),
                targets: None,
            },
            SourceSpec::Target(t) => HeadBindings {
                sources: None,
                targets: Some(std::slice::from_ref(t)),
            },
            SourceSpec::Targets(ts) => HeadBindings {
                sources: None,
                targets: Some(ts),
            },
            SourceSpec::Pair { source, target } => HeadBindings {
                sources: Some(std::slice::from_ref(source)),
                targets: Some(std::slice::from_ref(target)),
            },
            SourceSpec::Matrix { sources, targets } => HeadBindings {
                sources: Some(sources),
                targets: Some(targets),
            },
            SourceSpec::Conjunctive { sources, targets } => HeadBindings {
                sources: sources.as_deref(),
                targets: targets.as_deref(),
            },
        };
        let (plan, hit) = self.crpq_plan(
            crpq,
            graph,
            heads.sources.is_some(),
            heads.targets.is_some(),
        );
        let mode = self.effective_mode(req.frontier_mode);
        // CRPQ DoP: atoms scan whole label classes, so the graph's total
        // edge mass is the frontier-size proxy; small graphs stay on the
        // sequential executor.
        let target_dop =
            if self.workers.parallelism() > 1 && graph.num_edges() >= PAR_LEVEL_THRESHOLD {
                self.workers.parallelism()
            } else {
                1
            };
        let lease = self.workers.lease(target_dop);
        let mut scratch = self.scratch.checkout();
        let res = execute_join_parallel(
            crpq,
            &plan.order,
            graph,
            heads,
            mode,
            &req.control(),
            lease.dop(),
            &self.scratch,
            &mut scratch,
        );
        let mut resp = EvalResponse::from_pairset(res);
        resp.stats.plan_cache_hits += usize::from(hit);
        resp.stats.plan_cache_misses += usize::from(!hit);
        resp
    }
}

/// Pick the direction from the two entry-cost estimates: a decisive
/// (≥ `config.decisiveness`×) win on either end takes that end; otherwise
/// meet in the middle. Equal costs (including the all-zero degenerate
/// case) stay bidirectional.
fn choose_direction(
    forward_cost: usize,
    backward_cost: usize,
    config: &PlannerConfig,
) -> Direction {
    let (f, b) = (forward_cost as f64, backward_cost as f64);
    if forward_cost == backward_cost {
        Direction::Bidirectional
    } else if b * config.decisiveness <= f {
        Direction::Backward
    } else if f * config.decisiveness <= b {
        Direction::Forward
    } else {
        Direction::Bidirectional
    }
}

/// Is each cost within factor `t` of the other?
fn within_factor(a: usize, b: usize, t: f64) -> bool {
    (a as f64) <= (b as f64) * t && (b as f64) <= (a as f64) * t
}

impl<E: Engine> Engine for PlannedEngine<E> {
    fn name(&self) -> &'static str {
        "planned"
    }

    /// The unified request entry point, planned: delegates to the
    /// [`GraphView`]-generic [`PlannedEngine::run_view`] — one plan probe
    /// per request, statically-empty and finite-language fast paths, and
    /// budget/cancellation composed with the planned depth cap.
    fn run(&self, query: &Query, graph: &CsrGraph, req: &EvalRequest) -> EvalResponse {
        self.run_view(query, graph, req)
    }

    /// Rewrite (memoized), then delegate to the inner engine. The answer
    /// set equals the inner engine's on the original query whenever the
    /// constraint set holds at `source` (the Section 3.2 site assumption);
    /// with no constraints it is identical unconditionally.
    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            return self.empty_result(&plan, hit);
        }
        // Finite-language fast path: the longest accepted word bounds the
        // product BFS depth exactly, so the bounded search beats any
        // unbounded strategy the inner engine might pick.
        if let Some(cap) = plan.facts.max_word_len {
            let mut scratch = self.scratch.checkout();
            let mut res = eval_product_bounded_csr_with(
                plan.query.nfa(),
                graph,
                source,
                cap,
                FrontierMode::Hybrid,
                &mut scratch,
            );
            self.stamp(&mut res.stats, &plan, hit);
            return res;
        }
        let mut res = self.inner.eval(&plan.query, graph, source);
        self.stamp(&mut res.stats, &plan, hit);
        res
    }

    /// One plan serves the whole batch: the rewrite and compilation happen
    /// once before the fan-out, so e.g. `PartitionedBatchEngine` workers
    /// all share the planned query.
    fn eval_batch(&self, query: &Query, graph: &CsrGraph, sources: &[Oid]) -> BatchResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        if plan.facts.statically_empty {
            let mut stats = EvalStats::default();
            self.stamp(&mut stats, &plan, hit);
            return BatchResult::from_per_source(vec![Vec::new(); sources.len()], stats);
        }
        // Finite languages keep the inner engine's batch machinery (the
        // bit-parallel lanes already amortize multi-source work better
        // than a per-source bounded loop would).
        let mut res = self.inner.eval_batch(&plan.query, graph, sources);
        self.stamp(&mut res.stats, &plan, hit);
        res
    }

    /// Target-bound evaluation via the plan's cached reversed automaton
    /// (the inherent [`PlannedEngine::eval_to`], exposed through the
    /// trait).
    fn eval_to(&self, query: &Query, graph: &CsrGraph, target: Oid) -> EvalResult {
        PlannedEngine::eval_to(self, query, graph, target)
    }

    /// One plan serves the whole multi-target batch. The unbounded path
    /// runs the bit-parallel backward wave
    /// ([`rpq_core::eval_product_to_batch_csr_with`]) with the plan's
    /// cached reversed automaton — waves of up to 64 target lanes, one
    /// reverse-row pass advancing every pending target at once. Finite
    /// languages keep the per-target bounded loop (the exact depth cap
    /// beats lane sharing on short words).
    fn eval_to_batch(&self, query: &Query, graph: &CsrGraph, targets: &[Oid]) -> BatchResult {
        let (plan, hit) = self.plan_status(query.regex(), query.alphabet(), graph);
        let mut stats = EvalStats::default();
        if plan.facts.statically_empty {
            self.stamp(&mut stats, &plan, hit);
            return BatchResult::from_per_source(vec![Vec::new(); targets.len()], stats);
        }
        let mut scratch = self.scratch.checkout();
        match plan.facts.max_word_len {
            Some(cap) => {
                let mut per_target = Vec::with_capacity(targets.len());
                for &t in targets {
                    let r = eval_product_bounded_backward_reversed_csr_with(
                        &plan.reversed,
                        graph,
                        t,
                        cap,
                        FrontierMode::Hybrid,
                        &mut scratch,
                    );
                    stats.merge(&r.stats);
                    per_target.push(r.answers);
                }
                self.stamp(&mut stats, &plan, hit);
                BatchResult::from_per_source(per_target, stats)
            }
            None => {
                let mut res =
                    eval_product_to_batch_csr_with(&plan.reversed, graph, targets, &mut scratch);
                self.stamp(&mut res.stats, &plan, hit);
                res
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;
    use rpq_core::ProductEngine;
    use rpq_graph::{DeltaGraph, Instance, InstanceBuilder};

    /// The shared T5 cached workload (`rpq_bench::distributed_workload`):
    /// an a·b backbone with trap branches, the cache label `l` wired from
    /// `v0` to every (a.b)*-reachable node, so `l = (a.b)*` holds at `v0`.
    fn cached_workload(depth: usize) -> (Alphabet, ConstraintSet, Instance, Oid) {
        let w = rpq_bench::distributed_workload(depth);
        assert!(w.constraints.holds_at(&w.instance, w.source));
        (w.alphabet, w.constraints, w.instance, w.source)
    }

    #[test]
    fn planned_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlannedEngine<ProductEngine>>();
    }

    #[test]
    fn run_crpq_joins_plans_and_memoizes() {
        use crate::join::{execute_naive, parse_crpq, HeadBindings};

        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "m1");
        b.edge("s", "a", "m2");
        b.edge("m1", "b", "t1");
        b.edge("m2", "b", "t2");
        b.edge("t1", "c", "u1");
        b.edge("x1", "a", "x2");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let crpq = parse_crpq(&mut ab, "ans(x, w) :- x -[a]-> y, y -[b]-> z, z -[c]-> w").unwrap();
        let engine = PlannedEngine::unconstrained(ProductEngine, ab);

        let req = EvalRequest::conjunctive(None, None);
        let resp = engine.run_crpq(&crpq, &graph, &req);
        let bindings = resp.bindings().expect("bindings payload").to_vec();
        let (oracle, _) = execute_naive(&crpq, &graph, HeadBindings::default());
        assert_eq!(bindings, oracle);
        assert_eq!(bindings, vec![(names["s"], names["u1"])]);
        assert_eq!(resp.stats.atoms.len(), 3, "one record per atom");
        assert_eq!(resp.stats.plan_cache_misses, 1);

        // Same signature + snapshot: the join plan is served from memo.
        let resp2 = engine.run_crpq(&crpq, &graph, &req);
        assert_eq!(resp2.bindings().unwrap(), &bindings[..]);
        assert_eq!(resp2.stats.plan_cache_hits, 1);

        // A head restriction changes the boundness flags → separate plan.
        let bound = EvalRequest::conjunctive(Some(vec![names["s"]]), None);
        let resp3 = engine.run_crpq(&crpq, &graph, &bound);
        assert_eq!(resp3.stats.plan_cache_misses, 1);
        assert_eq!(resp3.bindings().unwrap(), &bindings[..]);
    }

    #[test]
    fn planned_answers_match_inner_on_the_cached_workload() {
        let (mut ab, set, inst, v0) = cached_workload(6);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let plain = ProductEngine.eval(&query, &graph, v0);
        let opt = planned.eval(&query, &graph, v0);
        assert_eq!(opt.answers, plain.answers);
        let plan = planned.plan(&query, &graph);
        assert!(plan.improved, "the cache substitution must fire");
        assert!(
            opt.stats.edges_scanned < plain.stats.edges_scanned,
            "rewritten query must do less work: {} vs {}",
            opt.stats.edges_scanned,
            plain.stats.edges_scanned
        );
    }

    #[test]
    fn plans_are_memoized_per_query_and_snapshot() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let p1 = planned.plan(&query, &graph);
        assert_eq!(planned.plan_cache_misses(), 1);
        let p2 = planned.plan(&query, &graph);
        assert!(Arc::ptr_eq(&p1, &p2), "second plan must be the memo hit");
        assert_eq!(planned.plan_cache_hits(), 1);
        assert_eq!(planned.plans_cached(), 1);
        planned.eval(&query, &graph, v0);
        assert_eq!(planned.plans_cached(), 1, "eval reuses the plan");
        let other = Query::parse(&mut ab, "a.b").unwrap();
        planned.eval(&other, &graph, v0);
        assert_eq!(planned.plans_cached(), 2);
    }

    #[test]
    fn eval_stats_record_direction_and_cache_outcome() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let first = planned.eval(&query, &graph, v0);
        assert_eq!(first.stats.plan_cache_misses, 1);
        assert_eq!(first.stats.plan_cache_hits, 0);
        assert!(first.stats.plan_direction.is_some());
        let second = planned.eval(&query, &graph, v0);
        assert_eq!(second.stats.plan_cache_hits, 1);
        assert_eq!(second.stats.plan_cache_misses, 0);
        // unplanned engines leave the fields untouched
        let raw = ProductEngine.eval(&query, &graph, v0);
        assert_eq!(raw.stats.plan_cache_hits + raw.stats.plan_cache_misses, 0);
        assert_eq!(raw.stats.plan_direction, None);
    }

    #[test]
    fn backward_is_planned_when_the_last_label_is_rare() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..64 {
            b.edge("s", "hot", &format!("f{i}"));
            b.edge(&format!("f{i}"), "hot", &format!("g{i}"));
        }
        b.edge("g0", "cold", "t");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "hot.hot.cold").unwrap();
        let plan = planned.plan(&query, &graph);
        assert_eq!(plan.direction, Direction::Backward, "{plan:?}");
        assert!(plan.backward_cost < plan.forward_cost);

        let (s, t) = (names["s"], names["t"]);
        let planned_pair = planned.eval_pair(&query, &graph, s, t);
        let forced_forward = rpq_core::eval_product_pair_forward_csr(query.nfa(), &graph, s, t);
        assert!(planned_pair.reachable && forced_forward.reachable);
        assert_eq!(planned_pair.stats.plan_direction, Some(Direction::Backward));
        assert!(
            planned_pair.stats.edges_scanned * 10 < forced_forward.stats.edges_scanned,
            "backward must win big: {} vs {}",
            planned_pair.stats.edges_scanned,
            forced_forward.stats.edges_scanned
        );

        // the target-bound scenario uses the same rare entry
        let to = planned.eval_to(&query, &graph, t);
        assert_eq!(to.answers, vec![s]);
    }

    #[test]
    fn forward_is_planned_when_the_first_label_is_rare() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "cold", "m");
        for i in 0..64 {
            b.edge("m", "hot", &format!("t{i}"));
        }
        let (inst, _) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "cold.hot").unwrap();
        let plan = planned.plan(&query, &graph);
        assert_eq!(plan.direction, Direction::Forward, "{plan:?}");
    }

    #[test]
    fn balanced_ends_plan_bidirectional() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "a", "y");
        b.edge("y", "a", "z");
        let (inst, _) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "a.a").unwrap();
        assert_eq!(
            planned.plan(&query, &graph).direction,
            Direction::Bidirectional
        );
    }

    #[test]
    fn decisiveness_is_configurable() {
        // 64 hot entry edges vs 1 cold exit edge: backward wins at the
        // default 2x threshold, but a planner demanding a 1000x margin
        // stays bidirectional — the threshold is a real knob now.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..64 {
            b.edge("s", "hot", &format!("m{i}"));
        }
        b.edge("m0", "cold", "t");
        let (inst, _) = b.finish();
        let graph = CsrGraph::from(&inst);
        let query = {
            let mut ab2 = ab.clone();
            Query::parse(&mut ab2, "hot.cold").unwrap()
        };
        let default = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        assert_eq!(default.plan(&query, &graph).direction, Direction::Backward);
        let strict =
            PlannedEngine::unconstrained(ProductEngine, ab.clone()).with_config(PlannerConfig {
                decisiveness: 1000.0,
                ..PlannerConfig::default()
            });
        assert_eq!(
            strict.plan(&query, &graph).direction,
            Direction::Bidirectional
        );
    }

    #[test]
    fn same_sized_snapshots_with_different_stats_get_distinct_plans() {
        // Two graphs with identical node and edge counts but opposite
        // label skew: plans must not be shared (the second graph would
        // inherit a backward plan against its *fat* reverse entry).
        let build = |last_is_rare: bool| {
            let mut ab = Alphabet::new();
            let mut b = InstanceBuilder::new(&mut ab);
            if last_is_rare {
                // 16 hot fan edges, one cold edge into t
                for i in 0..16 {
                    b.edge("s", "hot", &format!("m{i}"));
                }
                b.edge("m0", "cold", "t");
            } else {
                // one hot edge, 16 cold edges into t (same node/edge counts)
                b.edge("s", "hot", "m0");
                for i in 0..16 {
                    b.edge(&format!("m{i}"), "cold", "t");
                }
            }
            let (inst, _) = b.finish();
            (ab, CsrGraph::from(&inst))
        };
        let (ab, skew_backward) = build(true);
        let (_, skew_forward) = build(false);
        assert_eq!(skew_backward.num_nodes(), skew_forward.num_nodes());
        assert_eq!(skew_backward.num_edges(), skew_forward.num_edges());

        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let mut ab2 = ab.clone();
        let query = Query::parse(&mut ab2, "hot.cold").unwrap();
        assert_eq!(
            planned.plan(&query, &skew_backward).direction,
            Direction::Backward
        );
        assert_eq!(
            planned.plan(&query, &skew_forward).direction,
            Direction::Forward,
            "the second snapshot must get its own plan, not the memo hit"
        );
        assert_eq!(planned.plans_cached(), 2);
    }

    #[test]
    fn plan_memo_is_bounded_across_snapshots() {
        // Simulate a mutating graph: every rebuild produces a snapshot
        // with a fresh stats fingerprint. The memo must retain at most
        // MAX_MEMOIZED_SNAPSHOTS entries for the query.
        let mut ab = Alphabet::new();
        let planned = PlannedEngine::unconstrained(ProductEngine, {
            ab.intern("a");
            ab.clone()
        });
        let query = Query::parse(&mut ab, "a.a").unwrap();
        for gen in 1..=2 * MAX_MEMOIZED_SNAPSHOTS {
            let mut b = InstanceBuilder::new(&mut ab);
            for i in 0..gen {
                b.edge(&format!("x{i}"), "a", &format!("y{i}"));
            }
            let (inst, _) = b.finish();
            planned.plan(&query, &CsrGraph::from(&inst));
        }
        assert!(
            planned.plans_cached() <= MAX_MEMOIZED_SNAPSHOTS,
            "memo must evict retired snapshots: {} plans",
            planned.plans_cached()
        );
    }

    #[test]
    fn small_delta_epochs_reuse_the_plan_and_compaction_invalidates() {
        // A delta lineage: plan once, absorb a small batch (stats drift
        // under the decisiveness factor) -> the memo serves the same plan.
        // compact() starts a fresh lineage -> the memo misses and rebuilds.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..32 {
            b.edge("s", "hot", &format!("m{i}"));
            b.edge(&format!("m{i}"), "cold", "t");
        }
        let (inst, _) = b.finish();
        let mut dg = DeltaGraph::from_instance(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = {
            let mut ab2 = ab.clone();
            Query::parse(&mut ab2, "hot.cold").unwrap()
        };

        let p1 = planned.plan(&query, &dg);
        assert_eq!(planned.plan_cache_misses(), 1);

        // one extra hot edge: a ~3% drift — same plan must be served
        let hot = ab.get("hot").unwrap();
        assert!(dg.add_edge(Oid(0), hot, Oid(2)));
        let p2 = planned.plan(&query, &dg);
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "small-delta epoch must reuse the memoized plan"
        );
        assert_eq!(planned.plan_cache_hits(), 1);

        // evaluation over the delta view reports the hit
        let res = planned.eval_view(&query, &dg, Oid(0));
        assert_eq!(res.stats.plan_cache_hits, 1);
        assert_eq!(res.stats.plan_direction, Some(p1.direction));

        // compaction = fresh base lineage = invalidation
        let misses_before = planned.plan_cache_misses();
        dg.compact();
        let p3 = planned.plan(&query, &dg);
        assert!(
            !Arc::ptr_eq(&p1, &p3),
            "compaction must invalidate the lineage's plans"
        );
        assert_eq!(planned.plan_cache_misses(), misses_before + 1);
    }

    #[test]
    fn decisive_drift_recompiles_the_plan() {
        // Start backward-skewed (one cold exit), then add enough cold
        // edges to erase the skew: the direction decision flips, so the
        // memoized plan must NOT be reused despite the same lineage.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..16 {
            b.edge("s", "hot", &format!("m{i}"));
        }
        b.edge("m0", "cold", "t");
        let (inst, names) = b.finish();
        let mut dg = DeltaGraph::from_instance(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = {
            let mut ab2 = ab.clone();
            Query::parse(&mut ab2, "hot.cold").unwrap()
        };
        let p1 = planned.plan(&query, &dg);
        assert_eq!(p1.direction, Direction::Backward);

        let cold = ab.get("cold").unwrap();
        let t = names["t"];
        for i in 1..16 {
            let m = names[format!("m{i}").as_str()];
            assert!(dg.add_edge(m, cold, t));
        }
        let p2 = planned.plan(&query, &dg);
        assert!(!Arc::ptr_eq(&p1, &p2), "decisive drift must recompile");
        assert_ne!(p2.direction, Direction::Backward);
    }

    #[test]
    fn eval_to_batch_mirrors_per_target_loop() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let targets: Vec<Oid> = graph.nodes().take(6).collect();
        let batch = Engine::eval_to_batch(&planned, &query, &graph, &targets);
        let per = batch.per_source().unwrap();
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(per[i], planned.eval_to(&query, &graph, t).answers, "{t:?}");
        }
        // one plan for the whole batch
        assert_eq!(
            batch.stats.plan_cache_hits + batch.stats.plan_cache_misses,
            1
        );
        let _ = v0;
    }

    #[test]
    fn one_planned_engine_shared_across_threads() {
        let (mut ab, set, inst, v0) = cached_workload(5);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let expected = planned.eval(&query, &graph, v0).answers;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        assert_eq!(planned.eval(&query, &graph, v0).answers, expected);
                    }
                });
            }
        });
        assert_eq!(planned.plans_cached(), 1);
    }

    #[test]
    fn statically_empty_queries_answer_without_touching_the_graph() {
        // "ghost" is interned but has zero edges: every word of
        // a.ghost.a mentions it, so the restricted language is empty and
        // every entry point must answer without scanning anything.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "a", "y");
        b.edge("y", "a", "z");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "a.ghost.a").unwrap();
        let (x, y) = (names["x"], names["y"]);

        let res = planned.eval(&query, &graph, x);
        assert!(res.answers.is_empty());
        assert_eq!(res.stats.edges_scanned, 0, "no edge may be scanned");
        assert_eq!(res.stats.pairs_visited, 0, "no frontier was allocated");
        assert_eq!(res.stats.symbols_pruned, 1);
        assert!(res.stats.finite_language);

        let view = planned.eval_view(&query, &graph, x);
        assert!(view.answers.is_empty() && view.stats.edges_scanned == 0);
        let to = planned.eval_to(&query, &graph, y);
        assert!(to.answers.is_empty() && to.stats.edges_scanned == 0);
        let pair = planned.eval_pair(&query, &graph, x, x);
        assert!(!pair.reachable && pair.stats.edges_scanned == 0);

        let batch = Engine::eval_batch(&planned, &query, &graph, &[x, y]);
        assert_eq!(batch.per_source().unwrap().len(), 2);
        assert!(batch.union().is_empty() && batch.stats.edges_scanned == 0);
        let tob = Engine::eval_to_batch(&planned, &query, &graph, &[x, y]);
        assert_eq!(tob.per_source().unwrap().len(), 2);
        assert!(tob.union().is_empty() && tob.stats.edges_scanned == 0);

        // one plan built, five memo hits — emptiness is decided per plan
        assert_eq!(planned.plan_cache_misses(), 1);
    }

    #[test]
    fn finite_queries_run_the_bounded_fast_path_and_agree() {
        // A cycle keeps the graph side unbounded; the query language is
        // finite, so the planner caps the product BFS at the longest
        // accepted word and must still return the exact answer set.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "m");
        b.edge("m", "b", "s");
        b.edge("m", "b", "t");
        b.edge("t", "a", "s");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "a.b + a.b.a.b").unwrap();
        let s = names["s"];

        let plan = planned.plan(&query, &graph);
        assert_eq!(plan.facts.max_word_len, Some(4));
        let fast = planned.eval(&query, &graph, s);
        let plain = ProductEngine.eval(&query, &graph, s);
        assert_eq!(fast.answers, plain.answers);
        assert!(fast.stats.finite_language);
        assert!(!plain.stats.finite_language);
        let to = planned.eval_to(&query, &graph, s);
        let plain_to = ProductEngine.eval_to(&query, &graph, s);
        assert_eq!(to.answers, plain_to.answers);
    }

    #[test]
    fn first_edge_on_a_pruned_label_forces_a_replan() {
        // Pruning is stats-dependent: a plan that erased `ghost` is
        // unsound the moment a delta adds the first ghost edge, even
        // though the cost drift is far under the decisiveness factor.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..32 {
            b.edge("s", "a", &format!("m{i}"));
        }
        let (inst, names) = b.finish();
        let ghost = ab.intern("ghost");
        let mut dg = DeltaGraph::from_instance(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = {
            let mut ab2 = ab.clone();
            Query::parse(&mut ab2, "a + ghost").unwrap()
        };
        let s = names["s"];

        let p1 = planned.plan(&query, &dg);
        assert_eq!(p1.facts.pruned_symbols, vec![ghost]);
        assert_eq!(planned.eval_view(&query, &dg, s).answers.len(), 32);

        // one ghost edge among 32: cost drift alone would reuse the plan
        assert!(dg.add_edge(s, ghost, names["m0"]));
        let p2 = planned.plan(&query, &dg);
        assert!(
            !Arc::ptr_eq(&p1, &p2),
            "the pruned-label guard must force a rebuild"
        );
        assert!(p2.facts.pruned_symbols.is_empty());
        // and the rebuilt plan answers the ghost path
        assert_eq!(planned.eval_view(&query, &dg, s).answers.len(), 32);
        let mut ab3 = ab.clone();
        let ghost_only = Query::parse(&mut ab3, "ghost").unwrap();
        assert_eq!(planned.eval_view(&ghost_only, &dg, s).answers.len(), 1);
    }

    #[test]
    fn run_view_agrees_with_legacy_entry_points_on_a_delta_view() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        assert!(dg.add_edge(v0, a, v0)); // a small overlay epoch on top
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let all: Vec<Oid> = (0..dg.num_nodes()).map(|i| Oid(i as u32)).collect();
        let t = all[all.len() / 2];

        let single = planned.run_view(&query, &dg, &EvalRequest::source(v0));
        assert_eq!(single.termination, Termination::Complete);
        assert_eq!(
            single.nodes().unwrap(),
            planned.eval_view(&query, &dg, v0).answers
        );
        // exactly one plan probe per request, stamped into the response
        assert_eq!(
            single.stats.plan_cache_hits + single.stats.plan_cache_misses,
            1
        );

        let to = planned.run_view(&query, &dg, &EvalRequest::target(t));
        assert_eq!(to.nodes().unwrap(), planned.eval_to(&query, &dg, t).answers);

        let batch = planned.run_view(&query, &dg, &EvalRequest::sources(all.clone()));
        let per = batch.batch().unwrap().per_source().unwrap();
        for (i, &s) in all.iter().enumerate() {
            assert_eq!(per[i], planned.eval_view(&query, &dg, s).answers, "{s:?}");
        }
        assert_eq!(
            batch.batch().unwrap().stats.plan_cache_hits
                + batch.batch().unwrap().stats.plan_cache_misses,
            1,
            "payload stats carry the plan stamp too"
        );

        let to_batch = planned.run_view(&query, &dg, &EvalRequest::targets(all.clone()));
        let per = to_batch.batch().unwrap().per_source().unwrap();
        for (i, &tt) in all.iter().enumerate() {
            assert_eq!(per[i], planned.eval_to(&query, &dg, tt).answers, "{tt:?}");
        }

        let pair = planned.run_view(&query, &dg, &EvalRequest::pair(v0, t));
        assert_eq!(
            pair.reachable().unwrap(),
            planned.eval_pair(&query, &dg, v0, t).reachable
        );

        let m = planned.run_view(&query, &dg, &EvalRequest::matrix(all.clone(), all.clone()));
        let m = m.matrix().unwrap();
        for (i, &s) in all.iter().enumerate() {
            let fwd = planned.eval_view(&query, &dg, s).answers;
            for (j, &tt) in all.iter().enumerate() {
                assert_eq!(m.reachable(i, j), fwd.contains(&tt), "{s:?}->{tt:?}");
            }
        }
    }

    #[test]
    fn run_view_budget_composes_with_the_planned_depth_cap() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let full = planned.eval_view(&query, &graph, v0).answers;
        for budget in [0usize, 1, 3, 7, 100_000] {
            let req = EvalRequest::source(v0).with_budget(budget);
            let resp = planned.run_view(&query, &graph, &req);
            assert!(
                resp.stats.edges_scanned <= budget,
                "scanned {} > budget {budget}",
                resp.stats.edges_scanned
            );
            for n in resp.nodes().unwrap() {
                assert!(full.contains(n), "budgeted answer must be sound");
            }
            if resp.termination == Termination::Complete {
                assert_eq!(resp.nodes().unwrap(), &full[..]);
            }
            assert!(
                resp.stats.plan_direction.is_some(),
                "controlled paths stamp"
            );
        }
        // a pre-raised cancel flag terminates immediately with sound output
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let req = EvalRequest::sources(vec![v0]).with_cancel(flag);
        let resp = planned.run_view(&query, &graph, &req);
        assert_eq!(resp.termination, Termination::Cancelled);
    }

    #[test]
    fn run_view_statically_empty_answers_every_shape_without_scanning() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "a", "y");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "a.ghost").unwrap();
        let (x, y) = (names["x"], names["y"]);
        let reqs = [
            EvalRequest::source(x),
            EvalRequest::sources(vec![x, y]),
            EvalRequest::target(y),
            EvalRequest::targets(vec![x, y]),
            EvalRequest::pair(x, y),
            EvalRequest::matrix(vec![x, y], vec![x, y]),
            // controlled requests take the same zero-scan fast path
            EvalRequest::pair(x, y).with_budget(10),
        ];
        for req in reqs {
            let resp = planned.run_view(&query, &graph, &req);
            assert_eq!(resp.stats.edges_scanned, 0, "{:?}", req.spec);
            assert_eq!(resp.termination, Termination::Complete);
            match (&req.spec, &resp.answers) {
                (SourceSpec::Sources(ss), Answers::Batch(b)) => {
                    assert_eq!(b.per_source().unwrap().len(), ss.len());
                }
                (SourceSpec::Targets(ts), Answers::Batch(b)) => {
                    assert_eq!(b.per_source().unwrap().len(), ts.len());
                }
                (SourceSpec::Matrix { .. }, Answers::Matrix(m)) => {
                    assert_eq!(m.reachable_count(), 0);
                }
                (_, Answers::Nodes(ns)) => assert!(ns.is_empty()),
                (_, Answers::Reachable(r)) => assert!(!r),
                other => panic!("unexpected payload shape: {other:?}"),
            }
        }
        // emptiness is decided once per plan, then served from the memo
        assert_eq!(planned.plan_cache_misses(), 1);
    }

    #[test]
    fn rewrite_hook_form_is_memoized() {
        let (mut ab, set, inst, _) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let q = parse_regex(&mut ab, "(a.b)*").unwrap();
        let r1 = planned.rewrite(&q, &graph);
        let r2 = planned.rewrite(&q, &graph);
        assert_eq!(r1, r2);
        assert_ne!(r1, q, "the cache substitution must fire");
        assert_eq!(planned.plans_cached(), 1);
    }
}
