//! [`PlannedEngine`] — the optimizer as a first-class evaluation engine.
//!
//! The paper's Section 3.2 processor "may use the path constraints holding
//! at the site to replace the query to be executed by a simpler query" —
//! it chooses *what* to evaluate. A production engine must also choose
//! *how*: the reverse CSR adjacency makes backward evaluation possible,
//! and on label-skewed data the cheap end of a query can be orders of
//! magnitude cheaper than the expensive end. [`PlannedEngine`] wraps any
//! [`Engine`] and, per query × snapshot:
//!
//! 1. runs the constraint rewrite ([`optimize_with_stats`]) against the
//!    snapshot's [`rpq_graph::LabelStats`] — the Section 3.2 *what*;
//! 2. compiles the winner once ([`Query`]) and estimates the forward cost
//!    (edges matching the query's *first* label group) and the backward
//!    cost (edges matching its *last*) — the *how*: [`Direction::Backward`]
//!    when the last group is decisively rarer, [`Direction::Forward`] when
//!    the first is, [`Direction::Bidirectional`] (meet-in-the-middle) when
//!    neither end dominates;
//! 3. memoizes the whole [`Plan`] behind a `parking_lot::Mutex`, so
//!    repeated queries skip both the rewrite search and recompilation, and
//!    one engine instance can be shared across threads (the threaded
//!    distributed runner, `PartitionedBatchEngine` workers).
//!
//! Through the [`Engine`] trait ([`Engine::eval`] / [`Engine::eval_batch`])
//! the planner affects only *what* the inner engine runs — set-semantics
//! answers are direction-independent, so the wrapper provably returns the
//! inner engine's answer set. The direction choice pays off on the
//! scenarios the reverse CSR opens: [`PlannedEngine::eval_to`]
//! (target-bound) and [`PlannedEngine::eval_pair`] ((source, target)
//! reachability — bench `t12_direction_choice`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use rpq_automata::{Alphabet, Nfa, Regex};
use rpq_constraints::general::Budget;
use rpq_constraints::ConstraintSet;
use rpq_core::{
    eval_product_backward_reversed_csr, eval_product_pair_backward_reversed_csr,
    eval_product_pair_csr, eval_product_pair_forward_csr, BatchResult, Engine, EvalResult,
    PairResult, Query,
};
use rpq_graph::{CsrGraph, LabelStats, Oid};

use crate::planner::optimize_with_stats;

/// The traversal direction planned for directional entry points.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Forward product BFS over `CsrGraph::out` — the first label group is
    /// decisively the rare end.
    Forward,
    /// Backward product BFS (reversed NFA over `CsrGraph::rev`) — the last
    /// label group is decisively the rare end.
    Backward,
    /// Meet-in-the-middle — neither end dominates.
    Bidirectional,
}

/// One planned query over one snapshot: the rewrite winner compiled once
/// (forward and reversed), plus the direction decision and its cost
/// inputs.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The rewritten (or original) query, compiled.
    pub query: Query,
    /// The rewritten query's reversed NFA (the backward/pair engines run
    /// it over the reverse adjacency), compiled once with the plan.
    pub reversed: Nfa,
    /// Did the constraint rewrite change the query?
    pub improved: bool,
    /// The planned direction for pair/target-bound evaluation.
    pub direction: Direction,
    /// Estimated forward entry cost: edges matching the first label group.
    pub forward_cost: usize,
    /// Estimated backward entry cost: edges matching the last label group.
    pub backward_cost: usize,
}

/// Outer memo key: node/edge counts plus a hash of the per-label
/// statistics, so snapshots that merely *coincide* in size do not share
/// plans (direction and rewrite ranking both come from the statistics).
/// The inner map is keyed by the input query, probed by reference.
type SnapshotKey = (usize, usize, u64);

fn snapshot_key(graph: &CsrGraph) -> SnapshotKey {
    (
        graph.num_nodes(),
        graph.num_edges(),
        stats_fingerprint(graph.stats()),
    )
}

fn stats_fingerprint(stats: &LabelStats) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (sym, edges) in stats.iter() {
        (sym.index(), edges, stats.source_count(sym)).hash(&mut h);
    }
    h.finish()
}

/// Bound on distinct snapshots the plan memo retains: a long-lived engine
/// over a mutating graph sees a fresh `CsrGraph` (and [`SnapshotKey`]) per
/// rebuild, and each retired snapshot's plans are dead weight — without a
/// bound the memo grows with snapshots × queries. Superseded snapshots are
/// evicted wholesale once the bound is hit; the working set of live
/// snapshots in any realistic deployment is far below it.
const MAX_MEMOIZED_SNAPSHOTS: usize = 8;

/// An [`Engine`] wrapper that plans before it evaluates: constraint
/// rewriting (*what*), direction choice (*how*), and a shared, thread-safe
/// compiled-plan memo. See the module docs.
pub struct PlannedEngine<E> {
    inner: E,
    set: ConstraintSet,
    alphabet: Alphabet,
    budget: Budget,
    memo: Mutex<HashMap<SnapshotKey, HashMap<Regex, Arc<Plan>>>>,
}

impl<E> PlannedEngine<E> {
    /// Plan over `set` (the constraints holding at this site) with the
    /// default validation [`Budget`].
    pub fn new(inner: E, set: ConstraintSet, alphabet: Alphabet) -> PlannedEngine<E> {
        PlannedEngine {
            inner,
            set,
            alphabet,
            budget: Budget::default(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Plan without constraints: the rewrite pass is an identity and only
    /// the direction choice and plan memo remain.
    pub fn unconstrained(inner: E, alphabet: Alphabet) -> PlannedEngine<E> {
        PlannedEngine::new(inner, ConstraintSet::default(), alphabet)
    }

    /// Replace the candidate-validation budget.
    pub fn with_budget(mut self, budget: Budget) -> PlannedEngine<E> {
        self.budget = budget;
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Number of distinct (query, snapshot) plans memoized.
    pub fn plans_cached(&self) -> usize {
        self.memo.lock().values().map(HashMap::len).sum()
    }

    /// The plan for `query` over `graph` (memoized): rewrite winner,
    /// compiled NFA, direction decision.
    pub fn plan(&self, query: &Query, graph: &CsrGraph) -> Arc<Plan> {
        self.build_plan(query.regex(), query.alphabet(), graph)
    }

    /// The rewritten form of `q` over `graph`'s statistics (memoized) —
    /// usable as the per-site hook of the distributed runners:
    /// `sim.with_rewrite(|_site, q| planned.rewrite(q, &graph))`.
    pub fn rewrite(&self, q: &Regex, graph: &CsrGraph) -> Regex {
        self.build_plan(q, &self.alphabet, graph)
            .query
            .regex()
            .clone()
    }

    fn build_plan(&self, q: &Regex, alphabet: &Alphabet, graph: &CsrGraph) -> Arc<Plan> {
        let snapshot = snapshot_key(graph);
        // Memo probe by reference — the query is cloned only on a miss.
        if let Some(plan) = self.memo.lock().get(&snapshot).and_then(|m| m.get(q)) {
            return plan.clone();
        }
        // Planning runs unlocked: a concurrent duplicate costs one extra
        // rewrite search, and insertion is idempotent (same winner).
        let stats = graph.stats();
        let opt = optimize_with_stats(&self.set, q, alphabet, &self.budget, stats);
        let improved = opt.improved();
        let query = Query::new(opt.query, alphabet);
        let reversed = query.nfa().reverse();
        let group_cost = |symbols: &[rpq_automata::Symbol]| -> usize {
            symbols.iter().map(|&s| stats.edge_count(s)).sum()
        };
        let forward_cost = group_cost(&query.nfa().first_symbols());
        // last symbols of the query = first symbols of its reversal, which
        // is already compiled — so both cost inputs come for free here
        let backward_cost = group_cost(&reversed.first_symbols());
        let direction = choose_direction(forward_cost, backward_cost);
        let plan = Arc::new(Plan {
            query,
            reversed,
            improved,
            direction,
            forward_cost,
            backward_cost,
        });
        let mut memo = self.memo.lock();
        if memo.len() >= MAX_MEMOIZED_SNAPSHOTS && !memo.contains_key(&snapshot) {
            // Evict an arbitrary retired snapshot to bound memory; plans
            // for it will simply be rebuilt if that graph comes back.
            if let Some(stale) = memo.keys().find(|&&k| k != snapshot).copied() {
                memo.remove(&stale);
            }
        }
        memo.entry(snapshot)
            .or_default()
            .insert(q.clone(), plan.clone());
        plan
    }

    /// Target-bound evaluation `{o | target ∈ p(o, I)}`: rewrite, then run
    /// the backward product BFS over the reverse adjacency, reusing the
    /// plan's cached reversed NFA.
    pub fn eval_to(&self, query: &Query, graph: &CsrGraph, target: Oid) -> EvalResult {
        let plan = self.plan(query, graph);
        eval_product_backward_reversed_csr(&plan.reversed, graph, target)
    }

    /// Pair reachability `target ∈ p(source, I)?` by the planned
    /// direction: forward with early exit, backward with early exit, or
    /// meet-in-the-middle.
    pub fn eval_pair(
        &self,
        query: &Query,
        graph: &CsrGraph,
        source: Oid,
        target: Oid,
    ) -> PairResult {
        let plan = self.plan(query, graph);
        let nfa = plan.query.nfa();
        match plan.direction {
            Direction::Forward => eval_product_pair_forward_csr(nfa, graph, source, target),
            Direction::Backward => {
                eval_product_pair_backward_reversed_csr(&plan.reversed, graph, source, target)
            }
            Direction::Bidirectional => eval_product_pair_csr(nfa, graph, source, target),
        }
    }
}

/// Pick the direction from the two entry-cost estimates: a decisive (≥ 2×)
/// win on either end takes that end; otherwise meet in the middle. Equal
/// costs (including the all-zero degenerate case) stay bidirectional.
fn choose_direction(forward_cost: usize, backward_cost: usize) -> Direction {
    if forward_cost == backward_cost {
        Direction::Bidirectional
    } else if backward_cost * 2 <= forward_cost {
        Direction::Backward
    } else if forward_cost * 2 <= backward_cost {
        Direction::Forward
    } else {
        Direction::Bidirectional
    }
}

impl<E: Engine> Engine for PlannedEngine<E> {
    fn name(&self) -> &'static str {
        "planned"
    }

    /// Rewrite (memoized), then delegate to the inner engine. The answer
    /// set equals the inner engine's on the original query whenever the
    /// constraint set holds at `source` (the Section 3.2 site assumption);
    /// with no constraints it is identical unconditionally.
    fn eval(&self, query: &Query, graph: &CsrGraph, source: Oid) -> EvalResult {
        let plan = self.plan(query, graph);
        self.inner.eval(&plan.query, graph, source)
    }

    /// One plan serves the whole batch: the rewrite and compilation happen
    /// once before the fan-out, so e.g. `PartitionedBatchEngine` workers
    /// all share the planned query.
    fn eval_batch(&self, query: &Query, graph: &CsrGraph, sources: &[Oid]) -> BatchResult {
        let plan = self.plan(query, graph);
        self.inner.eval_batch(&plan.query, graph, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;
    use rpq_core::ProductEngine;
    use rpq_graph::{Instance, InstanceBuilder};

    /// The shared T5 cached workload (`rpq_bench::distributed_workload`):
    /// an a·b backbone with trap branches, the cache label `l` wired from
    /// `v0` to every (a.b)*-reachable node, so `l = (a.b)*` holds at `v0`.
    fn cached_workload(depth: usize) -> (Alphabet, ConstraintSet, Instance, Oid) {
        let w = rpq_bench::distributed_workload(depth);
        assert!(w.constraints.holds_at(&w.instance, w.source));
        (w.alphabet, w.constraints, w.instance, w.source)
    }

    #[test]
    fn planned_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlannedEngine<ProductEngine>>();
    }

    #[test]
    fn planned_answers_match_inner_on_the_cached_workload() {
        let (mut ab, set, inst, v0) = cached_workload(6);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let plain = ProductEngine.eval(&query, &graph, v0);
        let opt = planned.eval(&query, &graph, v0);
        assert_eq!(opt.answers, plain.answers);
        let plan = planned.plan(&query, &graph);
        assert!(plan.improved, "the cache substitution must fire");
        assert!(
            opt.stats.edges_scanned < plain.stats.edges_scanned,
            "rewritten query must do less work: {} vs {}",
            opt.stats.edges_scanned,
            plain.stats.edges_scanned
        );
    }

    #[test]
    fn plans_are_memoized_per_query_and_snapshot() {
        let (mut ab, set, inst, v0) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let p1 = planned.plan(&query, &graph);
        let p2 = planned.plan(&query, &graph);
        assert!(Arc::ptr_eq(&p1, &p2), "second plan must be the memo hit");
        assert_eq!(planned.plans_cached(), 1);
        planned.eval(&query, &graph, v0);
        assert_eq!(planned.plans_cached(), 1, "eval reuses the plan");
        let other = Query::parse(&mut ab, "a.b").unwrap();
        planned.eval(&other, &graph, v0);
        assert_eq!(planned.plans_cached(), 2);
    }

    #[test]
    fn backward_is_planned_when_the_last_label_is_rare() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..64 {
            b.edge("s", "hot", &format!("f{i}"));
            b.edge(&format!("f{i}"), "hot", &format!("g{i}"));
        }
        b.edge("g0", "cold", "t");
        let (inst, names) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "hot.hot.cold").unwrap();
        let plan = planned.plan(&query, &graph);
        assert_eq!(plan.direction, Direction::Backward, "{plan:?}");
        assert!(plan.backward_cost < plan.forward_cost);

        let (s, t) = (names["s"], names["t"]);
        let planned_pair = planned.eval_pair(&query, &graph, s, t);
        let forced_forward = rpq_core::eval_product_pair_forward_csr(query.nfa(), &graph, s, t);
        assert!(planned_pair.reachable && forced_forward.reachable);
        assert!(
            planned_pair.stats.edges_scanned * 10 < forced_forward.stats.edges_scanned,
            "backward must win big: {} vs {}",
            planned_pair.stats.edges_scanned,
            forced_forward.stats.edges_scanned
        );

        // the target-bound scenario uses the same rare entry
        let to = planned.eval_to(&query, &graph, t);
        assert_eq!(to.answers, vec![s]);
    }

    #[test]
    fn forward_is_planned_when_the_first_label_is_rare() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "cold", "m");
        for i in 0..64 {
            b.edge("m", "hot", &format!("t{i}"));
        }
        let (inst, _) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "cold.hot").unwrap();
        let plan = planned.plan(&query, &graph);
        assert_eq!(plan.direction, Direction::Forward, "{plan:?}");
    }

    #[test]
    fn balanced_ends_plan_bidirectional() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("x", "a", "y");
        b.edge("y", "a", "z");
        let (inst, _) = b.finish();
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let query = Query::parse(&mut ab, "a.a").unwrap();
        assert_eq!(
            planned.plan(&query, &graph).direction,
            Direction::Bidirectional
        );
    }

    #[test]
    fn same_sized_snapshots_with_different_stats_get_distinct_plans() {
        // Two graphs with identical node and edge counts but opposite
        // label skew: plans must not be shared (the second graph would
        // inherit a backward plan against its *fat* reverse entry).
        let build = |last_is_rare: bool| {
            let mut ab = Alphabet::new();
            let mut b = InstanceBuilder::new(&mut ab);
            if last_is_rare {
                // 16 hot fan edges, one cold edge into t
                for i in 0..16 {
                    b.edge("s", "hot", &format!("m{i}"));
                }
                b.edge("m0", "cold", "t");
            } else {
                // one hot edge, 16 cold edges into t (same node/edge counts)
                b.edge("s", "hot", "m0");
                for i in 0..16 {
                    b.edge(&format!("m{i}"), "cold", "t");
                }
            }
            let (inst, _) = b.finish();
            (ab, CsrGraph::from(&inst))
        };
        let (ab, skew_backward) = build(true);
        let (_, skew_forward) = build(false);
        assert_eq!(skew_backward.num_nodes(), skew_forward.num_nodes());
        assert_eq!(skew_backward.num_edges(), skew_forward.num_edges());

        let planned = PlannedEngine::unconstrained(ProductEngine, ab.clone());
        let mut ab2 = ab.clone();
        let query = Query::parse(&mut ab2, "hot.cold").unwrap();
        assert_eq!(
            planned.plan(&query, &skew_backward).direction,
            Direction::Backward
        );
        assert_eq!(
            planned.plan(&query, &skew_forward).direction,
            Direction::Forward,
            "the second snapshot must get its own plan, not the memo hit"
        );
        assert_eq!(planned.plans_cached(), 2);
    }

    #[test]
    fn plan_memo_is_bounded_across_snapshots() {
        // Simulate a mutating graph: every rebuild produces a snapshot
        // with a fresh stats fingerprint. The memo must retain at most
        // MAX_MEMOIZED_SNAPSHOTS snapshot entries.
        let mut ab = Alphabet::new();
        let planned = PlannedEngine::unconstrained(ProductEngine, {
            ab.intern("a");
            ab.clone()
        });
        let query = Query::parse(&mut ab, "a.a").unwrap();
        for gen in 1..=2 * MAX_MEMOIZED_SNAPSHOTS {
            let mut b = InstanceBuilder::new(&mut ab);
            for i in 0..gen {
                b.edge(&format!("x{i}"), "a", &format!("y{i}"));
            }
            let (inst, _) = b.finish();
            planned.plan(&query, &CsrGraph::from(&inst));
        }
        assert!(
            planned.plans_cached() <= MAX_MEMOIZED_SNAPSHOTS,
            "memo must evict retired snapshots: {} plans",
            planned.plans_cached()
        );
    }

    #[test]
    fn one_planned_engine_shared_across_threads() {
        let (mut ab, set, inst, v0) = cached_workload(5);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let query = Query::parse(&mut ab, "(a.b)*").unwrap();
        let expected = planned.eval(&query, &graph, v0).answers;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        assert_eq!(planned.eval(&query, &graph, v0).answers, expected);
                    }
                });
            }
        });
        assert_eq!(planned.plans_cached(), 1);
    }

    #[test]
    fn rewrite_hook_form_is_memoized() {
        let (mut ab, set, inst, _) = cached_workload(4);
        let graph = CsrGraph::from(&inst);
        let planned = PlannedEngine::new(ProductEngine, set, ab.clone());
        let q = parse_regex(&mut ab, "(a.b)*").unwrap();
        let r1 = planned.rewrite(&q, &graph);
        let r2 = planned.rewrite(&q, &graph);
        assert_eq!(r1, r2);
        assert_ne!(r1, q, "the cache substitution must fire");
        assert_eq!(planned.plans_cached(), 1);
    }
}
