//! # rpq-optimizer
//!
//! Constraint-aware optimization of path queries — Section 3.2 of the
//! paper. Sites hold local path constraints (structural knowledge, cached
//! queries, mirrors); the optimizer replaces a query with a cheaper
//! equivalent, with equivalence established by the Section 4 implication
//! machinery, never assumed.
//!
//! * [`analysis`] — static query analysis run once per plan: rewrite
//!   certification against the constraint closure, zero-edge alphabet
//!   pruning (with a statically-empty fast path), NFA trimming, and
//!   finite-language detection with an exact depth cap;
//! * [`cost`] — static (automaton size + recursion penalty) and measured
//!   cost models;
//! * [`rewrites`] — candidate generation: Theorem 4.10 boundedness
//!   reduction, Example-3-style cached-query substitution, and algebraic
//!   simplification, each validated before being offered;
//! * [`views`] — answering queries from cached views: the Section 5
//!   Boolean-combination search with the partial-use refinement;
//! * [`planner`] — plan selection and the memoizing, thread-safe per-site
//!   rewrite hook for the distributed runners;
//! * [`planned`] — [`PlannedEngine`]: the optimizer as a first-class
//!   `rpq_core::Engine` that rewrites (*what*), picks a traversal
//!   direction from label statistics (*how*: forward / backward /
//!   meet-in-the-middle), and memoizes compiled plans across threads;
//! * [`join`] — conjunctive RPQs: the [`Crpq`] plan-as-data IR and text
//!   grammar (`ans(x,z) :- x -[r*]-> y, y -[s.t]-> z`), the cost-based
//!   join planner (rarest atom first, semijoin propagation along shared
//!   variables), and the budget-sound executor over `rpq_core`'s
//!   set-valued pair kernels.
//!
//! ## Example (the paper's Example 2)
//!
//! ```
//! use rpq_automata::{parse_regex, Alphabet};
//! use rpq_constraints::{general::Budget, ConstraintSet};
//! use rpq_optimizer::optimize;
//!
//! let mut ab = Alphabet::new();
//! let e = ConstraintSet::parse(&mut ab, ["l.l = l"]).unwrap();
//! let q = parse_regex(&mut ab, "l*").unwrap();
//! let opt = optimize(&e, &q, &ab, &Budget::default());
//! assert!(opt.improved());
//! assert!(!opt.after.recursive); // l* became l + ε
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cost;
pub mod join;
pub mod planned;
pub mod planner;
pub mod rewrites;
pub mod views;

pub use analysis::{analyze, certify_rewrite, restrict_to_live_symbols, Analysis, AnalysisFacts};
pub use cost::{estimated_cost, measured_cost, StaticCost};
pub use join::{
    execute_join, execute_join_parallel, execute_naive, parse_crpq, plan_join, Crpq, CrpqAtom,
    HeadBindings, JoinPlan, Var,
};
pub use planned::{Direction, Plan, PlannedEngine, PlannerConfig};
pub use planner::{optimize, optimize_with_stats, Optimized, RewriteCache};
pub use rewrites::{candidates, Candidate, RewriteRule};
pub use views::{
    cache_defs, rewrite_with_views, CacheDef, ViewKind, ViewRewriting, ViewSearchConfig,
};
