//! Static query analysis — facts derived once per (query, snapshot) plan.
//!
//! The planner's rewrite pass (Section 3.2's "replace the query by a
//! simpler query") decides *what* to evaluate and the direction pass
//! decides *how*; this module adds a third static stage that runs between
//! them, entirely at plan time:
//!
//! 1. **Certified rewrites** — the rewrite winner is re-checked against
//!    the constraint closure ([`rpq_constraints::rewrite_closure_nfa`],
//!    the Lemma 4.5/4.7 construction) by two antichain inclusion tests.
//!    A winner that cannot be certified `E ⊨ q = r` is rejected and the
//!    original query is planned instead — candidate validation bugs can
//!    cost optimality, never soundness.
//! 2. **Alphabet restriction** — symbols with zero edges in the
//!    snapshot's [`LabelStats`] cannot appear on any path, so every
//!    occurrence is replaced by `∅` and the regex re-simplified. A query
//!    whose every word mentions a dead symbol becomes statically empty
//!    and is answered without touching the graph.
//! 3. **NFA trimming** — states not on a start→accept path are dropped
//!    before the plan's automata are built, shrinking every downstream
//!    structure (frontiers, subset universes, reversals).
//! 4. **Finite-language detection** — when the trimmed automaton accepts
//!    a finite language, the longest accepted word bounds the product
//!    BFS depth exactly ([`rpq_automata::Nfa::longest_accepted_len`]),
//!    enabling the bounded fast path.
//!
//! The resulting [`AnalysisFacts`] ride on the plan through the epoch
//! memo and are stamped into every [`rpq_core::EvalStats`] the planned
//! engine produces.

use std::collections::BTreeSet;
use std::time::Instant;

use rpq_automata::ops::included_antichain;
use rpq_automata::{Nfa, Regex, Symbol};
use rpq_constraints::{rewrite_closure_nfa, ConstraintSet};
use rpq_graph::LabelStats;

/// Facts derived statically from one query over one snapshot's label
/// statistics. Attached to every plan; see the module docs for the four
/// analyses that populate it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisFacts {
    /// Query symbols erased because the snapshot has zero edges with that
    /// label (sorted, deduplicated). Pruning is statistics-dependent:
    /// epoch-drift plan reuse must re-check that these labels are still
    /// absent.
    pub pruned_symbols: Vec<Symbol>,
    /// NFA states dropped before determinization relative to the
    /// unanalyzed query's Thompson automaton — dead-arm erasure and
    /// reachable/co-accessible trimming combined.
    pub states_trimmed: usize,
    /// Is the restricted language empty? If so the answer set is empty on
    /// *this snapshot* regardless of source, and evaluation is skipped
    /// entirely (`edges_scanned == 0`, no frontier allocation).
    pub statically_empty: bool,
    /// Is the restricted language finite?
    pub finite_language: bool,
    /// Length of the longest accepted word when the language is finite
    /// and nonempty — the exact product-BFS depth cap.
    pub max_word_len: Option<usize>,
    /// Rewrite winners certified equivalent under the constraint closure.
    pub rewrites_certified: usize,
    /// Rewrite winners rejected by certification (planned as original).
    pub rewrites_rejected: usize,
    /// Wall-clock nanoseconds spent in `analyze` (certification included).
    pub analysis_ns: u64,
}

/// The output of [`analyze`]: the query actually planned (certified
/// winner, alphabet-restricted), its trimmed NFA, and the facts.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The regex to plan. Language-equal to `nfa` — the
    /// [`rpq_core::Query::with_nfa`] contract.
    pub regex: Regex,
    /// Trimmed Thompson automaton of `regex`.
    pub nfa: Nfa,
    /// The derived facts.
    pub facts: AnalysisFacts,
}

/// Certify `E ⊨ original = candidate` against the generalized rewrite
/// closure: `L(q) ⊆ L(RewriteTo(r))` and `L(r) ⊆ L(RewriteTo(q))`. Every
/// word of the closure rewrites into the target under `E` (each saturation
/// step is justified by one constraint plus prefix congruence), so both
/// inclusions passing means each query's words reach the other's answers
/// on any instance satisfying `E` — sound to substitute either way. The
/// closure under-approximates full path implication, so a genuinely valid
/// rewrite can be rejected (costing only optimality), but an invalid one
/// is never certified.
pub fn certify_rewrite(set: &ConstraintSet, original: &Regex, candidate: &Regex) -> bool {
    let q = Nfa::thompson(original);
    let r = Nfa::thompson(candidate);
    included_antichain(&q, &rewrite_closure_nfa(set, &r).nfa).is_ok()
        && included_antichain(&r, &rewrite_closure_nfa(set, &q).nfa).is_ok()
}

/// Replace every symbol of `q` that has zero edges under `stats` with `∅`
/// and re-simplify. Returns the restricted regex plus the distinct symbols
/// pruned (empty when nothing changed). Sound per snapshot: a word using a
/// label with no edges matches no path, so dropping those words never
/// loses an answer.
pub fn restrict_to_live_symbols(q: &Regex, stats: &LabelStats) -> (Regex, Vec<Symbol>) {
    let dead: BTreeSet<Symbol> = q
        .symbols()
        .into_iter()
        .filter(|&s| stats.edge_count(s) == 0)
        .collect();
    if dead.is_empty() {
        return (q.clone(), Vec::new());
    }
    (erase(q, &dead), dead.into_iter().collect())
}

/// Structural erase: dead symbols become `∅`, propagated through the
/// smart constructors (`∅` annihilates concatenation, drops out of
/// unions, and collapses `∅*` to `ε`).
fn erase(q: &Regex, dead: &BTreeSet<Symbol>) -> Regex {
    match q {
        Regex::Symbol(s) if dead.contains(s) => Regex::Empty,
        Regex::Concat(parts) => Regex::concat(parts.iter().map(|p| erase(p, dead)).collect()),
        Regex::Union(parts) => Regex::union(parts.iter().map(|p| erase(p, dead)).collect()),
        Regex::Star(inner) => erase(inner, dead).star(),
        other => other.clone(),
    }
}

/// Run the full static pipeline on a rewrite winner: certify (when the
/// winner differs from `original`), restrict to live symbols, trim, and
/// classify the language. The returned [`Analysis`] carries everything
/// the planner needs to build the plan.
pub fn analyze(
    set: &ConstraintSet,
    original: &Regex,
    winner: Regex,
    stats: &LabelStats,
) -> Analysis {
    let t0 = Instant::now();
    let mut facts = AnalysisFacts::default();
    let mut chosen = winner;
    if chosen != *original {
        if certify_rewrite(set, original, &chosen) {
            facts.rewrites_certified = 1;
        } else {
            facts.rewrites_rejected = 1;
            chosen = original.clone();
        }
    }
    let (restricted, pruned) = restrict_to_live_symbols(&chosen, stats);
    facts.pruned_symbols = pruned;
    let full = Nfa::thompson(&restricted);
    let trimmed = full.trim();
    // Count savings against the *unanalyzed* automaton: symbol erasure
    // simplifies the regex structurally (the smart constructors fold `∅`
    // away), so the states it removes never reach `full` — rebuilding the
    // chosen query's Thompson NFA is what makes the reduction visible.
    let unanalyzed_states = if facts.pruned_symbols.is_empty() {
        full.num_states()
    } else {
        Nfa::thompson(&chosen).num_states()
    };
    facts.states_trimmed = unanalyzed_states.saturating_sub(trimmed.num_states());
    facts.statically_empty = trimmed.is_empty_lang();
    facts.max_word_len = trimmed.longest_accepted_len();
    facts.finite_language = facts.statically_empty || facts.max_word_len.is_some();
    facts.analysis_ns = t0.elapsed().as_nanos() as u64;
    Analysis {
        regex: restricted,
        nfa: trimmed,
        facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse_regex, Alphabet};
    use rpq_graph::{CsrGraph, InstanceBuilder};

    fn stats_for(edges: &[(&str, &str, &str)], ab: &mut Alphabet) -> LabelStats {
        let mut b = InstanceBuilder::new(ab);
        for &(f, l, t) in edges {
            b.edge(f, l, t);
        }
        let (inst, _) = b.finish();
        CsrGraph::from(&inst).stats().clone()
    }

    #[test]
    fn dead_symbols_are_erased_and_recorded() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.(b + c).d*").unwrap();
        // only a and b have edges; c and d are dead
        let stats = stats_for(&[("x", "a", "y"), ("y", "b", "z")], &mut ab);
        let (r, pruned) = restrict_to_live_symbols(&q, &stats);
        let expected = parse_regex(&mut ab, "a.b").unwrap();
        assert_eq!(r, expected, "c drops from the union, d* collapses to ε");
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn all_dead_paths_make_the_query_statically_empty() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.ghost + ghost.b").unwrap();
        let stats = stats_for(&[("x", "a", "y"), ("y", "b", "z")], &mut ab);
        let a = analyze(&ConstraintSet::default(), &q, q.clone(), &stats);
        assert!(a.facts.statically_empty);
        assert!(a.facts.finite_language);
        assert_eq!(a.facts.max_word_len, None);
        assert_eq!(a.regex, Regex::Empty);
        assert!(a.nfa.is_empty_lang());
    }

    #[test]
    fn finite_language_gets_an_exact_depth_cap() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.b.a + a").unwrap();
        let stats = stats_for(&[("x", "a", "y"), ("y", "b", "x")], &mut ab);
        let a = analyze(&ConstraintSet::default(), &q, q.clone(), &stats);
        assert!(a.facts.finite_language);
        assert_eq!(a.facts.max_word_len, Some(3));
        assert!(!a.facts.statically_empty);
    }

    #[test]
    fn infinite_language_is_classified_as_such() {
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a*").unwrap();
        let stats = stats_for(&[("x", "a", "y")], &mut ab);
        let a = analyze(&ConstraintSet::default(), &q, q.clone(), &stats);
        assert!(!a.facts.finite_language);
        assert_eq!(a.facts.max_word_len, None);
    }

    #[test]
    fn valid_rewrites_certify_invalid_ones_are_rejected() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
        let q = parse_regex(&mut ab, "l*").unwrap();
        let good = parse_regex(&mut ab, "l + ()").unwrap();
        let bad = parse_regex(&mut ab, "l.l.l").unwrap();
        assert!(certify_rewrite(&set, &q, &good), "Example 2 must certify");
        assert!(!certify_rewrite(&set, &q, &bad), "l.l.l misses ε ∈ L(l*)");

        // analyze() reverts a rejected winner to the original query
        let stats = stats_for(&[("x", "l", "y")], &mut ab);
        let a = analyze(&set, &q, bad, &stats);
        assert_eq!(a.facts.rewrites_rejected, 1);
        assert_eq!(a.facts.rewrites_certified, 0);
        assert_eq!(a.regex, q);
    }

    #[test]
    fn union_branch_rewrites_are_rejected() {
        // E = {a = b + c} does not imply a.x = b.x: on the satisfying
        // instance s -a→ m, s -c→ m, m -x→ t (its stats below),
        // answers(a.x) = {t} while answers(b.x) = ∅. Certification must
        // reject the winner and analyze() must plan the original.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["a = b + c"]).unwrap();
        let q = parse_regex(&mut ab, "a.x").unwrap();
        let bad = parse_regex(&mut ab, "b.x").unwrap();
        assert!(!certify_rewrite(&set, &q, &bad), "a.x = b.x is not implied");
        let stats = stats_for(
            &[("s", "a", "m"), ("s", "c", "m"), ("m", "x", "t")],
            &mut ab,
        );
        let a = analyze(&set, &q, bad, &stats);
        assert_eq!(a.facts.rewrites_rejected, 1);
        assert_eq!(a.facts.rewrites_certified, 0);
        assert_eq!(a.regex, q);
    }

    #[test]
    fn cache_substitution_certifies_under_the_definition_constraint() {
        // Example 3: E ⊨ a.(b.a)*.c = l.a.c when l = (a.b)*.
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
        let q = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
        let r = parse_regex(&mut ab, "l.a.c").unwrap();
        assert!(certify_rewrite(&set, &q, &r));
    }

    #[test]
    fn trimming_is_counted() {
        let mut ab = Alphabet::new();
        // Erasing the dead `b.c` arm folds the union away structurally,
        // so the analyzed automaton is strictly smaller than the
        // unanalyzed query's Thompson NFA — the count records that gap.
        let q = parse_regex(&mut ab, "a* + b.c").unwrap();
        let stats = stats_for(&[("x", "a", "y")], &mut ab);
        let a = analyze(&ConstraintSet::default(), &q, q.clone(), &stats);
        // `b` and `c` were pruned; the trimmed NFA accepts a* and only a*
        assert_eq!(a.facts.pruned_symbols.len(), 2);
        assert!(
            a.facts.states_trimmed > 0,
            "erasure must shrink the automaton vs the unanalyzed query"
        );
        let aa = ab.get("a").unwrap();
        let bb = ab.get("b").unwrap();
        assert!(a.nfa.accepts(&[]));
        assert!(a.nfa.accepts(&[aa, aa]));
        assert!(!a.nfa.accepts(&[bb]));
    }

    #[test]
    fn unchanged_winner_skips_certification() {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
        let q = parse_regex(&mut ab, "l*").unwrap();
        let stats = stats_for(&[("x", "l", "y")], &mut ab);
        let a = analyze(&set, &q, q.clone(), &stats);
        assert_eq!(a.facts.rewrites_certified + a.facts.rewrites_rejected, 0);
    }
}
