//! Answering path queries using cached views.
//!
//! Section 5 of the paper: "the use of cached path queries to answer a
//! given path query … can also be solved using our results, by exhaustive
//! search of Boolean combination of the cached queries and testing
//! equivalence to the given query under the constraints. The problem can
//! be refined to making *partial* use of cached queries rather than using
//! them to fully answer the given query." This module implements both: the
//! bounded combination search and the partial-cover refinement.
//!
//! ## Setting
//!
//! A *cache definition* is an equality constraint `l = r` whose one side is
//! a single label `l` (the cache link of Section 3.2: "the answer to query
//! q at site o could be saved and accessed from o by links labeled l_q").
//! Given caches `(l₁ = r₁), …, (lₖ = rₖ)` and a target `q`, we search for
//! a *rewriting*: a query over cache labels and base labels that is
//! equivalent to `q` under the constraints, and cheaper.
//!
//! ## Where cache labels may appear — a soundness point
//!
//! Constraints hold **at the source object only**, so a cache label is
//! only known to mean its body when it is the *first* step of a path. A
//! set-equality does lift through right-concatenation
//! (`l(o) = r(o)` implies `(l·t)(o) = ∪_{x∈l(o)} t(x) = (r·t)(o)`), so
//! rewritings of the shape
//!
//! ```text
//! l₁·t₁ + l₂·t₂ + … + rest        (cache labels in head position only)
//! ```
//!
//! are sound by construction. Cache labels in non-head positions (e.g.
//! `a·l·b`) would require the constraint to hold at interior nodes, which
//! the paper's semantics does not give — the search never produces them.
//!
//! ## The search
//!
//! For each cache `(l, r)`: the *maximal safe tail* is the universal left
//! quotient `t = {w | ∀u ∈ L(r): u·w ∈ L(q)}` — the largest language with
//! `r·t ⊆ q`. For each subset of caches (bounded), the covered part is
//! `∪ rᵢ·tᵢ`; the *remainder* `q ∖ ∪ rᵢ·tᵢ` is computed as an automaton
//! difference and appended as a plain (cache-free) arm — this is the
//! "partial use" refinement; when the remainder is empty the rewriting is
//! total. Tails are shrunk greedily (shortest words first, then the
//! algebraic simplifier). Every emitted rewriting is *verified* through
//! the implication engines (never trusted by construction), following the
//! crate's policy.

use rpq_automata::elim::nfa_to_regex;
use rpq_automata::ops::{regex_equivalent, regex_included};
use rpq_automata::simplify::{simplify_deep, SimplifyConfig};
use rpq_automata::{Alphabet, Dfa, Nfa, Regex, Symbol};
use rpq_constraints::axioms::{Prover, ProverConfig};
use rpq_constraints::general::{check, Budget, Verdict};
use rpq_constraints::types::{ConstraintKind, PathConstraint};
use rpq_constraints::ConstraintSet;

use crate::cost::StaticCost;

/// A cache definition `label = body` extracted from the constraint set.
#[derive(Clone, Debug)]
pub struct CacheDef {
    /// The cache link label.
    pub label: Symbol,
    /// The cached query.
    pub body: Regex,
}

/// Extract cache definitions: equalities with a single-label side and a
/// non-trivial body.
pub fn cache_defs(set: &ConstraintSet) -> Vec<CacheDef> {
    let mut out = Vec::new();
    for c in set.iter() {
        if c.kind != ConstraintKind::Equality {
            continue;
        }
        for (label_side, body_side) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
            if let Some(word) = label_side.as_word() {
                if word.len() == 1 && body_side.as_word().is_none_or(|w| w.len() > 1) {
                    out.push(CacheDef {
                        label: word[0],
                        body: body_side.clone(),
                    });
                }
            }
        }
    }
    out
}

/// How much of the target the rewriting answers from caches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ViewKind {
    /// The caches cover the whole query (empty remainder).
    Total,
    /// Caches answer part of the query; a residual cache-free arm remains.
    Partial,
}

/// A verified view-based rewriting.
#[derive(Clone, Debug)]
pub struct ViewRewriting {
    /// The rewritten query (cache labels in head positions only).
    pub query: Regex,
    /// Cache labels used.
    pub uses: Vec<Symbol>,
    /// Total or partial cover.
    pub kind: ViewKind,
    /// Which engine verified equivalence under the constraints.
    pub proof: &'static str,
    /// Static cost of the rewriting.
    pub cost: StaticCost,
}

/// Budgets for [`rewrite_with_views`].
#[derive(Clone, Debug)]
pub struct ViewSearchConfig {
    /// Consider at most this many caches (subsets enumerate 2^k).
    pub max_caches: usize,
    /// Give up on a tail whose intermediate DFA exceeds this many states.
    pub max_dfa_states: usize,
    /// Greedy tail shrinking: max word length / word count to try.
    pub tail_word_len: usize,
    /// Greedy tail shrinking: cap on enumerated words.
    pub tail_word_cap: usize,
    /// Verification budget for the implication engine.
    pub verify_budget: Budget,
}

impl Default for ViewSearchConfig {
    fn default() -> Self {
        ViewSearchConfig {
            max_caches: 4,
            max_dfa_states: 2_000,
            tail_word_len: 10,
            tail_word_cap: 12,
            verify_budget: Budget::default(),
        }
    }
}

/// The universal left quotient `{w | ∀u ∈ L(r): u·w ∈ L(q)}` as a regex,
/// or `None` when it is empty or exceeds the state budget. This is the
/// maximal tail with `r·t ⊆ q`.
fn universal_tail(q: &Regex, r: &Regex, sigma: usize, cfg: &ViewSearchConfig) -> Option<Regex> {
    // ∁( ∃-quotient of ∁q by r ): complement, quotient, complement.
    let dq = Dfa::from_nfa(&Nfa::thompson(q), sigma);
    if dq.num_states() > cfg.max_dfa_states {
        return None;
    }
    let ncomp = dq.complement().to_nfa();
    let r_nfa = Nfa::thompson(r);
    let starts = ncomp.reachable_via(&r_nfa);
    let mut ex = Nfa::empty();
    let off = ex.add_nfa(&ncomp);
    for s in starts {
        ex.add_eps(ex.start(), s + off);
    }
    let dex = Dfa::from_nfa(&ex, sigma);
    if dex.num_states() > cfg.max_dfa_states {
        return None;
    }
    let tail_nfa = dex.complement().to_nfa().trim();
    if tail_nfa.is_empty_lang() {
        return None;
    }
    let tail = nfa_to_regex(&tail_nfa);
    debug_assert!(
        regex_included(&r.clone().then(tail.clone()), q),
        "universal tail must satisfy r·t ⊆ q"
    );
    Some(tail)
}

/// Shrink a tail: greedily try finite unions of its shortest words, then
/// the algebraic simplifier on the full expression; keep the smallest
/// expression `t'` with `r·t' ≡ r·t`.
fn shrink_tail(tail: &Regex, r: &Regex, cfg: &ViewSearchConfig) -> Regex {
    let covered = r.clone().then(tail.clone());
    let nfa = Nfa::thompson(tail);
    let mut words: Vec<Vec<Symbol>> = Vec::new();
    for w in nfa.enumerate_words(cfg.tail_word_len, cfg.tail_word_cap) {
        words.push(w);
        let t = Regex::from_finite_language(words.clone());
        if regex_equivalent(&r.clone().then(t.clone()), &covered) {
            return t;
        }
    }
    let simplified = simplify_deep(tail, &SimplifyConfig::default());
    if simplified.size() < tail.size() {
        simplified
    } else {
        tail.clone()
    }
}

/// Search for view-based rewritings of `q` under `set`. Results are
/// verified and sorted by static cost (best first).
pub fn rewrite_with_views(
    set: &ConstraintSet,
    q: &Regex,
    alphabet: &Alphabet,
    cfg: &ViewSearchConfig,
) -> Vec<ViewRewriting> {
    let caches: Vec<CacheDef> = cache_defs(set).into_iter().take(cfg.max_caches).collect();
    if caches.is_empty() {
        return Vec::new();
    }
    let sigma = alphabet.len().max(1);

    // Per-cache maximal tails (shrunk) and covered languages.
    struct Usable {
        label: Symbol,
        tail: Regex,
        covered: Regex,
    }
    let mut usable: Vec<Usable> = Vec::new();
    for c in &caches {
        let Some(t) = universal_tail(q, &c.body, sigma, cfg) else {
            continue;
        };
        let tail = shrink_tail(&t, &c.body, cfg);
        let covered = c.body.clone().then(tail.clone());
        usable.push(Usable {
            label: c.label,
            tail,
            covered,
        });
    }
    if usable.is_empty() {
        return Vec::new();
    }

    let prover = Prover::new(set, ProverConfig::default());
    let mut out: Vec<ViewRewriting> = Vec::new();
    // Enumerate nonempty subsets (the "Boolean combinations").
    for mask in 1u32..(1u32 << usable.len()) {
        let members: Vec<&Usable> = usable
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, u)| u)
            .collect();

        let cover = Regex::union(members.iter().map(|u| u.covered.clone()).collect());
        // Remainder: q ∖ cover, as an automaton difference.
        let dq = Dfa::from_nfa(&Nfa::thompson(q), sigma);
        let dc = Dfa::from_nfa(&Nfa::thompson(&cover), sigma);
        if dq.num_states() > cfg.max_dfa_states || dc.num_states() > cfg.max_dfa_states {
            continue;
        }
        let diff = Dfa::product(&dq, &dc, |x, y| x && !y);
        let rem_nfa = diff.to_nfa().trim();
        let (kind, rem) = if rem_nfa.is_empty_lang() {
            (ViewKind::Total, Regex::Empty)
        } else {
            (
                ViewKind::Partial,
                simplify_deep(&nfa_to_regex(&rem_nfa), &SimplifyConfig::default()),
            )
        };

        let mut arms: Vec<Regex> = members
            .iter()
            .map(|u| Regex::sym(u.label).then(u.tail.clone()))
            .collect();
        if rem != Regex::Empty {
            arms.push(rem.clone());
        }
        let candidate = Regex::union(arms);
        if candidate == *q {
            continue;
        }

        // Verify E ⊨ q = candidate: axiomatic prover first, implication
        // engine as fallback. Never emit unverified rewritings.
        let claim = PathConstraint::equality(q.clone(), candidate.clone());
        let proof = if prover.prove_constraint(&claim).is_some() {
            "axiomatic"
        } else {
            match check(set, &claim, &cfg.verify_budget) {
                Verdict::Implied { method } => method,
                _ => continue,
            }
        };
        out.push(ViewRewriting {
            cost: StaticCost::of(&candidate),
            query: candidate,
            uses: members.iter().map(|u| u.label).collect(),
            kind,
            proof,
        });
    }

    out.sort_by_key(|r| r.cost.score());
    out.dedup_by(|a, b| a.query == b.query);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::parse_regex;

    fn setup(lines: &[&str], query: &str) -> (Alphabet, ConstraintSet, Regex) {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let q = parse_regex(&mut ab, query).unwrap();
        (ab, set, q)
    }

    #[test]
    fn extracts_cache_definitions() {
        let (ab, set, _) = setup(&["l = (a.b)*", "m = c.d", "x <= y"], "a");
        let defs = cache_defs(&set);
        assert_eq!(defs.len(), 2);
        let l = ab.get("l").unwrap();
        assert!(defs.iter().any(|d| d.label == l));
    }

    #[test]
    fn total_cover_reproduces_example3() {
        // X3: q = a(ba)*c, cache l = (ab)*: total rewriting l·a·c.
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c");
        let rewritings = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
        assert!(!rewritings.is_empty());
        let best = &rewritings[0];
        assert_eq!(best.kind, ViewKind::Total);
        assert!(!best.cost.recursive, "cache removes recursion");
        let mut ab2 = ab.clone();
        let expect = parse_regex(&mut ab2, "l.a.c").unwrap();
        assert!(
            regex_equivalent(&best.query, &expect),
            "got {}",
            best.query.display(&ab)
        );
    }

    #[test]
    fn partial_cover_leaves_cache_free_remainder() {
        // Cache covers only the (ab)*-headed part; the d-arm remains plain.
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c + d.e");
        let rewritings = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
        assert!(!rewritings.is_empty());
        let best = &rewritings[0];
        assert_eq!(best.kind, ViewKind::Partial);
        let mut ab2 = ab.clone();
        let expect = parse_regex(&mut ab2, "l.a.c + d.e").unwrap();
        assert!(
            regex_equivalent(&best.query, &expect),
            "got {}",
            best.query.display(&ab)
        );
    }

    #[test]
    fn two_caches_combine() {
        let (ab, set, q) = setup(&["l1 = (a.b)*", "l2 = (c.d)*"], "a.(b.a)*.x + c.(d.c)*.y");
        let rewritings = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
        let both = rewritings
            .iter()
            .find(|r| r.uses.len() == 2)
            .expect("a rewriting using both caches");
        assert_eq!(both.kind, ViewKind::Total);
        let mut ab2 = ab.clone();
        let expect = parse_regex(&mut ab2, "l1.a.x + l2.c.y").unwrap();
        assert!(regex_equivalent(&both.query, &expect));
    }

    #[test]
    fn no_usable_cache_returns_empty() {
        // The cache body shares no structure with the query.
        let (ab, set, q) = setup(&["l = (a.b)*"], "z.z");
        let rewritings = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
        assert!(rewritings.is_empty());
    }

    #[test]
    fn rewritings_cache_labels_in_head_position_only() {
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c + d.e");
        let l = ab.get("l").unwrap();
        for r in rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default()) {
            // every occurrence of l must be the first factor of a union arm
            fn l_only_at_head(r: &Regex, l: Symbol, at_head: bool) -> bool {
                match r {
                    Regex::Symbol(s) => *s != l || at_head,
                    Regex::Empty | Regex::Epsilon => true,
                    Regex::Star(inner) => l_only_at_head(inner, l, false),
                    Regex::Union(parts) => parts.iter().all(|p| l_only_at_head(p, l, at_head)),
                    Regex::Concat(parts) => parts
                        .iter()
                        .enumerate()
                        .all(|(i, p)| l_only_at_head(p, l, at_head && i == 0)),
                }
            }
            assert!(
                l_only_at_head(&r.query, l, true),
                "{}",
                r.query.display(&ab)
            );
        }
    }

    #[test]
    fn verified_never_trusted_by_construction() {
        // All returned rewritings pass the implication engine again.
        let (ab, set, q) = setup(&["l = (a.b)*"], "a.(b.a)*.c");
        for r in rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default()) {
            let claim = PathConstraint::equality(q.clone(), r.query.clone());
            assert!(check(&set, &claim, &Budget::default()).is_implied());
        }
    }

    #[test]
    fn sorted_by_cost() {
        let (ab, set, q) = setup(&["l1 = (a.b)*", "l2 = (c.d)*"], "a.(b.a)*.x + c.(d.c)*.y");
        let rs = rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default());
        for pair in rs.windows(2) {
            assert!(pair[0].cost.score() <= pair[1].cost.score());
        }
    }
}
