//! Conjunctive regular path queries (CRPQs): plan-as-data IR, a
//! cost-based join planner, and the semijoin-propagating executor.
//!
//! A CRPQ conjoins path-query atoms over shared variables:
//!
//! ```text
//! ans(x, z) :- x -[r*]-> y, y -[s.t]-> z
//! ```
//!
//! Each atom `u -[p]-> v` asserts that the path query `p` relates the
//! bindings of `u` and `v`; the answer is the set of `(x, z)` bindings of
//! the *head* variables under some binding of the rest. [`parse_crpq`]
//! turns the text form into a [`Crpq`] (atom bodies are parsed by the
//! shared regex grammar via [`rpq_automata::parse_regex_embedded`], so
//! errors carry byte spans into the original query string).
//!
//! Evaluation order matters enormously: starting from a rare atom and
//! walking the join graph lets every subsequent atom run with one side
//! *bound* to the few values that survived so far (a semijoin), instead of
//! binding against the whole graph. [`plan_join`] picks that order
//! greedily from [`rpq_graph::LabelStats`] — cheapest atom first (by
//! [`crate::estimated_cost`]), then always the cheapest atom *connected*
//! to a bound variable — and assigns each atom the traversal direction its
//! bound side dictates. [`execute_join`] runs any order through
//! `rpq_core`'s set-valued pair kernels ([`rpq_core::pairset`]), threads
//! one shared budget/cancellation control through every atom (a truncated
//! atom contributes a sound subset, so the joined result is a sound subset
//! of the CRPQ answer), and stamps one [`rpq_core::AtomStats`] record per
//! atom in execution order — the join-order telemetry the serving layer
//! aggregates.
//!
//! [`execute_naive`] is the deliberately-unoptimized reference: every atom
//! evaluated independently with both sides free, then hash-joined. Tests
//! and the `t17_crpq` bench gate use it as the oracle and as the
//! no-semijoin baseline.
//!
//! Join graphs of any shape are accepted (path, tree, cyclic); cyclic
//! graphs evaluate correctly via the residual filter step, though the
//! planner's cost model currently treats closing atoms like any other (see
//! ROADMAP).

use std::collections::HashMap;

use rpq_automata::{parse_regex_embedded, Alphabet, ParseError};
use rpq_core::{
    eval_pairs_bound_controlled_csr_with, eval_pairs_bound_csr_with,
    eval_pairs_bound_parallel_csr_with, eval_pairs_from_sources_controlled_csr_with,
    eval_pairs_from_sources_csr_with, eval_pairs_from_sources_parallel_csr_with,
    eval_pairs_to_targets_controlled_csr_with, eval_pairs_to_targets_csr_with,
    eval_pairs_to_targets_parallel_csr_with, seed_candidates, AtomStats, Direction, EvalControl,
    EvalScratch, EvalStats, FrontierMode, PairSetResult, Query, ScratchPool, Termination,
};
use rpq_graph::{GraphView, LabelStats, Oid};

use crate::cost::estimated_cost;
use crate::planned::PlannerConfig;

/// A CRPQ variable, identified by its index into [`Crpq::var_names`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One atom `src -[query]-> dst` of a conjunctive query.
#[derive(Clone, Debug)]
pub struct CrpqAtom {
    /// The atom's path query, compiled.
    pub query: Query,
    /// The variable bound to path starts.
    pub src: Var,
    /// The variable bound to path ends.
    pub dst: Var,
}

/// A conjunctive regular path query as plan-ready data: atoms, the head
/// variable pair, and the variable name table (for diagnostics and
/// display).
#[derive(Clone, Debug)]
pub struct Crpq {
    /// The conjoined atoms, in textual order.
    pub atoms: Vec<CrpqAtom>,
    /// The head variables `ans(head.0, head.1)`.
    pub head: (Var, Var),
    /// Variable names, indexed by [`Var`].
    pub var_names: Vec<String>,
}

impl Crpq {
    /// The name of `v`, as written in the query text.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// A canonical textual form of the query — variable names, atom order,
    /// and each atom body rendered through the shared regex display. Equal
    /// signatures mean equal queries, so this is the CRPQ join-plan memo
    /// key in [`crate::PlannedEngine`].
    pub fn signature(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "ans({}, {}) :- ",
            self.var_name(self.head.0),
            self.var_name(self.head.1)
        );
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{} -[{}]-> {}",
                self.var_name(a.src),
                a.query.regex().display(a.query.alphabet()),
                self.var_name(a.dst)
            );
        }
        s
    }

    /// The variables of atom `i` as a two-element array (`src`, `dst`).
    fn atom_vars(&self, i: usize) -> [Var; 2] {
        [self.atoms[i].src, self.atoms[i].dst]
    }
}

/// A planned atom evaluation order with the planner's per-step decisions —
/// plan-as-data, inspectable and memoizable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// Atom indices in execution order.
    pub order: Vec<usize>,
    /// The traversal direction each step runs in (indexed by execution
    /// position, not atom index): `Forward` when the source side is bound,
    /// `Backward` when only the target side is, `Bidirectional` when both
    /// are (the bound-bound semijoin form).
    pub directions: Vec<Direction>,
    /// The planner's estimated per-atom cost, by execution position.
    pub est_costs: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse the text form of a conjunctive query:
///
/// ```text
/// ans(x, z) :- x -[r*]-> y, y -[s.t]-> z
/// ```
///
/// Grammar: `IDENT '(' var ',' var ')' ':-' atom (',' atom)*` with
/// `atom := var '-[' regex ']->' var`; atom bodies use the full path-query
/// grammar of [`rpq_automata::parse_regex`]. Head variables must occur in
/// at least one atom. Errors carry byte spans into `src` (atom bodies are
/// parsed in place via [`parse_regex_embedded`], so their spans land
/// inside the brackets).
pub fn parse_crpq(alphabet: &mut Alphabet, src: &str) -> Result<Crpq, ParseError> {
    let mut p = CrpqParser { src, pos: 0 };
    p.skip_ws();
    let _head_name = p.ident("a head predicate name (e.g. 'ans')")?;
    p.expect("(")?;
    let h0 = p.ident("a head variable")?;
    p.expect(",")?;
    let h1 = p.ident("a head variable")?;
    p.expect(")")?;
    p.expect(":-")?;

    let mut var_names: Vec<String> = Vec::new();
    let mut var_ids: HashMap<String, Var> = HashMap::new();
    let mut intern = |name: &str| -> Var {
        if let Some(&v) = var_ids.get(name) {
            return v;
        }
        let v = Var(var_names.len() as u32);
        var_names.push(name.to_string());
        var_ids.insert(name.to_string(), v);
        v
    };
    let head = (intern(&h0), intern(&h1));

    let mut atoms = Vec::new();
    loop {
        let sv = p.ident("an atom source variable")?;
        p.expect("-[")?;
        let body_start = p.pos;
        let body_end = match p.src[p.pos..].find("]->") {
            Some(off) => p.pos + off,
            None => {
                let mut e = ParseError::new(body_start, "unterminated atom body: missing ']->'");
                e.end = p.src.len();
                return Err(e);
            }
        };
        let regex = parse_regex_embedded(alphabet, p.src, body_start..body_end)?;
        p.pos = body_end + "]->".len();
        p.skip_ws();
        let tv = p.ident("an atom target variable")?;
        atoms.push(CrpqAtom {
            query: Query::new(regex, alphabet),
            src: intern(&sv),
            dst: intern(&tv),
        });
        p.skip_ws();
        if p.pos >= p.src.len() {
            break;
        }
        p.expect(",")?;
    }

    let crpq = Crpq {
        atoms,
        head,
        var_names,
    };
    for (pos, hv) in [crpq.head.0, crpq.head.1].into_iter().enumerate() {
        let used = crpq.atoms.iter().any(|a| a.src == hv || a.dst == hv);
        if !used {
            return Err(ParseError::new(
                0,
                format!(
                    "head variable '{}' (position {pos}) does not occur in any atom",
                    crpq.var_name(hv)
                ),
            ));
        }
    }
    Ok(crpq)
}

/// Hand-rolled scanner for the conjunctive skeleton (the atom bodies go
/// through the shared regex parser).
struct CrpqParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> CrpqParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Consume `token` (after whitespace), with a spanned error otherwise.
    fn expect(&mut self, token: &'static str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            return Ok(());
        }
        let mut e = ParseError::new(self.pos, format!("expected '{token}'"));
        e.end = (self.pos + 1).min(self.src.len());
        e.expected = vec![token];
        e.found = self.src[self.pos..]
            .chars()
            .next()
            .map(|c| format!("'{c}'"));
        Err(e)
    }

    /// Consume an identifier (`[A-Za-z_][A-Za-z0-9_]*`).
    fn ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || bytes[start].is_ascii_digit() {
            let mut e = ParseError::new(start, format!("expected {what}"));
            e.end = (start + 1).min(self.src.len());
            e.expected = vec![what];
            e.found = self.src[start..].chars().next().map(|c| format!("'{c}'"));
            return Err(e);
        }
        Ok(self.src[start..self.pos].to_string())
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Pick an atom evaluation order from per-label statistics: cheapest atom
/// first (by [`estimated_cost`] — edge counts over the atom automaton's
/// labeled transitions with a recursion penalty), then repeatedly the
/// cheapest remaining atom that shares a variable with the already-bound
/// set (semijoin propagation); a disconnected join graph falls back to the
/// cheapest remaining atom. `src_bound` / `dst_bound` say whether the
/// request pre-binds the head variables (a bound head variable seeds the
/// bound set before the first atom, which can flip both the starting atom
/// and its direction).
///
/// The direction at each step follows the bound sides: source bound →
/// `Forward`, target bound → `Backward`, both → `Bidirectional` (the
/// bound-bound semijoin), neither → `Forward` from pruned seed candidates.
pub fn plan_join(
    crpq: &Crpq,
    stats: &LabelStats,
    _config: &PlannerConfig,
    src_bound: bool,
    dst_bound: bool,
) -> JoinPlan {
    let n = crpq.atoms.len();
    let costs: Vec<usize> = crpq
        .atoms
        .iter()
        .map(|a| estimated_cost(a.query.regex(), stats))
        .collect();

    let mut bound = vec![false; crpq.num_vars()];
    if src_bound {
        bound[crpq.head.0.index()] = true;
    }
    if dst_bound {
        bound[crpq.head.1.index()] = true;
    }

    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut directions = Vec::with_capacity(n);
    let mut est_costs = Vec::with_capacity(n);
    while !remaining.is_empty() {
        // Prefer connected atoms (any variable already bound); among the
        // preferred set take the cheapest, ties to the lower atom index
        // for determinism.
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| crpq.atom_vars(i).iter().any(|v| bound[v.index()]))
            .collect();
        let pool = if connected.is_empty() {
            &remaining
        } else {
            &connected
        };
        let &pick = pool
            .iter()
            .min_by_key(|&&i| (costs[i], i))
            .expect("pool is non-empty");
        let a = &crpq.atoms[pick];
        let dir = match (bound[a.src.index()], bound[a.dst.index()]) {
            (true, true) => Direction::Bidirectional,
            (true, false) => Direction::Forward,
            (false, true) => Direction::Backward,
            (false, false) => Direction::Forward,
        };
        bound[a.src.index()] = true;
        bound[a.dst.index()] = true;
        order.push(pick);
        directions.push(dir);
        est_costs.push(costs[pick]);
        remaining.retain(|&i| i != pick);
    }
    JoinPlan {
        order,
        directions,
        est_costs,
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// An intermediate join relation: named columns over [`Oid`] rows.
/// `None` means "no atom executed yet" (the neutral element of the join) —
/// distinct from an executed-but-empty relation, which annihilates.
struct Relation {
    vars: Vec<Var>,
    rows: Vec<Vec<Oid>>,
}

impl Relation {
    fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Distinct values of column `v`, sorted.
    fn distinct(&self, v: Var) -> Vec<Oid> {
        let c = self.col(v).expect("column present");
        let mut out: Vec<Oid> = self.rows.iter().map(|r| r[c]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Project onto `keep` (dropping dead columns) and dedup rows.
    fn project(&mut self, keep: &[Var]) {
        let cols: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| keep.contains(v))
            .map(|(i, _)| i)
            .collect();
        if cols.len() == self.vars.len() {
            return;
        }
        self.vars = cols.iter().map(|&i| self.vars[i]).collect();
        for row in &mut self.rows {
            *row = cols.iter().map(|&i| row[i]).collect();
        }
        self.rows.sort_unstable();
        self.rows.dedup();
    }
}

/// The endpoint restrictions a request may carry for the head variables.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeadBindings<'a> {
    /// Allowed bindings for the first head variable (`None` = free).
    pub sources: Option<&'a [Oid]>,
    /// Allowed bindings for the second head variable (`None` = free).
    pub targets: Option<&'a [Oid]>,
}

/// Execute a CRPQ in the given atom `order` over `graph`, with semijoin
/// propagation: each atom evaluates with its bound side restricted to the
/// distinct values surviving the join so far (or to the request's head
/// bindings before the first atom touches that variable), through the
/// set-valued pair kernels of [`rpq_core::pairset`].
///
/// `control` threads one shared `edges_scanned` budget and cancellation
/// flag through every atom. A truncated atom contributes a sound *subset*
/// of its binding relation, and a join of per-atom subsets is a subset of
/// the join — so the returned bindings are always sound, and
/// [`PairSetResult::termination`] reports the first non-complete atom
/// outcome. One [`AtomStats`] record per atom lands in `stats.atoms` in
/// execution order (atoms never started after a cancellation are recorded
/// with `direction: None` and zero work).
pub fn execute_join<G: GraphView + Sync>(
    crpq: &Crpq,
    order: &[usize],
    graph: &G,
    heads: HeadBindings<'_>,
    mode: FrontierMode,
    control: &EvalControl<'_>,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    let pool = ScratchPool::new();
    execute_join_parallel(crpq, order, graph, heads, mode, control, 1, &pool, scratch)
}

/// [`execute_join`] with intra-query parallelism: uncontrolled atom
/// evaluations fan their independent 64-lane seed waves across up to `dop`
/// workers drawing per-worker arenas from `pool` (the engine's shared
/// [`ScratchPool`]). Semijoin propagation is inherently sequential between
/// atoms — each atom's bound side comes from the previous join step — so
/// the parallelism lives *inside* each atom's pair-set kernel, where the
/// waves are independent. `dop ≤ 1` is exactly [`execute_join`].
/// Controlled atoms keep the shared-budget seed loop (its
/// whatever-the-budget-has-left contract is order-dependent).
#[allow(clippy::too_many_arguments)]
pub fn execute_join_parallel<G: GraphView + Sync>(
    crpq: &Crpq,
    order: &[usize],
    graph: &G,
    heads: HeadBindings<'_>,
    mode: FrontierMode,
    control: &EvalControl<'_>,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> PairSetResult {
    assert_eq!(order.len(), crpq.atoms.len(), "order must cover every atom");
    let mut rel: Option<Relation> = None;
    let mut stats = EvalStats::default();
    let mut term = Termination::Complete;
    let controlled = control.budget.is_some() || control.cancel.is_some();

    // Pre-bindings for head variables, consumed the first time the
    // variable joins the relation.
    let prebound = |v: Var| -> Option<&[Oid]> {
        if v == crpq.head.0 {
            heads.sources
        } else if v == crpq.head.1 {
            // When both head positions name one variable, `sources` (the
            // arm above) wins; the executor filters `targets` at the end.
            heads.targets
        } else {
            None
        }
    };

    for (pos, &ai) in order.iter().enumerate() {
        let atom = &crpq.atoms[ai];
        let (u, v) = (atom.src, atom.dst);

        // Bound candidate sets for each side, if any: relation column
        // first (already join-restricted), else the request's head
        // binding.
        let u_vals: Option<Vec<Oid>> = match rel.as_ref().and_then(|r| r.col(u)) {
            Some(_) => Some(rel.as_ref().expect("relation present").distinct(u)),
            None => prebound(u).map(|s| s.to_vec()),
        };
        let v_vals: Option<Vec<Oid>> = if u == v {
            None // a self-loop atom binds one variable; evaluate via `u`
        } else {
            match rel.as_ref().and_then(|r| r.col(v)) {
                Some(_) => Some(rel.as_ref().expect("relation present").distinct(v)),
                None => prebound(v).map(|s| s.to_vec()),
            }
        };

        let per_atom = EvalControl {
            budget: control
                .budget
                .map(|b| b.saturating_sub(stats.edges_scanned)),
            cancel: control.cancel,
        };
        let (res, dir) = eval_atom(
            atom,
            graph,
            u_vals.as_deref(),
            v_vals.as_deref(),
            mode,
            controlled,
            &per_atom,
            dop,
            pool,
            scratch,
        );
        if !res.termination.is_complete() && term.is_complete() {
            term = res.termination;
        }

        // Self-loop atoms keep only reflexive bindings.
        let pairs: Vec<(Oid, Oid)> = if u == v {
            res.pairs.iter().copied().filter(|(s, t)| s == t).collect()
        } else {
            res.pairs.clone()
        };

        stats.atoms.push(AtomStats {
            atom: ai,
            direction: Some(dir),
            edges_scanned: res.stats.edges_scanned,
            bindings: pairs.len(),
        });
        let mut atom_stats = res.stats;
        atom_stats.atoms.clear();
        atom_stats.answers = 0;
        stats.merge(&atom_stats);

        rel = Some(join_step(rel, &pairs, u, v));

        // Keep the relation narrow: only head variables and variables of
        // still-unexecuted atoms stay live.
        if let Some(r) = rel.as_mut() {
            let mut live: Vec<Var> = vec![crpq.head.0, crpq.head.1];
            for &later in &order[pos + 1..] {
                live.extend(crpq.atom_vars(later));
            }
            r.project(&live);
            if r.rows.is_empty() {
                // Annihilated: no binding can satisfy the query. Record
                // the skipped atoms and finish.
                for &skipped in &order[pos + 1..] {
                    stats.atoms.push(AtomStats {
                        atom: skipped,
                        direction: None,
                        edges_scanned: 0,
                        bindings: 0,
                    });
                }
                break;
            }
        }
    }

    // Project the final relation onto the head pair. A head column can be
    // absent only after an early annihilation (the relation emptied before
    // the atom binding it ran), in which case there are no rows anyway.
    let mut pairs: Vec<(Oid, Oid)> = match rel {
        Some(r) => match (r.col(crpq.head.0), r.col(crpq.head.1)) {
            (Some(c0), Some(c1)) => r.rows.iter().map(|row| (row[c0], row[c1])).collect(),
            _ => Vec::new(),
        },
        None => Vec::new(),
    };
    // Residual head filters (e.g. `ans(x, x)` with both sets given, or a
    // head restriction on a variable whose first atom bound it through the
    // relation instead).
    if let Some(ss) = heads.sources {
        pairs.retain(|(s, _)| ss.contains(s));
    }
    if let Some(ts) = heads.targets {
        pairs.retain(|(_, t)| ts.contains(t));
    }
    pairs.sort_unstable();
    pairs.dedup();
    stats.answers = pairs.len();
    PairSetResult {
        pairs,
        stats,
        termination: term,
    }
}

/// Evaluate one atom with the given bound sides through the pair-set
/// kernels, returning the binding relation and the direction actually run.
#[allow(clippy::too_many_arguments)]
fn eval_atom<G: GraphView + Sync>(
    atom: &CrpqAtom,
    graph: &G,
    u_vals: Option<&[Oid]>,
    v_vals: Option<&[Oid]>,
    mode: FrontierMode,
    controlled: bool,
    control: &EvalControl<'_>,
    dop: usize,
    pool: &ScratchPool,
    scratch: &mut EvalScratch,
) -> (PairSetResult, Direction) {
    let nfa = atom.query.nfa();
    match (u_vals, v_vals) {
        (Some(ss), Some(ts)) => {
            let r = if controlled {
                eval_pairs_bound_controlled_csr_with(nfa, graph, ss, ts, mode, control, scratch)
            } else if dop > 1 {
                eval_pairs_bound_parallel_csr_with(nfa, graph, ss, ts, dop, pool, scratch)
            } else {
                eval_pairs_bound_csr_with(nfa, graph, ss, ts, scratch)
            };
            (r, Direction::Bidirectional)
        }
        (Some(ss), None) => {
            let r = if controlled {
                eval_pairs_from_sources_controlled_csr_with(nfa, graph, ss, mode, control, scratch)
            } else if dop > 1 {
                eval_pairs_from_sources_parallel_csr_with(nfa, graph, ss, dop, pool, scratch)
            } else {
                eval_pairs_from_sources_csr_with(nfa, graph, ss, scratch)
            };
            (r, Direction::Forward)
        }
        (None, Some(ts)) => {
            let reversed = nfa.reverse();
            let r = if controlled {
                eval_pairs_to_targets_controlled_csr_with(
                    &reversed, graph, ts, mode, control, scratch,
                )
            } else if dop > 1 {
                eval_pairs_to_targets_parallel_csr_with(&reversed, graph, ts, dop, pool, scratch)
            } else {
                eval_pairs_to_targets_csr_with(&reversed, graph, ts, scratch)
            };
            (r, Direction::Backward)
        }
        (None, None) => {
            let seeds = seed_candidates(nfa, graph, scratch);
            let r = if controlled {
                eval_pairs_from_sources_controlled_csr_with(
                    nfa, graph, &seeds, mode, control, scratch,
                )
            } else if dop > 1 {
                eval_pairs_from_sources_parallel_csr_with(nfa, graph, &seeds, dop, pool, scratch)
            } else {
                eval_pairs_from_sources_csr_with(nfa, graph, &seeds, scratch)
            };
            (r, Direction::Forward)
        }
    }
}

/// One hash-join step: extend `rel` by the atom relation `pairs` over
/// columns `u` (pair sources) and `v` (pair targets). Handles every
/// overlap shape: both columns new (cross product against the neutral
/// relation or a genuine disconnected join), one shared column (indexed
/// extension), both shared (filter).
fn join_step(rel: Option<Relation>, pairs: &[(Oid, Oid)], u: Var, v: Var) -> Relation {
    let self_loop = u == v;
    let rel = match rel {
        None => {
            // First atom: the relation IS the atom's bindings.
            let (vars, rows) = if self_loop {
                (
                    vec![u],
                    pairs.iter().map(|&(s, _)| vec![s]).collect::<Vec<_>>(),
                )
            } else {
                (
                    vec![u, v],
                    pairs.iter().map(|&(s, t)| vec![s, t]).collect::<Vec<_>>(),
                )
            };
            let mut r = Relation { vars, rows };
            r.rows.sort_unstable();
            r.rows.dedup();
            return r;
        }
        Some(r) => r,
    };
    let cu = rel.col(u);
    let cv = if self_loop { cu } else { rel.col(v) };
    match (cu, cv) {
        (Some(cu), Some(cv)) => {
            // Both bound: the atom is a filter over existing columns.
            let mut set: Vec<(Oid, Oid)> = pairs.to_vec();
            set.sort_unstable();
            let rows = rel
                .rows
                .into_iter()
                .filter(|row| set.binary_search(&(row[cu], row[cv])).is_ok())
                .collect();
            Relation {
                vars: rel.vars,
                rows,
            }
        }
        (Some(cu), None) => {
            // Extend each row by the targets its `u` value reaches.
            let mut by_src: HashMap<Oid, Vec<Oid>> = HashMap::new();
            for &(s, t) in pairs {
                by_src.entry(s).or_default().push(t);
            }
            let mut vars = rel.vars;
            vars.push(v);
            let mut rows = Vec::new();
            for row in rel.rows {
                if let Some(ts) = by_src.get(&row[cu]) {
                    for &t in ts {
                        let mut r2 = row.clone();
                        r2.push(t);
                        rows.push(r2);
                    }
                }
            }
            Relation { vars, rows }
        }
        (None, Some(cv)) => {
            let mut by_dst: HashMap<Oid, Vec<Oid>> = HashMap::new();
            for &(s, t) in pairs {
                by_dst.entry(t).or_default().push(s);
            }
            let mut vars = rel.vars;
            vars.push(u);
            let mut rows = Vec::new();
            for row in rel.rows {
                if let Some(ss) = by_dst.get(&row[cv]) {
                    for &s in ss {
                        let mut r2 = row.clone();
                        r2.push(s);
                        rows.push(r2);
                    }
                }
            }
            Relation { vars, rows }
        }
        (None, None) => {
            // Disconnected: cross product (the planner avoids this shape
            // when the join graph is connected).
            let mut vars = rel.vars;
            let mut rows = Vec::new();
            if self_loop {
                vars.push(u);
                for row in &rel.rows {
                    for &(s, _) in pairs {
                        let mut r2 = row.clone();
                        r2.push(s);
                        rows.push(r2);
                    }
                }
            } else {
                vars.push(u);
                vars.push(v);
                for row in &rel.rows {
                    for &(s, t) in pairs {
                        let mut r2 = row.clone();
                        r2.push(s);
                        r2.push(t);
                        rows.push(r2);
                    }
                }
            }
            Relation { vars, rows }
        }
    }
}

/// The deliberately-unoptimized reference evaluation: every atom computed
/// independently with both variables free (no semijoin propagation, no
/// cost-based order — textual order), then joined. Used as the correctness
/// oracle by tests and as the no-propagation baseline by the `t17_crpq`
/// bench gate; returns the binding set plus the total edges scanned.
pub fn execute_naive<G: GraphView>(
    crpq: &Crpq,
    graph: &G,
    heads: HeadBindings<'_>,
) -> (Vec<(Oid, Oid)>, usize) {
    let mut scratch = EvalScratch::new();
    let mut edges = 0usize;
    let mut rel: Option<Relation> = None;
    for atom in &crpq.atoms {
        let seeds = seed_candidates(atom.query.nfa(), graph, &mut scratch);
        let res = eval_pairs_from_sources_csr_with(atom.query.nfa(), graph, &seeds, &mut scratch);
        edges += res.stats.edges_scanned;
        let pairs: Vec<(Oid, Oid)> = if atom.src == atom.dst {
            res.pairs.iter().copied().filter(|(s, t)| s == t).collect()
        } else {
            res.pairs
        };
        rel = Some(join_step(rel, &pairs, atom.src, atom.dst));
    }
    let mut pairs: Vec<(Oid, Oid)> = match rel {
        Some(r) => {
            let c0 = r.col(crpq.head.0).expect("head var bound");
            let c1 = r.col(crpq.head.1).expect("head var bound");
            r.rows.iter().map(|row| (row[c0], row[c1])).collect()
        }
        None => Vec::new(),
    };
    if let Some(ss) = heads.sources {
        pairs.retain(|(s, _)| ss.contains(s));
    }
    if let Some(ts) = heads.targets {
        pairs.retain(|(_, t)| ts.contains(t));
    }
    pairs.sort_unstable();
    pairs.dedup();
    (pairs, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::{CsrGraph, InstanceBuilder};

    fn chain_graph() -> (Alphabet, CsrGraph, std::collections::HashMap<String, Oid>) {
        // s -a-> m1 -b-> t1 ; s -a-> m2 -b-> t2 ; noise edges
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "m1");
        b.edge("s", "a", "m2");
        b.edge("m1", "b", "t1");
        b.edge("m2", "b", "t2");
        b.edge("t1", "c", "s");
        b.edge("x1", "a", "x2");
        b.edge("x2", "c", "x3");
        let (inst, names) = b.finish();
        (ab, CsrGraph::from(&inst), names)
    }

    #[test]
    fn parse_round_trips_structure() {
        let mut ab = Alphabet::new();
        let q = parse_crpq(&mut ab, "ans(x, z) :- x -[a]-> y, y -[b*]-> z").unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.var_name(q.head.0), "x");
        assert_eq!(q.var_name(q.head.1), "z");
        assert_eq!(q.atoms[0].src, q.head.0);
        assert_eq!(q.atoms[0].dst, q.atoms[1].src);
        assert_eq!(q.atoms[1].dst, q.head.1);
    }

    #[test]
    fn parse_errors_carry_spans_into_the_original_text() {
        let mut ab = Alphabet::new();
        // error inside the SECOND atom body: span must land there
        let src = "ans(x, z) :- x -[a]-> y, y -[b**)]-> z";
        let err = parse_crpq(&mut ab, src).unwrap_err();
        let (start, _end) = err.span();
        let body_two = src.find("b**").unwrap();
        assert!(
            start >= body_two,
            "span {start} should point into the second atom body (≥ {body_two}): {err}"
        );

        let err = parse_crpq(&mut ab, "ans(x z) :- x -[a]-> z").unwrap_err();
        assert_eq!(err.span().0, "ans(x ".len(), "{err}"); // points at 'z'

        let err = parse_crpq(&mut ab, "ans(x, z) :- x -[a -> z").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");

        let err = parse_crpq(&mut ab, "ans(x, w) :- x -[a]-> y").unwrap_err();
        assert!(err.message.contains("head variable 'w'"), "{err}");
    }

    #[test]
    fn two_atom_chain_joins_across_the_shared_variable() {
        let (mut ab, csr, _) = chain_graph();
        let q = parse_crpq(&mut ab, "ans(x, z) :- x -[a]-> y, y -[b]-> z").unwrap();
        let plan = plan_join(&q, csr.stats(), &PlannerConfig::default(), false, false);
        let mut scratch = EvalScratch::new();
        let res = execute_join(
            &q,
            &plan.order,
            &csr,
            HeadBindings::default(),
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            &mut scratch,
        );
        // s -a-> m1 -b-> t1 and s -a-> m2 -b-> t2; x1 -a-> x2 has no b
        assert_eq!(res.pairs.len(), 2);
        assert_eq!(res.stats.atoms.len(), 2);
        let (naive, _) = execute_naive(&q, &csr, HeadBindings::default());
        assert_eq!(res.pairs, naive);
    }

    #[test]
    fn every_order_agrees_with_the_naive_oracle() {
        let (mut ab, csr, _) = chain_graph();
        for text in [
            "ans(x, z) :- x -[a]-> y, y -[b]-> z",
            "ans(x, z) :- x -[a.b]-> y, y -[c]-> z",
            "ans(x, z) :- x -[(a+b)*]-> y, y -[c]-> z, z -[a]-> w",
            // cyclic join graph: z reaches back to x
            "ans(x, z) :- x -[a]-> y, y -[b]-> z, z -[c]-> x",
            // self-loop atom
            "ans(x, y) :- x -[a.b.c]-> x, x -[a]-> y",
        ] {
            let q = parse_crpq(&mut ab, text).unwrap();
            let (naive, _) = execute_naive(&q, &csr, HeadBindings::default());
            let n = q.atoms.len();
            let mut orders: Vec<Vec<usize>> = vec![(0..n).collect(), (0..n).rev().collect()];
            if n >= 3 {
                orders.push(vec![1, 0, 2]);
                orders.push(vec![2, 0, 1]);
            }
            for order in orders {
                let mut scratch = EvalScratch::new();
                let res = execute_join(
                    &q,
                    &order,
                    &csr,
                    HeadBindings::default(),
                    FrontierMode::Hybrid,
                    &EvalControl::UNLIMITED,
                    &mut scratch,
                );
                assert_eq!(res.pairs, naive, "{text} order {order:?}");
                assert_eq!(res.stats.atoms.len(), n, "{text} order {order:?}");
            }
        }
    }

    #[test]
    fn head_bindings_restrict_and_seed_the_join() {
        let (mut ab, csr, names) = chain_graph();
        let s = names["s"];
        let q = parse_crpq(&mut ab, "ans(x, z) :- x -[a]-> y, y -[b]-> z").unwrap();
        let sources = [s];
        let mut scratch = EvalScratch::new();
        let plan = plan_join(&q, csr.stats(), &PlannerConfig::default(), true, false);
        let res = execute_join(
            &q,
            &plan.order,
            &csr,
            HeadBindings {
                sources: Some(&sources),
                targets: None,
            },
            FrontierMode::Hybrid,
            &EvalControl::UNLIMITED,
            &mut scratch,
        );
        let (naive, _) = execute_naive(
            &q,
            &csr,
            HeadBindings {
                sources: Some(&sources),
                targets: None,
            },
        );
        assert_eq!(res.pairs, naive);
        assert!(res.pairs.iter().all(|&(x, _)| x == s));
        assert_eq!(res.pairs.len(), 2);
    }

    #[test]
    fn planner_prefers_the_rare_atom_and_binds_forward_from_it() {
        let (mut ab, csr, _) = chain_graph();
        // 'c' has 2 edges, 'a' has 3: the planner should start at the
        // c-atom and run the a-atom backward from its bound target side.
        let q = parse_crpq(&mut ab, "ans(x, z) :- x -[a]-> y, y -[c]-> z").unwrap();
        let plan = plan_join(&q, csr.stats(), &PlannerConfig::default(), false, false);
        assert_eq!(plan.order, vec![1, 0], "rare atom first");
        assert_eq!(plan.directions[1], Direction::Backward);
        assert!(plan.est_costs[0] <= plan.est_costs[1]);
    }

    #[test]
    fn budget_exhaustion_yields_a_sound_subset() {
        let (mut ab, csr, _) = chain_graph();
        let q = parse_crpq(&mut ab, "ans(x, z) :- x -[a]-> y, y -[b]-> z").unwrap();
        let (full, _) = execute_naive(&q, &csr, HeadBindings::default());
        let plan = plan_join(&q, csr.stats(), &PlannerConfig::default(), false, false);
        for budget in 0..16 {
            let mut scratch = EvalScratch::new();
            let control = EvalControl {
                budget: Some(budget),
                cancel: None,
            };
            let res = execute_join(
                &q,
                &plan.order,
                &csr,
                HeadBindings::default(),
                FrontierMode::Hybrid,
                &control,
                &mut scratch,
            );
            assert!(res.stats.edges_scanned <= budget, "budget {budget}");
            for p in &res.pairs {
                assert!(full.contains(p), "unsound binding {p:?} at budget {budget}");
            }
            if res.termination.is_complete() {
                assert_eq!(res.pairs, full, "complete run must be exact");
            }
        }
    }
}
