//! Finite instances of the `Ref(source, label, destination)` schema.
//!
//! Section 2.1 views a semistructured database as a labeled directed graph:
//! `Ref(o1, l, o2)` says there is an edge labeled `l` from object `o1` to
//! `o2`. Objects have *finite outdegree* ("objects are small"); indegree is
//! unconstrained. An [`Instance`] stores the graph in adjacency form, keyed
//! by dense [`Oid`]s, with optional human-readable node names used by traces
//! and DOT rendering (the paper's `d`, `o1`, `o2`, …).

use std::collections::HashMap;
use std::fmt;

use rpq_automata::{Alphabet, Symbol};
use serde::{Deserialize, Serialize};

use crate::csr::LabelStats;

/// A dense object identifier within one [`Instance`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Oid(pub u32);

impl Oid {
    /// The dense index of this object.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A finite labeled directed graph — one instance of the `Ref` schema.
///
/// This is the *mutable builder* form; freeze it into the label-indexed
/// [`crate::CsrGraph`] for query-time evaluation.
///
/// **Invariant:** every adjacency row is sorted by `(Symbol, Oid)`; the
/// query and mutation methods rely on it via binary search. Every
/// constructor in this crate maintains it. If an instance is ever
/// rehydrated from an external encoding that predates the invariant
/// (e.g. after swapping the real `serde` back in — derived `Deserialize`
/// performs no validation), call [`Instance::normalize`] once before use.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Instance {
    /// `out[o] = [(label, destination), …]` kept sorted by `(Symbol, Oid)`,
    /// so membership is a binary search and label groups are contiguous.
    out: Vec<Vec<(Symbol, Oid)>>,
    /// Optional display names per node.
    names: Vec<Option<String>>,
    edge_count: usize,
    /// Per-label statistics, maintained incrementally by
    /// [`Instance::add_edge`]/[`Instance::remove_edge`] so snapshotting
    /// ([`crate::CsrGraph::from`]) pays no recount.
    stats: LabelStats,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Add an anonymous node.
    pub fn add_node(&mut self) -> Oid {
        self.out.push(Vec::new());
        self.names.push(None);
        Oid(self.out.len() as u32 - 1)
    }

    /// Add a named node (names are for display only and need not be unique,
    /// though [`Instance::node_by_name`] returns the first match).
    pub fn add_named_node(&mut self, name: &str) -> Oid {
        let o = self.add_node();
        self.names[o.index()] = Some(name.to_owned());
        o
    }

    /// Add an edge `Ref(from, label, to)`. Duplicate edges are ignored
    /// (relations are sets). Returns true if the edge was new.
    ///
    /// Rows are kept sorted by `(Symbol, Oid)`, so the dedup check is a
    /// binary search rather than a linear scan — bulk loading `d` edges
    /// onto one node costs `O(d log d)` comparisons, not `O(d²)`.
    pub fn add_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        let row = &mut self.out[from.index()];
        match row.binary_search(&(label, to)) {
            Ok(_) => false,
            Err(pos) => {
                // new source for the label iff no neighbor in the row
                // carries it (rows are sorted, so only positions pos-1 and
                // pos need checking)
                let had_label = (pos > 0 && row[pos - 1].0 == label)
                    || row.get(pos).is_some_and(|&(l, _)| l == label);
                row.insert(pos, (label, to));
                self.edge_count += 1;
                self.stats.note_added(label, !had_label);
                true
            }
        }
    }

    /// Remove the edge `Ref(from, label, to)` if present. Returns true if
    /// an edge was removed. Statistics stay incrementally maintained, so
    /// mutate-then-snapshot loops never pay a recount.
    pub fn remove_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        let row = &mut self.out[from.index()];
        match row.binary_search(&(label, to)) {
            Ok(pos) => {
                row.remove(pos);
                self.edge_count -= 1;
                let still_has = (pos > 0 && row[pos - 1].0 == label)
                    || row.get(pos).is_some_and(|&(l, _)| l == label);
                self.stats.note_removed(label, !still_has);
                true
            }
            Err(_) => false,
        }
    }

    /// Per-label statistics, maintained incrementally on every mutation.
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// Simulate an instance rehydrated from an encoding that predates the
    /// incremental stats field (rows populated, statistics empty) — for
    /// exercising `CsrGraph::from`'s staleness fallback.
    #[cfg(test)]
    pub(crate) fn clear_stats_for_test(&mut self) {
        self.stats = LabelStats::default();
    }

    /// Restore the sorted-row invariant and recount edges and statistics
    /// after rehydrating from an encoding that does not guarantee them
    /// (see the type docs). Always sweeps every row (`O(nodes + edges)`);
    /// the per-row sort is skipped when a row is already sorted.
    pub fn normalize(&mut self) {
        let mut count = 0usize;
        for row in &mut self.out {
            if !row.is_sorted() {
                row.sort_unstable();
            }
            row.dedup();
            count += row.len();
        }
        self.edge_count = count;
        self.stats = LabelStats::recount(self.out.iter().map(Vec::as_slice));
    }

    /// Number of objects.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of edges (tuples in `Ref`).
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// The outgoing edges of `o` — the paper's "description of o" — sorted
    /// by `(Symbol, Oid)`.
    pub fn out_edges(&self, o: Oid) -> &[(Symbol, Oid)] {
        &self.out[o.index()]
    }

    /// The outgoing edges of `o` carrying `label`: a contiguous sub-slice
    /// of the sorted row, found by binary search.
    pub fn out_edges_labeled(&self, o: Oid, label: Symbol) -> &[(Symbol, Oid)] {
        let row = &self.out[o.index()];
        let lo = row.partition_point(|&(l, _)| l < label);
        let hi = row.partition_point(|&(l, _)| l <= label);
        &row[lo..hi]
    }

    /// Outdegree of `o`.
    pub fn outdegree(&self, o: Oid) -> usize {
        self.out[o.index()].len()
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.out.len() as u32).map(Oid)
    }

    /// Iterate over all edges as `(source, label, destination)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (Oid, Symbol, Oid)> + '_ {
        self.nodes()
            .flat_map(move |o| self.out[o.index()].iter().map(move |&(l, d)| (o, l, d)))
    }

    /// The display name of a node (falls back to `oN`).
    pub fn node_name(&self, o: Oid) -> String {
        match &self.names[o.index()] {
            Some(n) => n.clone(),
            None => format!("{o}"),
        }
    }

    /// First node carrying the given display name.
    pub fn node_by_name(&self, name: &str) -> Option<Oid> {
        self.names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| Oid(i as u32))
    }

    /// Indegree of every node (computed on demand).
    pub fn indegrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for (_, _, d) in self.edges() {
            deg[d.index()] += 1;
        }
        deg
    }

    /// Objects reachable from `o` by any directed path (including `o`).
    pub fn reachable_from(&self, o: Oid) -> Vec<Oid> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![o];
        seen[o.index()] = true;
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            out.push(x);
            for &(_, t) in self.out_edges(x) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        out.sort();
        out
    }

    /// BFS distance (in edges) from `o` to every node; `usize::MAX` when
    /// unreachable. The paper's "distance" and "K-sphere" notions use this.
    pub fn distances_from(&self, o: Oid) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[o.index()] = 0;
        queue.push_back(o);
        while let Some(x) = queue.pop_front() {
            let d = dist[x.index()];
            for &(_, t) in self.out_edges(x) {
                if dist[t.index()] == usize::MAX {
                    dist[t.index()] = d + 1;
                    queue.push_back(t);
                }
            }
        }
        dist
    }

    /// Follow a word from `o`, collecting every endpoint (set semantics).
    /// This is a reference implementation of `w(o, I)` for a single word.
    /// Dedup uses a seen-bitmap (reset between letters), so each step is
    /// linear in the edges followed rather than quadratic in the frontier.
    pub fn word_targets(&self, o: Oid, word: &[Symbol]) -> Vec<Oid> {
        let mut cur = vec![o];
        let mut seen = vec![false; self.num_nodes()];
        for &sym in word {
            let mut next: Vec<Oid> = Vec::new();
            for &x in &cur {
                for &(_, t) in self.out_edges_labeled(x, sym) {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        next.push(t);
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            for &t in &next {
                seen[t.index()] = false;
            }
            cur = next;
        }
        cur.sort();
        cur
    }

    /// Graphviz rendering.
    pub fn dot(&self, alphabet: &Alphabet) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph instance {\n  rankdir=LR;\n");
        for o in self.nodes() {
            let _ = writeln!(s, "  n{} [label=\"{}\"];", o.0, self.node_name(o));
        }
        for (a, l, b) in self.edges() {
            let _ = writeln!(
                s,
                "  n{} -> n{} [label=\"{}\"];",
                a.0,
                b.0,
                alphabet.name(l)
            );
        }
        s.push_str("}\n");
        s
    }
}

/// A builder that accepts string triples, interning labels and node names.
/// Convenient for tests and examples:
///
/// ```
/// use rpq_automata::Alphabet;
/// use rpq_graph::InstanceBuilder;
///
/// let mut ab = Alphabet::new();
/// let mut b = InstanceBuilder::new(&mut ab);
/// b.edge("o1", "a", "o2");
/// b.edge("o2", "b", "o3");
/// let (inst, _) = b.finish();
/// assert_eq!(inst.num_edges(), 2);
/// ```
pub struct InstanceBuilder<'a> {
    alphabet: &'a mut Alphabet,
    instance: Instance,
    by_name: HashMap<String, Oid>,
}

impl<'a> InstanceBuilder<'a> {
    /// Start building against an alphabet.
    pub fn new(alphabet: &'a mut Alphabet) -> Self {
        InstanceBuilder {
            alphabet,
            instance: Instance::new(),
            by_name: HashMap::new(),
        }
    }

    /// Get or create the node with the given name.
    pub fn node(&mut self, name: &str) -> Oid {
        if let Some(&o) = self.by_name.get(name) {
            return o;
        }
        let o = self.instance.add_named_node(name);
        self.by_name.insert(name.to_owned(), o);
        o
    }

    /// Add the edge `Ref(from, label, to)` by names.
    pub fn edge(&mut self, from: &str, label: &str, to: &str) -> (Oid, Symbol, Oid) {
        let f = self.node(from);
        let l = self.alphabet.intern(label);
        let t = self.node(to);
        self.instance.add_edge(f, l, t);
        (f, l, t)
    }

    /// Finish, returning the instance and the name → oid map.
    pub fn finish(self) -> (Instance, HashMap<String, Oid>) {
        (self.instance, self.by_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Alphabet, Instance, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("x", "b", "y");
        b.edge("y", "b", "x");
        let (inst, names) = b.finish();
        let s = names["s"];
        (ab, inst, s)
    }

    #[test]
    fn add_edge_dedups() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut i = Instance::new();
        let x = i.add_node();
        let y = i.add_node();
        assert!(i.add_edge(x, a, y));
        assert!(!i.add_edge(x, a, y));
        assert_eq!(i.num_edges(), 1);
        assert_eq!(i.outdegree(x), 1);
        assert_eq!(i.outdegree(y), 0);
    }

    #[test]
    fn remove_edge_and_stats_stay_in_sync() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut i = Instance::new();
        let x = i.add_node();
        let y = i.add_node();
        let z = i.add_node();
        i.add_edge(x, a, y);
        i.add_edge(x, a, z);
        i.add_edge(x, b, y);
        i.add_edge(y, a, z);
        assert_eq!(i.stats().edge_count(a), 3);
        assert_eq!(i.stats().source_count(a), 2);

        assert!(i.remove_edge(x, a, y));
        assert!(!i.remove_edge(x, a, y), "double remove is a no-op");
        assert_eq!(i.num_edges(), 3);
        assert_eq!(i.stats().edge_count(a), 2);
        assert_eq!(i.stats().source_count(a), 2, "x still has x -a-> z");

        assert!(i.remove_edge(x, a, z));
        assert_eq!(i.stats().source_count(a), 1, "x lost its last a-edge");
        // the incremental counters agree with a recount (also asserted by
        // CsrGraph::from in debug builds)
        let csr = crate::CsrGraph::from(&i);
        assert!(csr.stats().agrees_with(i.stats()));
    }

    #[test]
    fn normalize_recounts_stats() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut i = Instance::new();
        let x = i.add_node();
        let y = i.add_node();
        i.add_edge(x, a, y);
        i.normalize();
        assert_eq!(i.stats().edge_count(a), 1);
        assert_eq!(i.num_edges(), 1);
    }

    #[test]
    fn reachability_and_distance() {
        let (_, inst, s) = chain();
        let r = inst.reachable_from(s);
        assert_eq!(r.len(), 3);
        let d = inst.distances_from(s);
        assert_eq!(d[s.index()], 0);
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(d[x.index()], 1);
        assert_eq!(d[y.index()], 2);
    }

    #[test]
    fn word_targets_follows_labels() {
        let (ab, inst, s) = chain();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(inst.word_targets(s, &[a]), vec![x]);
        assert_eq!(inst.word_targets(s, &[a, b]), vec![y]);
        assert_eq!(inst.word_targets(s, &[a, b, b]), vec![x]);
        assert!(inst.word_targets(s, &[b]).is_empty());
        assert_eq!(inst.word_targets(s, &[]), vec![s]);
    }

    #[test]
    fn indegrees_count_incoming() {
        let (_, inst, s) = chain();
        let deg = inst.indegrees();
        let x = inst.node_by_name("x").unwrap();
        assert_eq!(deg[s.index()], 0);
        assert_eq!(deg[x.index()], 2); // from s and from y
    }

    #[test]
    fn names_resolve() {
        let (_, inst, s) = chain();
        assert_eq!(inst.node_name(s), "s");
        assert_eq!(inst.node_by_name("nope"), None);
        let mut i2 = Instance::new();
        let anon = i2.add_node();
        assert_eq!(i2.node_name(anon), "o0");
    }

    #[test]
    fn dot_contains_labels() {
        let (ab, inst, _) = chain();
        let dot = inst.dot(&ab);
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"s\""));
    }

    #[test]
    fn edges_iterator_matches_count() {
        let (_, inst, _) = chain();
        assert_eq!(inst.edges().count(), inst.num_edges());
    }
}
