//! [`GraphView`] — the uniform read interface over graph snapshots.
//!
//! Every evaluation strategy in the workspace walks a snapshot through the
//! same four questions: how many nodes, which targets does label `l` reach
//! from `v` (forward and transposed), and what are `v`'s label groups.
//! [`crate::CsrGraph`] answers them over one immutable arena;
//! [`crate::DeltaGraph`] answers them over an immutable base *plus* a
//! mutation overlay (per-label sorted append logs of adds and tombstoned
//! deletes). `GraphView` abstracts over both so the hot evaluation paths in
//! `rpq-core` (product, pair, batch, quotient, streaming) are written once
//! and run over either form — the precondition for evaluating under write
//! traffic without rebuilding the CSR per batch.
//!
//! Two supporting types make the abstraction cheap:
//!
//! * [`ViewEdges`] — the edge-target iterator. For a CSR row it is a plain
//!   slice walk; for a delta overlay it is a three-way sorted merge (base
//!   minus tombstones, plus the add log) that still knows its exact length
//!   up front, so the engines' `edges_scanned` accounting is unchanged.
//! * [`Epoch`] — snapshot identity: a `base` lineage id (0 for standalone
//!   [`crate::CsrGraph`]s, a process-unique id per [`crate::DeltaGraph`]
//!   base) and a `version` bumped per mutation batch. The optimizer's plan
//!   memo uses the lineage to reuse compiled plans across small-delta
//!   epochs and to invalidate them when `compact()` installs a fresh base.
//!
//! [`EdgeDelta`] is the batched mutation format shared by
//! [`crate::DeltaGraph::apply_delta`] and the `rpq-distributed` runners'
//! site-level `apply_delta`.

use rpq_automata::Symbol;

use crate::csr::{CsrGraph, LabelStats};
use crate::delta::DeltaGroups;
use crate::instance::Oid;

/// Snapshot identity for plan caching: which base lineage a view belongs
/// to, and how many mutation batches it has absorbed since that base.
///
/// A standalone [`CsrGraph`] is [`Epoch::STATIC`] (`base == 0`): it has no
/// lineage, so plan reuse for it requires an exact statistics match. Every
/// [`crate::DeltaGraph`] base (fresh or compacted) takes a process-unique
/// nonzero `base`, and `version` counts mutation batches on top of it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// Lineage id of the underlying base snapshot (0 = no lineage).
    pub base: u64,
    /// Mutation batches absorbed since the base was installed.
    pub version: u64,
}

impl Epoch {
    /// The epoch of a standalone immutable snapshot.
    pub const STATIC: Epoch = Epoch {
        base: 0,
        version: 0,
    };
}

/// A batch of edge mutations, applied atomically as one epoch step by
/// [`crate::DeltaGraph::apply_delta`] and the distributed runners.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges to add, as `(source, label, target)` triples.
    pub adds: Vec<(Oid, Symbol, Oid)>,
    /// Edges to delete, as `(source, label, target)` triples.
    pub dels: Vec<(Oid, Symbol, Oid)>,
}

impl EdgeDelta {
    /// An empty delta.
    pub fn new() -> EdgeDelta {
        EdgeDelta::default()
    }

    /// Record an edge addition.
    pub fn add(&mut self, from: Oid, label: Symbol, to: Oid) -> &mut Self {
        self.adds.push((from, label, to));
        self
    }

    /// Record an edge deletion.
    pub fn del(&mut self, from: Oid, label: Symbol, to: Oid) -> &mut Self {
        self.dels.push((from, label, to));
        self
    }

    /// Total mutations in the batch.
    pub fn len(&self) -> usize {
        self.adds.len() + self.dels.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty()
    }

    /// The delta that undoes this one (adds become dels and vice versa) —
    /// useful for measuring apply/revert cycles without cloning the graph.
    pub fn inverse(&self) -> EdgeDelta {
        EdgeDelta {
            adds: self.dels.clone(),
            dels: self.adds.clone(),
        }
    }
}

/// The targets of one `(node, label)` step of a [`GraphView`] — either a
/// contiguous CSR slice or a sorted overlay merge. Always yields targets in
/// ascending [`Oid`] order and knows its exact length up front (so callers
/// can account `edges_scanned` before iterating, exactly as with slices).
#[derive(Clone, Debug)]
pub enum ViewEdges<'a> {
    /// A contiguous CSR row segment.
    Slice(&'a [Oid]),
    /// A base-minus-tombstones-plus-adds sorted merge.
    Overlay(OverlayEdges<'a>),
}

impl<'a> ViewEdges<'a> {
    /// Exact number of edges this step will deliver.
    pub fn len(&self) -> usize {
        match self {
            ViewEdges::Slice(s) => s.len(),
            ViewEdges::Overlay(o) => o.len,
        }
    }

    /// Does this step deliver no edges?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for ViewEdges<'_> {
    type Item = Oid;

    fn next(&mut self) -> Option<Oid> {
        match self {
            ViewEdges::Slice(s) => {
                let (&first, rest) = s.split_first()?;
                *s = rest;
                Some(first)
            }
            ViewEdges::Overlay(o) => o.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for ViewEdges<'_> {}

/// Sorted three-way merge behind [`ViewEdges::Overlay`]: the base CSR
/// segment with its tombstoned entries skipped, merged with the add-log
/// segment. Both inputs are sorted by target oid and disjoint (an edge is
/// never both in the base and in the add log), so the merge is linear and
/// emits ascending oids.
#[derive(Clone, Debug)]
pub struct OverlayEdges<'a> {
    /// Remaining base segment (targets, ascending).
    pub(crate) base: &'a [Oid],
    /// Remaining tombstones for this `(node, label)` — `(key, endpoint)`
    /// pairs whose endpoints are a subset of `base`, ascending.
    pub(crate) dels: &'a [(Oid, Oid)],
    /// Remaining add-log segment — `(key, endpoint)` pairs, ascending by
    /// endpoint, disjoint from `base`.
    pub(crate) adds: &'a [(Oid, Oid)],
    /// Exact number of edges left to deliver.
    pub(crate) len: usize,
}

impl Iterator for OverlayEdges<'_> {
    type Item = Oid;

    fn next(&mut self) -> Option<Oid> {
        // Drop tombstoned base heads first; tombstones are a subset of the
        // base segment, so every del head eventually matches a base head.
        while let (Some(&b), Some(&(_, d))) = (self.base.first(), self.dels.first()) {
            if d > b {
                break;
            }
            self.dels = &self.dels[1..];
            if d == b {
                self.base = &self.base[1..];
            }
        }
        let out = match (self.base.first(), self.adds.first()) {
            (Some(&b), Some(&(_, a))) if a < b => {
                self.adds = &self.adds[1..];
                a
            }
            (Some(&b), _) => {
                self.base = &self.base[1..];
                b
            }
            (None, Some(&(_, a))) => {
                self.adds = &self.adds[1..];
                a
            }
            (None, None) => return None,
        };
        self.len -= 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl ExactSizeIterator for OverlayEdges<'_> {}

/// One node's out-row grouped by label, over either snapshot form — the
/// view-level counterpart of [`CsrGraph::out_groups`]. Yields each distinct
/// label once with its (non-empty) target iterator, labels ascending.
pub enum ViewGroups<'a> {
    /// Direct CSR label groups (contiguous slices).
    Csr(crate::csr::LabelGroups<'a>),
    /// Delta-overlay label groups (per-label sorted merges).
    Delta(DeltaGroups<'a>),
}

impl<'a> Iterator for ViewGroups<'a> {
    type Item = (Symbol, ViewEdges<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ViewGroups::Csr(g) => g.next().map(|(l, ts)| (l, ViewEdges::Slice(ts))),
            ViewGroups::Delta(g) => g.next(),
        }
    }
}

/// The uniform read interface over graph snapshots: label-indexed forward
/// and reverse adjacency, label groups, per-label statistics, and a
/// snapshot [`Epoch`]. Implemented by the immutable [`CsrGraph`] and the
/// mutable-overlay [`crate::DeltaGraph`]; the `rpq-core` evaluation paths
/// are generic over it.
///
/// On a concrete [`CsrGraph`], the inherent slice-returning methods shadow
/// these (existing callers keep their `&[Oid]` rows); the trait methods
/// resolve inside generic code.
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of (effective) edges.
    fn num_edges(&self) -> usize;

    /// Per-label frequency statistics for the current state of the view.
    fn stats(&self) -> &LabelStats;

    /// Snapshot identity — see [`Epoch`].
    fn epoch(&self) -> Epoch;

    /// The targets of `v`'s edges labeled `label`, ascending.
    fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_>;

    /// The *sources* of edges labeled `label` arriving at `v` (the
    /// transpose of [`GraphView::out`]), ascending.
    fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_>;

    /// `v`'s out-row grouped by label: each distinct label once, with its
    /// targets — the label-dependent-work-once-per-label contract of
    /// [`CsrGraph::out_groups`], over any view.
    fn out_groups(&self, v: Oid) -> ViewGroups<'_>;

    /// `v`'s *in*-row grouped by label: each distinct label once, with the
    /// sources of its incoming edges — the transpose of
    /// [`GraphView::out_groups`]. The dense pull step of the hybrid product
    /// BFS walks this row for every unreached candidate node, so both
    /// snapshot forms must serve it without materializing.
    fn rev_groups(&self, v: Oid) -> ViewGroups<'_>;
}

impl GraphView for CsrGraph {
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn stats(&self) -> &LabelStats {
        CsrGraph::stats(self)
    }

    fn epoch(&self) -> Epoch {
        Epoch::STATIC
    }

    fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        ViewEdges::Slice(CsrGraph::out(self, v, label))
    }

    fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        ViewEdges::Slice(CsrGraph::rev(self, v, label))
    }

    fn out_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Csr(CsrGraph::out_groups(self, v))
    }

    fn rev_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Csr(CsrGraph::rev_groups(self, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use rpq_automata::Alphabet;

    #[test]
    fn csr_view_matches_inherent_slices() {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("s", "a", "y");
        b.edge("s", "b", "x");
        b.edge("x", "b", "y");
        let (inst, _) = b.finish();
        let csr = CsrGraph::from(&inst);
        for v in csr.nodes() {
            for sym in ab.symbols() {
                let via_view: Vec<Oid> = GraphView::out(&csr, v, sym).collect();
                assert_eq!(via_view, CsrGraph::out(&csr, v, sym));
                let via_rev: Vec<Oid> = GraphView::rev(&csr, v, sym).collect();
                assert_eq!(via_rev, CsrGraph::rev(&csr, v, sym));
            }
            let grouped: usize = GraphView::out_groups(&csr, v).map(|(_, ts)| ts.len()).sum();
            assert_eq!(grouped, csr.outdegree(v));
        }
        assert_eq!(GraphView::epoch(&csr), Epoch::STATIC);
    }

    #[test]
    fn overlay_merges_sorted_and_exact_len() {
        let base = [Oid(1), Oid(3), Oid(5), Oid(7)];
        let dels = [(Oid(0), Oid(3)), (Oid(0), Oid(7))];
        let adds = [(Oid(0), Oid(2)), (Oid(0), Oid(9))];
        let it = ViewEdges::Overlay(OverlayEdges {
            base: &base,
            dels: &dels,
            adds: &adds,
            len: base.len() - dels.len() + adds.len(),
        });
        assert_eq!(it.len(), 4);
        let got: Vec<Oid> = it.collect();
        assert_eq!(got, vec![Oid(1), Oid(2), Oid(5), Oid(9)]);
    }

    #[test]
    fn edge_delta_inverse_round_trips() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut d = EdgeDelta::new();
        d.add(Oid(0), a, Oid(1)).del(Oid(1), a, Oid(2));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let inv = d.inverse();
        assert_eq!(inv.adds, d.dels);
        assert_eq!(inv.dels, d.adds);
    }
}
