//! Dense bit-parallel building blocks for batched evaluation.
//!
//! Multi-source evaluation advances many searches through the same
//! [`crate::CsrGraph`] at once. The batched engines in `rpq-core` represent
//! their frontiers in two bit-parallel forms, both provided here:
//!
//! * [`NodeBitset`] — one bit per graph node in `u64` blocks. A
//!   [`FrontierArena`] holds one such bitset per automaton state, the
//!   "single shared frontier" used when callers only need the *union* of
//!   the per-source answer sets.
//! * [`LaneMatrix`] — one `u64` *lane mask* per (automaton-state, node)
//!   cell, where lane `i` belongs to source `i` of the current wave (up to
//!   64 sources per wave). One pass over a CSR label row ORs a whole mask
//!   into every target, advancing all pending sources at once; the lane
//!   partition is what recovers *per-source* reachability afterwards.
//!
//! Both structures are plain arenas: allocated once per evaluation (or per
//! wave) and reset in place, so the hot loops never allocate.

/// A fixed-capacity set of node indices stored as `u64` blocks.
///
/// Maintains a running set-bit count so [`NodeBitset::is_empty`] and
/// [`NodeBitset::count`] are O(1) — BFS loops ask "is the frontier empty"
/// once per level, and the hybrid product search sizes its frontiers from
/// `count()` when deciding between push and pull expansion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitset {
    blocks: Vec<u64>,
    len: usize,
    /// Number of set bits, maintained by every mutation.
    ones: usize,
}

impl NodeBitset {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> NodeBitset {
        NodeBitset {
            blocks: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Universe size (number of addressable bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set — O(1) via the maintained count.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Set bit `i`; returns `true` if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (block, bit) = (i / 64, 1u64 << (i % 64));
        let newly = self.blocks[block] & bit == 0;
        self.blocks[block] |= bit;
        self.ones += usize::from(newly);
        newly
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits — O(1) via the maintained count.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Clear all bits (retains the allocation). O(1) when already empty.
    pub fn clear(&mut self) {
        if self.ones != 0 {
            self.blocks.fill(0);
            self.ones = 0;
        }
    }

    /// OR `other` into `self`; returns `true` if any bit changed.
    pub fn union_with(&mut self, other: &NodeBitset) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut gained = 0usize;
        for (a, &b) in self.blocks.iter_mut().zip(&other.blocks) {
            let fresh = b & !*a;
            gained += fresh.count_ones() as usize;
            *a |= fresh;
        }
        self.ones += gained;
        gained != 0
    }

    /// Iterate set bits in increasing order, skipping all-zero blocks
    /// without entering the per-bit extraction loop.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|&(_, &block)| block != 0)
            .flat_map(|(bi, &block)| {
                let mut b = block;
                std::iter::from_fn(move || {
                    if b == 0 {
                        return None;
                    }
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + t)
                })
            })
    }
}

/// One [`NodeBitset`] per automaton state, spanning all graph nodes — the
/// frontier (or visited-set) shape of the union-mode batched BFS.
#[derive(Clone, Debug, Default)]
pub struct FrontierArena {
    per_state: Vec<NodeBitset>,
}

impl FrontierArena {
    /// One empty bitset of capacity `nodes` for each of `states`.
    pub fn new(states: usize, nodes: usize) -> FrontierArena {
        FrontierArena {
            per_state: vec![NodeBitset::new(nodes); states],
        }
    }

    /// Number of per-state bitsets.
    pub fn num_states(&self) -> usize {
        self.per_state.len()
    }

    /// The bitset for state `q`.
    pub fn state(&self, q: usize) -> &NodeBitset {
        &self.per_state[q]
    }

    /// Mutable bitset for state `q`.
    pub fn state_mut(&mut self, q: usize) -> &mut NodeBitset {
        &mut self.per_state[q]
    }

    /// True if every per-state bitset is empty (the BFS is done). O(states):
    /// each per-state check reads a maintained count instead of scanning
    /// blocks.
    pub fn is_empty(&self) -> bool {
        self.per_state.iter().all(NodeBitset::is_empty)
    }

    /// Total set bits across all states — the frontier size in
    /// (state, node) pairs. O(states).
    pub fn count(&self) -> usize {
        self.per_state.iter().map(NodeBitset::count).sum()
    }

    /// Clear every per-state bitset (retains allocations).
    pub fn clear(&mut self) {
        for b in &mut self.per_state {
            b.clear();
        }
    }

    /// Swap contents with `other` (the level-synchronous frontier flip).
    pub fn swap(&mut self, other: &mut FrontierArena) {
        std::mem::swap(&mut self.per_state, &mut other.per_state);
    }
}

/// A dense `(state, node) -> u64` lane-mask table: bit `i` of cell
/// `(q, v)` says source-lane `i` has reached node `v` in automaton state
/// `q`. The source-partition bitmap of the bit-parallel batched product
/// engine (waves of up to 64 lanes).
#[derive(Clone, Debug, Default)]
pub struct LaneMatrix {
    nv: usize,
    masks: Vec<u64>,
}

impl LaneMatrix {
    /// An all-zero table for `states × nodes` cells.
    pub fn new(states: usize, nodes: usize) -> LaneMatrix {
        LaneMatrix {
            nv: nodes,
            masks: vec![0; states * nodes],
        }
    }

    #[inline]
    fn idx(&self, q: usize, v: usize) -> usize {
        q * self.nv + v
    }

    /// The lane mask at `(q, v)`.
    #[inline]
    pub fn get(&self, q: usize, v: usize) -> u64 {
        self.masks[self.idx(q, v)]
    }

    /// OR `bits` into `(q, v)`; returns the bits that were newly set.
    #[inline]
    pub fn or(&mut self, q: usize, v: usize, bits: u64) -> u64 {
        let i = self.idx(q, v);
        let newly = bits & !self.masks[i];
        self.masks[i] |= newly;
        newly
    }

    /// Replace the mask at `(q, v)` with zero, returning the old value.
    #[inline]
    pub fn take(&mut self, q: usize, v: usize) -> u64 {
        let i = self.idx(q, v);
        std::mem::take(&mut self.masks[i])
    }

    /// Zero every cell (retains the allocation).
    pub fn clear(&mut self) {
        self.masks.fill(0);
    }

    /// Swap contents with `other` (the level-synchronous frontier flip).
    pub fn swap_contents(&mut self, other: &mut LaneMatrix) {
        debug_assert_eq!(self.nv, other.nv);
        std::mem::swap(&mut self.masks, &mut other.masks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = NodeBitset::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn union_reports_change() {
        let mut a = NodeBitset::new(70);
        let mut b = NodeBitset::new(70);
        b.insert(3);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn frontier_arena_swap_and_clear() {
        let mut f = FrontierArena::new(3, 10);
        let mut g = FrontierArena::new(3, 10);
        f.state_mut(1).insert(7);
        f.state_mut(2).insert(1);
        assert!(!f.is_empty());
        assert_eq!(f.count(), 2);
        f.state_mut(2).clear();
        assert_eq!(f.count(), 1);
        assert_eq!(f.num_states(), 3);
        f.swap(&mut g);
        assert!(f.is_empty());
        assert!(g.state(1).contains(7));
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn lane_matrix_or_returns_new_bits() {
        let mut m = LaneMatrix::new(2, 5);
        assert_eq!(m.or(1, 3, 0b1010), 0b1010);
        assert_eq!(m.or(1, 3, 0b1110), 0b0100);
        assert_eq!(m.get(1, 3), 0b1110);
        assert_eq!(m.take(1, 3), 0b1110);
        assert_eq!(m.get(1, 3), 0);
        m.or(0, 0, 1);
        m.clear();
        assert_eq!(m.get(0, 0), 0);
    }
}
