//! Seeded workload generators: the graphs the paper's scenarios live on.
//!
//! Includes the exact Figure 2 graph (used by the distributed-evaluation
//! reproduction of Figure 3), web-like graphs for the scaling experiments,
//! and a "site with caches" generator for the Section 3.2 optimization
//! benchmarks (cached queries materialized as extra labeled edges so that
//! the corresponding path constraint `l_q = q` genuinely holds).

use rand::prelude::*;
use rand::rngs::StdRng;
use rpq_automata::{Alphabet, Symbol};

use crate::instance::{Instance, InstanceBuilder, Oid};

/// The graph of Figure 2: `o1 -a→ o2`, `o2 -b→ o3`, `o3 -b→ o2`, plus the
/// client site `d` (no outgoing edges). Returns `(instance, d, o1)`.
pub fn fig2_graph(alphabet: &mut Alphabet) -> (Instance, Oid, Oid) {
    let mut b = InstanceBuilder::new(alphabet);
    let d = b.node("d");
    b.edge("o1", "a", "o2");
    b.edge("o2", "b", "o3");
    b.edge("o3", "b", "o2");
    let (inst, names) = b.finish();
    (inst, d, names["o1"])
}

/// A uniformly random graph: `n` nodes, `m` edges with labels drawn from
/// `labels`. Self-loops and parallel edges with distinct labels allowed;
/// exact duplicates are retried. Degenerate inputs (no nodes or no labels)
/// degrade to an edge-less instance instead of aborting.
pub fn random_graph(rng: &mut StdRng, n: usize, m: usize, labels: &[Symbol]) -> (Instance, Oid) {
    debug_assert!(n > 0 && !labels.is_empty());
    let mut inst = Instance::new();
    for _ in 0..n {
        inst.add_node();
    }
    if n == 0 || labels.is_empty() {
        return (inst, Oid(0));
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < m && attempts < m * 20 {
        attempts += 1;
        let from = Oid(rng.random_range(0..n) as u32);
        let to = Oid(rng.random_range(0..n) as u32);
        let label = labels[rng.random_range(0..labels.len())];
        if inst.add_edge(from, label, to) {
            added += 1;
        }
    }
    (inst, Oid(0))
}

/// A random **deterministic** graph: at most one outgoing edge per
/// (node, label) — the instance class of the paper's Section 5 special
/// case ("instances whose nodes have at most one outgoing edge with a
/// given label"). Each slot is filled with probability `fill_percent`.
pub fn deterministic_graph(
    rng: &mut StdRng,
    n: usize,
    labels: &[Symbol],
    fill_percent: u32,
) -> (Instance, Oid) {
    debug_assert!(n > 0 && !labels.is_empty());
    let mut inst = Instance::new();
    for _ in 0..n {
        inst.add_node();
    }
    for from in 0..n {
        for &label in labels {
            if rng.random_range(0..100) < fill_percent {
                let to = Oid(rng.random_range(0..n) as u32);
                inst.add_edge(Oid(from as u32), label, to);
            }
        }
    }
    (inst, Oid(0))
}

/// A web-like graph built by preferential attachment: node `i` links to
/// `out_links` earlier nodes, biased toward high-indegree targets (pages may
/// be referenced arbitrarily often but reference few pages — Section 2.1).
pub fn web_graph(
    rng: &mut StdRng,
    n: usize,
    out_links: usize,
    labels: &[Symbol],
) -> (Instance, Oid) {
    debug_assert!(n > 0 && !labels.is_empty());
    let mut inst = Instance::new();
    if n == 0 || labels.is_empty() {
        for _ in 0..n {
            inst.add_node();
        }
        return (inst, Oid(0));
    }
    let mut targets: Vec<Oid> = Vec::new(); // multiset for preferential choice
    for i in 0..n {
        let o = inst.add_node();
        if i == 0 {
            targets.push(o);
            continue;
        }
        for _ in 0..out_links.min(i) {
            let to = if rng.random_range(0..100) < 70 {
                targets[rng.random_range(0..targets.len())]
            } else {
                Oid(rng.random_range(0..i) as u32)
            };
            let label = labels[rng.random_range(0..labels.len())];
            if inst.add_edge(o, label, to) {
                targets.push(to);
            }
        }
        targets.push(o);
    }
    // Make everything reachable from node 0 in the forward direction by
    // adding a spanning path of "next" edges (label 0).
    for i in 0..n - 1 {
        inst.add_edge(Oid(i as u32), labels[0], Oid(i as u32 + 1));
    }
    (inst, Oid(0))
}

/// A rooted site tree of the kind the paper's examples browse
/// (`CS-Department DB-group … Classes cs345`): `fanout^depth` leaves, each
/// internal edge labeled from `labels` cyclically, plus optional `up` edges
/// back to the root (the "Stanford-CS-Main" style constraint Σ*·home = ε
/// holds when `home_edges` is true).
pub fn site_tree(
    alphabet: &mut Alphabet,
    depth: usize,
    fanout: usize,
    home_edges: bool,
) -> (Instance, Oid, Vec<Symbol>) {
    let labels: Vec<Symbol> = (0..fanout)
        .map(|i| alphabet.intern(&format!("sec{i}")))
        .collect();
    let home = alphabet.intern("home");
    let mut inst = Instance::new();
    let root = inst.add_named_node("root");
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &node in &frontier {
            for &l in &labels {
                let child = inst.add_node();
                inst.add_edge(node, l, child);
                if home_edges {
                    inst.add_edge(child, home, root);
                }
                next.push(child);
            }
        }
        frontier = next;
    }
    let mut all = labels;
    all.push(home);
    (inst, root, all)
}

/// A simple directed cycle of length `n`, all edges labeled `label`.
pub fn cycle_graph(n: usize, label: Symbol) -> (Instance, Oid) {
    let mut inst = Instance::new();
    for _ in 0..n {
        inst.add_node();
    }
    for i in 0..n {
        inst.add_edge(Oid(i as u32), label, Oid(((i + 1) % n) as u32));
    }
    (inst, Oid(0))
}

/// A "site with cache" workload for the Section 3.2 experiments.
///
/// Builds a web-like graph, evaluates the *cached query* `q_cache` at the
/// source by brute word-following (bounded), then adds one `cache_label`
/// edge from the source to every answer. By construction the path equality
/// `cache_label = q_cache` then holds at the source, so a query processor
/// may substitute the single cache edge for the recursive query.
///
/// `cache_words` must enumerate `L(q_cache)` far enough to cover every
/// answer within the graph's diameter; callers obtain it from
/// `Nfa::enumerate_words`.
pub fn cached_site(
    rng: &mut StdRng,
    n: usize,
    out_links: usize,
    labels: &[Symbol],
    cache_label: Symbol,
    cache_words: &[Vec<Symbol>],
) -> (Instance, Oid) {
    let (mut inst, src) = web_graph(rng, n, out_links, labels);
    let mut answers: Vec<Oid> = Vec::new();
    for w in cache_words {
        for t in inst.word_targets(src, w) {
            if !answers.contains(&t) {
                answers.push(t);
            }
        }
    }
    for t in answers {
        inst.add_edge(src, cache_label, t);
    }
    (inst, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn fig2_shape() {
        let mut ab = Alphabet::new();
        let (inst, d, o1) = fig2_graph(&mut ab);
        assert_eq!(inst.num_nodes(), 4);
        assert_eq!(inst.num_edges(), 3);
        assert_eq!(inst.outdegree(d), 0);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        // ab*(o1) = {o2, o3}
        let o2 = inst.node_by_name("o2").unwrap();
        let o3 = inst.node_by_name("o3").unwrap();
        assert_eq!(inst.word_targets(o1, &[a]), vec![o2]);
        assert_eq!(inst.word_targets(o1, &[a, b]), vec![o3]);
        assert_eq!(inst.word_targets(o1, &[a, b, b]), vec![o2]);
    }

    #[test]
    fn random_graph_counts() {
        let mut ab = Alphabet::new();
        let labels: Vec<Symbol> = (0..3).map(|i| ab.intern(&format!("l{i}"))).collect();
        let (inst, src) = random_graph(&mut rng(), 50, 200, &labels);
        assert_eq!(inst.num_nodes(), 50);
        assert!(inst.num_edges() > 150, "got {}", inst.num_edges());
        assert_eq!(src, Oid(0));
    }

    #[test]
    fn web_graph_is_connected_from_source() {
        let mut ab = Alphabet::new();
        let labels: Vec<Symbol> = (0..2).map(|i| ab.intern(&format!("l{i}"))).collect();
        let (inst, src) = web_graph(&mut rng(), 40, 2, &labels);
        assert_eq!(inst.reachable_from(src).len(), 40);
    }

    #[test]
    fn web_graph_deterministic_per_seed() {
        let mut ab = Alphabet::new();
        let labels: Vec<Symbol> = (0..2).map(|i| ab.intern(&format!("l{i}"))).collect();
        let (i1, _) = web_graph(&mut StdRng::seed_from_u64(3), 30, 2, &labels);
        let (i2, _) = web_graph(&mut StdRng::seed_from_u64(3), 30, 2, &labels);
        let e1: Vec<_> = i1.edges().collect();
        let e2: Vec<_> = i2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn site_tree_home_edges_return_to_root() {
        let mut ab = Alphabet::new();
        let (inst, root, labels) = site_tree(&mut ab, 2, 2, true);
        let home = *labels.last().unwrap();
        // every non-root node has a home edge to root
        for o in inst.nodes() {
            if o != root && inst.outdegree(o) > 0 {
                assert!(inst
                    .out_edges(o)
                    .iter()
                    .any(|&(l, t)| l == home && t == root));
            }
        }
        // 1 + 2 + 4 nodes
        assert_eq!(inst.num_nodes(), 7);
    }

    #[test]
    fn cycle_wraps() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let (inst, src) = cycle_graph(5, a);
        let mut cur = vec![src];
        for _ in 0..5 {
            cur = inst.word_targets(cur[0], &[a]);
        }
        assert_eq!(cur, vec![src]);
    }

    #[test]
    fn cached_site_constraint_holds() {
        let mut ab = Alphabet::new();
        let labels: Vec<Symbol> = (0..2).map(|i| ab.intern(&format!("l{i}"))).collect();
        let cache = ab.intern("cache0");
        // cache the query l0.l1 (single word)
        let words = vec![vec![labels[0], labels[1]]];
        let (inst, src) = cached_site(&mut rng(), 30, 2, &labels, cache, &words);
        let via_cache = inst.word_targets(src, &[cache]);
        let direct = inst.word_targets(src, &[labels[0], labels[1]]);
        assert_eq!(via_cache, direct);
    }
    #[test]
    fn deterministic_graph_has_unique_labeled_out_edges() {
        use rand::SeedableRng;
        let mut ab = Alphabet::new();
        let labels = vec![ab.intern("a"), ab.intern("b")];
        let mut rng = StdRng::seed_from_u64(42);
        let (inst, src) = deterministic_graph(&mut rng, 30, &labels, 70);
        assert_eq!(src, Oid(0));
        for o in inst.nodes() {
            let mut seen: Vec<Symbol> = Vec::new();
            for &(l, _) in inst.out_edges(o) {
                assert!(!seen.contains(&l), "duplicate label at {o:?}");
                seen.push(l);
            }
        }
    }
}
