//! Possibly-infinite graph sources (Section 2.1 and Remark 2.1).
//!
//! The paper motivates *infinite* instances as an abstraction of the Web:
//! every object still has finite outdegree (a page references few pages),
//! but the set of objects may be unbounded, and queries that would require
//! exhaustive exploration are "penalized by a nonterminating computation".
//!
//! [`GraphSource`] abstracts over finite [`Instance`]s and lazily generated
//! infinite graphs: an evaluator only ever asks for the outgoing edges of
//! nodes it has already reached, which is exactly the browser-machine access
//! mode of [6, 7]. Node identities are opaque `u64`s chosen by the source.

use rpq_automata::Symbol;

use crate::instance::{Instance, Oid};

/// Node identity in a (possibly infinite) graph source.
pub type NodeId = u64;

/// A graph revealed only through outgoing edges — finite or infinite.
pub trait GraphSource {
    /// The outgoing edges of `node`. Must be finite (finite outdegree) and
    /// deterministic for a given node.
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)>;

    /// An optional display name for traces.
    fn node_label(&self, node: NodeId) -> String {
        format!("n{node}")
    }
}

impl GraphSource for Instance {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        Instance::out_edges(self, Oid(node as u32))
            .iter()
            .map(|&(l, t)| (l, t.0 as NodeId))
            .collect()
    }

    fn node_label(&self, node: NodeId) -> String {
        self.node_name(Oid(node as u32))
    }
}

/// An infinite `k`-ary tree: node `n` has children on each of the configured
/// labels. Evaluating `a*` from the root never terminates — the paper's
/// example of a query requiring exhaustive exploration — while bounded
/// queries such as `a.b` terminate after exploring finitely many nodes.
///
/// Node ids are the breadth-first numbering, so distinct nodes stay distinct
/// down to depth ~64/log₂(k+1); beyond that the arithmetic saturates (ids
/// collide at `u64::MAX`), which is far past any practical exploration
/// budget.
#[derive(Clone, Debug)]
pub struct InfiniteTree {
    /// Branch labels; child `i` of node `n` is `n * k + i + 1`.
    pub labels: Vec<Symbol>,
}

impl GraphSource for InfiniteTree {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        let k = self.labels.len() as NodeId;
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, node.saturating_mul(k).saturating_add(i as NodeId + 1)))
            .collect()
    }
}

/// An infinite "comb": a spine of `next`-labeled edges, each spine node also
/// carrying one `tooth`-labeled edge to a leaf. Queries like `next*.tooth`
/// reach infinitely many answers (eventually computable, never terminating);
/// `next.next.tooth` terminates.
#[derive(Clone, Debug)]
pub struct InfiniteComb {
    /// Label of the spine edges.
    pub next: Symbol,
    /// Label of the tooth edges.
    pub tooth: Symbol,
}

impl GraphSource for InfiniteComb {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        // Spine nodes are even, teeth odd.
        if node.is_multiple_of(2) {
            vec![(self.next, node + 2), (self.tooth, node + 1)]
        } else {
            Vec::new()
        }
    }
}

/// An eventually-cyclic line: `prefix_len` fresh nodes followed by a loop
/// back. Finite despite being defined procedurally; used to test that lazy
/// evaluation terminates when the reachable portion is finite.
#[derive(Clone, Debug)]
pub struct LassoLine {
    /// Label on every edge.
    pub label: Symbol,
    /// Nodes before the cycle closes.
    pub prefix_len: u64,
    /// Length of the terminal cycle.
    pub cycle_len: u64,
}

impl GraphSource for LassoLine {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        let last = self.prefix_len + self.cycle_len - 1;
        if node < last {
            vec![(self.label, node + 1)]
        } else if node == last {
            vec![(self.label, self.prefix_len)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Alphabet;

    #[test]
    fn instance_as_source() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut i = Instance::new();
        let x = i.add_named_node("x");
        let y = i.add_node();
        i.add_edge(x, a, y);
        let edges = GraphSource::out_edges(&i, x.0 as NodeId);
        assert_eq!(edges, vec![(a, y.0 as NodeId)]);
        assert_eq!(i.node_label(x.0 as NodeId), "x");
    }

    #[test]
    fn infinite_tree_children_are_distinct() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let t = InfiniteTree { labels: vec![a, b] };
        let e0 = t.out_edges(0);
        assert_eq!(e0.len(), 2);
        let kids: Vec<NodeId> = e0.iter().map(|&(_, n)| n).collect();
        let e1 = t.out_edges(kids[0]);
        let e2 = t.out_edges(kids[1]);
        let all: std::collections::HashSet<NodeId> =
            e1.iter().chain(e2.iter()).map(|&(_, n)| n).collect();
        assert_eq!(all.len(), 4, "grandchildren must not collide");
    }

    #[test]
    fn comb_teeth_are_leaves() {
        let mut ab = Alphabet::new();
        let n = ab.intern("next");
        let t = ab.intern("tooth");
        let comb = InfiniteComb { next: n, tooth: t };
        let e = comb.out_edges(0);
        assert_eq!(e.len(), 2);
        let tooth_node = e.iter().find(|&&(l, _)| l == t).unwrap().1;
        assert!(comb.out_edges(tooth_node).is_empty());
    }

    #[test]
    fn lasso_closes_cycle() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let l = LassoLine {
            label: a,
            prefix_len: 2,
            cycle_len: 3,
        };
        // nodes 0,1 prefix; 2,3,4 cycle; 4 -> 2
        assert_eq!(l.out_edges(4), vec![(a, 2)]);
        assert_eq!(l.out_edges(1), vec![(a, 2)]);
        // reachable set from 0 is finite
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![0u64];
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                for (_, t) in l.out_edges(x) {
                    stack.push(t);
                }
            }
        }
        assert_eq!(seen.len(), 5);
    }
}
