//! # rpq-graph
//!
//! The semistructured data model of Section 2.1: a database is an instance
//! of the relational schema `Ref(source: oid, label: label, destination:
//! oid)`, i.e. a labeled directed graph in which every object has finite
//! outdegree ("objects are small") but possibly unbounded indegree.
//!
//! * [`Instance`] — a finite labeled graph with adjacency storage, builders,
//!   reachability/distance utilities and DOT export. This is the *mutable
//!   build-time* form; its [`LabelStats`] are maintained incrementally on
//!   every mutation.
//! * [`CsrGraph`] — the immutable *query-time* form: label-indexed CSR
//!   adjacency (forward and reverse) with per-label statistics, built by
//!   `CsrGraph::from(&instance)`. Engines step `(state, node)` pairs via
//!   [`CsrGraph::out`] in time proportional to matching edges only.
//! * [`GraphView`] — the uniform read interface over snapshots (forward /
//!   reverse labeled steps, label groups, statistics, and a snapshot
//!   [`Epoch`]); the `rpq-core` evaluation paths are generic over it.
//! * [`DeltaGraph`] — the incremental snapshot: an immutable base
//!   [`CsrGraph`] plus per-label sorted add/tombstone logs, absorbing
//!   [`EdgeDelta`] batches in `O(batch)` instead of the `O(V + E)` rebuild,
//!   with [`DeltaGraph::compact`] folding the overlay into a fresh base.
//! * [`GraphSource`] — the lazy, possibly-infinite view (Remark 2.1) under
//!   which evaluators may only expand nodes they have reached; implemented
//!   by [`Instance`], [`CsrGraph`], [`DeltaGraph`], and by synthetic
//!   infinite graphs ([`InfiniteTree`], [`InfiniteComb`], [`LassoLine`]).
//! * [`bitset`] — dense bit-parallel frontiers ([`NodeBitset`],
//!   [`FrontierArena`], [`LaneMatrix`]) backing the batched multi-source
//!   engines in `rpq-core`.
//! * [`generators`] — seeded workloads, including the exact Figure 2 graph
//!   and the cached-site generator for the Section 3.2 experiments.

#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod instance;
pub mod source;
pub mod view;

pub use bitset::{FrontierArena, LaneMatrix, NodeBitset};
pub use csr::{CsrGraph, LabelStats};
pub use delta::{CompactionPolicy, DeltaGraph};
pub use instance::{Instance, InstanceBuilder, Oid};
pub use source::{GraphSource, InfiniteComb, InfiniteTree, LassoLine, NodeId};
pub use view::{EdgeDelta, Epoch, GraphView, ViewEdges, ViewGroups};
