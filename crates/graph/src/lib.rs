//! # rpq-graph
//!
//! The semistructured data model of Section 2.1: a database is an instance
//! of the relational schema `Ref(source: oid, label: label, destination:
//! oid)`, i.e. a labeled directed graph in which every object has finite
//! outdegree ("objects are small") but possibly unbounded indegree.
//!
//! * [`Instance`] — a finite labeled graph with adjacency storage, builders,
//!   reachability/distance utilities and DOT export. This is the *mutable
//!   build-time* form.
//! * [`CsrGraph`] — the immutable *query-time* form: label-indexed CSR
//!   adjacency (forward and reverse) with per-label statistics, built by
//!   `CsrGraph::from(&instance)`. Engines step `(state, node)` pairs via
//!   [`CsrGraph::out`] in time proportional to matching edges only.
//! * [`GraphSource`] — the lazy, possibly-infinite view (Remark 2.1) under
//!   which evaluators may only expand nodes they have reached; implemented
//!   by [`Instance`], [`CsrGraph`], and by synthetic infinite graphs
//!   ([`InfiniteTree`], [`InfiniteComb`], [`LassoLine`]).
//! * [`bitset`] — dense bit-parallel frontiers ([`NodeBitset`],
//!   [`FrontierArena`], [`LaneMatrix`]) backing the batched multi-source
//!   engines in `rpq-core`.
//! * [`generators`] — seeded workloads, including the exact Figure 2 graph
//!   and the cached-site generator for the Section 3.2 experiments.

#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod generators;
pub mod instance;
pub mod source;

pub use bitset::{FrontierArena, LaneMatrix, NodeBitset};
pub use csr::{CsrGraph, LabelStats};
pub use instance::{Instance, InstanceBuilder, Oid};
pub use source::{GraphSource, InfiniteComb, InfiniteTree, LassoLine, NodeId};
