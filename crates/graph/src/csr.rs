//! Label-indexed compressed-sparse-row snapshots of an [`Instance`].
//!
//! Every evaluation strategy of Section 2 steps a `(state, node)` pair by a
//! *specific* label: "which edges labeled `l` leave `v`?". Adjacency-list
//! storage answers that by scanning the whole out-edge list and filtering,
//! paying `outdegree(v)` per automaton transition. [`CsrGraph`] is the
//! immutable query-time form that makes the step proportional to *matching*
//! edges only: [`Instance`] stays the mutable builder, `CsrGraph::from`
//! freezes it for evaluation.
//!
//! # Layout
//!
//! We use **per-node rows sorted by `(Symbol, Oid)`** over one contiguous
//! CSR arena (`offsets` / `labels` / `targets`), with label lookup by binary
//! search within the row, rather than a per-label CSR (one full offset array
//! per label). Rationale:
//!
//! * all engines also iterate *whole* rows (ε-free NFAs with several
//!   transitions per state, the distributed protocol's per-edge quotients) —
//!   a per-label CSR would scatter one node's edges across `|Σ|` arenas and
//!   lose that locality;
//! * the label lookup is `O(log outdegree)` + a contiguous slice, which is
//!   within noise of a per-label CSR's `O(1)` for the "objects are small"
//!   regime the paper assumes (finite, small outdegree), while costing no
//!   `O(|Σ|·|V|)` offset memory on sparse label usage;
//! * rows sorted by `(Symbol, Oid)` give label *groups* for free
//!   ([`CsrGraph::out_groups`]), which the quotient engines and the
//!   distributed sites use to compute one transition per distinct label
//!   instead of one per edge.
//!
//! A **reverse** CSR (in-edges, same layout) supports backward traversal —
//! single-target evaluation, provenance walks, and the sink side of future
//! bidirectional searches. Per-label degree/frequency statistics
//! ([`LabelStats`]) are collected during the build and feed the optimizer's
//! cost model.

use rpq_automata::Symbol;
use serde::{Deserialize, Serialize};

use crate::instance::{Instance, Oid};
use crate::source::{GraphSource, NodeId};

/// Per-label frequency statistics.
///
/// `edge_count(l)` is the number of `Ref(_, l, _)` tuples; `source_count(l)`
/// the number of distinct objects with at least one outgoing `l`-edge. Their
/// ratio is the average `l`-fanout of nodes that have the label at all — the
/// selectivity number the optimizer's data-aware cost model consumes.
///
/// Statistics are maintained **incrementally**: [`Instance`] and
/// [`crate::DeltaGraph`] update them on every `add_edge`/delete, and
/// [`CsrGraph::from`] copies them from the instance rather than recounting
/// (debug builds assert the incremental counters against a recount).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStats {
    edge_counts: Vec<usize>,
    source_counts: Vec<usize>,
}

impl LabelStats {
    /// Number of label slots tracked (max label index + 1 over all edges).
    pub fn num_labels(&self) -> usize {
        self.edge_counts.len()
    }

    /// Number of edges carrying `label` (0 for labels never seen).
    pub fn edge_count(&self, label: Symbol) -> usize {
        self.edge_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Number of distinct source nodes with at least one `label`-edge.
    pub fn source_count(&self, label: Symbol) -> usize {
        self.source_counts.get(label.index()).copied().unwrap_or(0)
    }

    /// Average outgoing fanout of `label` among nodes that have it (0.0 for
    /// labels never seen).
    pub fn avg_fanout(&self, label: Symbol) -> f64 {
        let sources = self.source_count(label);
        if sources == 0 {
            0.0
        } else {
            self.edge_count(label) as f64 / sources as f64
        }
    }

    /// The most frequent label, if any edge exists.
    pub fn hottest(&self) -> Option<Symbol> {
        self.edge_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .filter(|&(_, c)| *c > 0)
            .map(|(i, _)| Symbol::from_index(i))
    }

    /// Iterate `(label, edge_count)` for labels with at least one edge.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.edge_counts
            .iter()
            .enumerate()
            .filter(|&(_, c)| *c > 0)
            .map(|(i, &c)| (Symbol::from_index(i), c))
    }

    /// Record one new `label` edge; `new_source` says its source had no
    /// `label` edge before. The incremental counterpart of the build-time
    /// count, used by `Instance::add_edge` and `DeltaGraph::add_edge`.
    pub(crate) fn note_added(&mut self, label: Symbol, new_source: bool) {
        if self.edge_counts.len() <= label.index() {
            self.edge_counts.resize(label.index() + 1, 0);
            self.source_counts.resize(label.index() + 1, 0);
        }
        self.edge_counts[label.index()] += 1;
        if new_source {
            self.source_counts[label.index()] += 1;
        }
    }

    /// Record one removed `label` edge; `last_of_source` says its source
    /// has no `label` edge left. Saturates on slots the counters never
    /// saw (possible only on instances rehydrated from pre-stats
    /// encodings without `normalize()` — the debug-build recount assert
    /// in `CsrGraph::from` still flags genuine maintenance bugs).
    pub(crate) fn note_removed(&mut self, label: Symbol, last_of_source: bool) {
        if let Some(c) = self.edge_counts.get_mut(label.index()) {
            *c = c.saturating_sub(1);
        }
        if last_of_source {
            if let Some(c) = self.source_counts.get_mut(label.index()) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Recount statistics from adjacency rows — the from-scratch reference
    /// the incremental counters are checked against in debug builds, and
    /// the fallback for rehydrated instances. Rows are normally sorted by
    /// `(Symbol, Oid)`; unsorted rows (older encodings) are sorted into a
    /// scratch copy first so distinct-source detection stays correct.
    pub(crate) fn recount<'a>(rows: impl Iterator<Item = &'a [(Symbol, Oid)]>) -> LabelStats {
        let mut stats = LabelStats::default();
        let mut scratch: Vec<(Symbol, Oid)> = Vec::new();
        for row in rows {
            let row: &[(Symbol, Oid)] = if row.is_sorted() {
                row
            } else {
                scratch.clear();
                scratch.extend_from_slice(row);
                scratch.sort_unstable();
                &scratch
            };
            let mut prev = None;
            for &(l, _) in row {
                stats.note_added(l, prev != Some(l));
                prev = Some(l);
            }
        }
        stats
    }

    /// Total edges accounted for across all labels — `CsrGraph::from`
    /// uses this as the cheap staleness probe for rehydrated instances.
    pub(crate) fn total_edges(&self) -> usize {
        self.edge_counts.iter().sum()
    }

    /// Semantic equality: the same per-label counts, ignoring trailing
    /// zero slots (incremental maintenance keeps a slot for every label
    /// ever seen; a recount only allocates slots for labels present now).
    pub fn agrees_with(&self, other: &LabelStats) -> bool {
        let slots = self.num_labels().max(other.num_labels());
        (0..slots).map(Symbol::from_index).all(|l| {
            self.edge_count(l) == other.edge_count(l)
                && self.source_count(l) == other.source_count(l)
        })
    }
}

/// An immutable, label-indexed snapshot of a finite graph: forward and
/// reverse CSR adjacency with per-node rows sorted by `(Symbol, Oid)`, plus
/// per-label statistics. See the module docs for the layout rationale.
///
/// Build one with [`CsrGraph::from`]; evaluate against it through the
/// `rpq_core::Engine` trait or the `*_csr` entry points.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `out_offsets[v]..out_offsets[v+1]` indexes v's row in the arenas.
    out_offsets: Vec<usize>,
    out_labels: Vec<Symbol>,
    out_targets: Vec<Oid>,
    /// Reverse adjacency: `in_sources` holds the *sources* of edges into v.
    in_offsets: Vec<usize>,
    in_labels: Vec<Symbol>,
    in_sources: Vec<Oid>,
    stats: LabelStats,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len().saturating_sub(1)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.num_nodes() as u32).map(Oid)
    }

    /// Outdegree of `v`.
    pub fn outdegree(&self, v: Oid) -> usize {
        self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]
    }

    /// Indegree of `v`.
    pub fn indegree(&self, v: Oid) -> usize {
        self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]
    }

    /// Per-label statistics collected at build time.
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// The targets of `v`'s edges labeled `label` — a contiguous slice, so
    /// the per-(state, node) step costs only the matching edges.
    pub fn out(&self, v: Oid, label: Symbol) -> &[Oid] {
        Self::labeled_range(
            &self.out_labels,
            &self.out_targets,
            &self.out_offsets,
            v,
            label,
        )
    }

    /// The *sources* of edges labeled `label` arriving at `v` (the reverse
    /// adjacency — the transpose of [`CsrGraph::out`]).
    pub fn rev(&self, v: Oid, label: Symbol) -> &[Oid] {
        Self::labeled_range(
            &self.in_labels,
            &self.in_sources,
            &self.in_offsets,
            v,
            label,
        )
    }

    fn labeled_range<'a>(
        labels: &[Symbol],
        endpoints: &'a [Oid],
        offsets: &[usize],
        v: Oid,
        label: Symbol,
    ) -> &'a [Oid] {
        let (start, end) = (offsets[v.index()], offsets[v.index() + 1]);
        let row = &labels[start..end];
        let lo = row.partition_point(|&l| l < label);
        let hi = row.partition_point(|&l| l <= label);
        &endpoints[start + lo..start + hi]
    }

    /// All out-edges of `v` as `(label, target)` pairs, sorted by
    /// `(Symbol, Oid)`.
    pub fn out_pairs(&self, v: Oid) -> impl Iterator<Item = (Symbol, Oid)> + '_ {
        let (start, end) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        self.out_labels[start..end]
            .iter()
            .zip(&self.out_targets[start..end])
            .map(|(&l, &t)| (l, t))
    }

    /// All in-edges of `v` as `(label, source)` pairs, sorted by
    /// `(Symbol, Oid)`.
    pub fn rev_pairs(&self, v: Oid) -> impl Iterator<Item = (Symbol, Oid)> + '_ {
        let (start, end) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        self.in_labels[start..end]
            .iter()
            .zip(&self.in_sources[start..end])
            .map(|(&l, &t)| (l, t))
    }

    /// `v`'s out-row grouped by label: yields `(label, targets)` once per
    /// distinct label. Lets callers pay label-dependent work (a quotient, a
    /// derivative, a memo lookup) once per *label* instead of once per edge.
    pub fn out_groups(&self, v: Oid) -> LabelGroups<'_> {
        let (start, end) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        LabelGroups {
            labels: &self.out_labels[start..end],
            endpoints: &self.out_targets[start..end],
        }
    }

    /// `v`'s *in*-row grouped by label: yields `(label, sources)` once per
    /// distinct label — the transpose of [`CsrGraph::out_groups`], used by
    /// the dense *pull* step of the hybrid product BFS to probe all labels
    /// arriving at a candidate node in one sorted walk.
    pub fn rev_groups(&self, v: Oid) -> LabelGroups<'_> {
        let (start, end) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        LabelGroups {
            labels: &self.in_labels[start..end],
            endpoints: &self.in_sources[start..end],
        }
    }

    /// Iterate over all edges as `(source, label, target)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (Oid, Symbol, Oid)> + '_ {
        self.nodes()
            .flat_map(move |v| self.out_pairs(v).map(move |(l, t)| (v, l, t)))
    }

    /// Follow `word` from `source`, collecting every endpoint (set
    /// semantics) — `w(o, I)` over the label index, with a seen-bitmap
    /// instead of the builder's linear dedup.
    pub fn word_targets(&self, source: Oid, word: &[Symbol]) -> Vec<Oid> {
        let mut cur = vec![source];
        let mut seen = vec![false; self.num_nodes()];
        for &sym in word {
            let mut next: Vec<Oid> = Vec::new();
            for &x in &cur {
                for &t in self.out(x, sym) {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        next.push(t);
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            for &t in &next {
                seen[t.index()] = false;
            }
            cur = next;
        }
        cur.sort_unstable();
        cur
    }
}

/// Iterator over `(label, targets)` groups of one row — see
/// [`CsrGraph::out_groups`].
pub struct LabelGroups<'a> {
    labels: &'a [Symbol],
    endpoints: &'a [Oid],
}

impl<'a> Iterator for LabelGroups<'a> {
    type Item = (Symbol, &'a [Oid]);

    fn next(&mut self) -> Option<Self::Item> {
        let &label = self.labels.first()?;
        let len = self.labels.partition_point(|&l| l <= label);
        let (group, rest) = self.endpoints.split_at(len);
        self.labels = &self.labels[len..];
        self.endpoints = rest;
        Some((label, group))
    }
}

impl From<&Instance> for CsrGraph {
    fn from(instance: &Instance) -> CsrGraph {
        let n = instance.num_nodes();
        let m = instance.num_edges();
        // Statistics are maintained incrementally by the instance's
        // mutation methods — snapshotting no longer recounts them. The
        // same defensive posture as the row re-sort below applies to
        // instances rehydrated from encodings that predate the stats
        // field (derived `Deserialize` performs no validation): when the
        // incremental totals don't even cover the edge count, fall back
        // to a recount instead of freezing stale statistics. On
        // maintained instances the recount stays as a debug-build
        // equivalence check.
        let stats = if instance.stats().total_edges() == m {
            let stats = instance.stats().clone();
            debug_assert!(
                stats.agrees_with(&LabelStats::recount(
                    instance.nodes().map(|v| instance.out_edges(v))
                )),
                "incremental LabelStats diverged from recount"
            );
            stats
        } else {
            LabelStats::recount(instance.nodes().map(|v| instance.out_edges(v)))
        };

        // Forward: Instance rows are maintained sorted by (Symbol, Oid);
        // re-sort defensively (e.g. instances deserialized from older
        // encodings), which is O(1) on already-sorted rows.
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_labels = Vec::with_capacity(m);
        let mut out_targets = Vec::with_capacity(m);
        let mut scratch: Vec<(Symbol, Oid)> = Vec::new();
        out_offsets.push(0);
        for v in instance.nodes() {
            let row = instance.out_edges(v);
            let row: &[(Symbol, Oid)] = if row.is_sorted() {
                row
            } else {
                scratch.clear();
                scratch.extend_from_slice(row);
                scratch.sort_unstable();
                &scratch
            };
            for &(l, t) in row {
                out_labels.push(l);
                out_targets.push(t);
            }
            out_offsets.push(out_labels.len());
        }

        // Reverse: counting-sort the transposed edges straight into the
        // arenas (no per-node buckets), then sort each row in place by
        // (Symbol, Oid) through one reused scratch buffer.
        let mut in_offsets = vec![0usize; n + 1];
        for &t in &out_targets {
            in_offsets[t.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_labels = vec![Symbol::from_index(0); m];
        let mut in_sources = vec![Oid(0); m];
        let mut cursor = in_offsets.clone();
        for v in instance.nodes() {
            let (start, end) = (out_offsets[v.index()], out_offsets[v.index() + 1]);
            for i in start..end {
                let slot = cursor[out_targets[i].index()];
                cursor[out_targets[i].index()] += 1;
                in_labels[slot] = out_labels[i];
                in_sources[slot] = v;
            }
        }
        for v in 0..n {
            let (start, end) = (in_offsets[v], in_offsets[v + 1]);
            if end - start > 1 {
                scratch.clear();
                scratch.extend(
                    in_labels[start..end]
                        .iter()
                        .copied()
                        .zip(in_sources[start..end].iter().copied()),
                );
                scratch.sort_unstable();
                for (i, &(l, s)) in scratch.iter().enumerate() {
                    in_labels[start + i] = l;
                    in_sources[start + i] = s;
                }
            }
        }

        CsrGraph {
            out_offsets,
            out_labels,
            out_targets,
            in_offsets,
            in_labels,
            in_sources,
            stats,
        }
    }
}

/// A `CsrGraph` is also a [`GraphSource`], so lazy/streaming evaluators run
/// over it unchanged.
impl GraphSource for CsrGraph {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        self.out_pairs(Oid(node as u32))
            .map(|(l, t)| (l, t.0 as NodeId))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use rpq_automata::Alphabet;

    fn sample() -> (Alphabet, Instance) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("s", "a", "y");
        b.edge("s", "b", "x");
        b.edge("x", "b", "y");
        b.edge("y", "b", "x");
        b.edge("y", "a", "s");
        let (inst, _) = b.finish();
        (ab, inst)
    }

    #[test]
    fn counts_round_trip() {
        let (_, inst) = sample();
        let csr = CsrGraph::from(&inst);
        assert_eq!(csr.num_nodes(), inst.num_nodes());
        assert_eq!(csr.num_edges(), inst.num_edges());
        assert_eq!(csr.edges().count(), inst.num_edges());
    }

    #[test]
    fn out_slices_match_filtered_scan() {
        let (ab, inst) = sample();
        let csr = CsrGraph::from(&inst);
        for v in inst.nodes() {
            for sym in ab.symbols() {
                let mut scanned: Vec<Oid> = inst
                    .out_edges(v)
                    .iter()
                    .filter(|&&(l, _)| l == sym)
                    .map(|&(_, t)| t)
                    .collect();
                scanned.sort_unstable();
                assert_eq!(csr.out(v, sym), &scanned[..], "{v:?} {sym:?}");
            }
        }
    }

    #[test]
    fn reverse_is_transpose() {
        let (ab, inst) = sample();
        let csr = CsrGraph::from(&inst);
        for u in csr.nodes() {
            for sym in ab.symbols() {
                for &v in csr.out(u, sym) {
                    assert!(csr.rev(v, sym).contains(&u), "{u:?}-{sym:?}->{v:?}");
                }
            }
        }
        let forward: usize = csr.nodes().map(|v| csr.outdegree(v)).sum();
        let backward: usize = csr.nodes().map(|v| csr.indegree(v)).sum();
        assert_eq!(forward, backward);
    }

    #[test]
    fn stats_count_labels() {
        let (ab, inst) = sample();
        let csr = CsrGraph::from(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        assert_eq!(csr.stats().edge_count(a), 3);
        assert_eq!(csr.stats().edge_count(b), 3);
        assert_eq!(csr.stats().source_count(a), 2); // s, y
        assert_eq!(csr.stats().source_count(b), 3); // s, x, y
        assert!(csr.stats().avg_fanout(a) > csr.stats().avg_fanout(b));
        let total: usize = csr.stats().iter().map(|(_, c)| c).sum();
        assert_eq!(total, csr.num_edges());
    }

    #[test]
    fn groups_partition_the_row() {
        let (ab, inst) = sample();
        let csr = CsrGraph::from(&inst);
        let s = inst.node_by_name("s").unwrap();
        let groups: Vec<(Symbol, Vec<Oid>)> =
            csr.out_groups(s).map(|(l, ts)| (l, ts.to_vec())).collect();
        assert_eq!(groups.len(), 2);
        let a = ab.get("a").unwrap();
        assert_eq!(groups[0].0, a);
        assert_eq!(groups[0].1.len(), 2);
        let regrouped: usize = groups.iter().map(|(_, ts)| ts.len()).sum();
        assert_eq!(regrouped, csr.outdegree(s));
    }

    #[test]
    fn word_targets_match_instance() {
        let (ab, inst) = sample();
        let csr = CsrGraph::from(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let s = inst.node_by_name("s").unwrap();
        for word in [vec![], vec![a], vec![a, b], vec![b, b, b], vec![a, a]] {
            assert_eq!(csr.word_targets(s, &word), inst.word_targets(s, &word));
        }
    }

    #[test]
    fn stale_rehydrated_stats_fall_back_to_a_recount() {
        // an instance "rehydrated" from a pre-stats encoding: rows
        // populated, incremental counters empty — snapshotting must
        // recount instead of freezing (or asserting on) the stale zeros,
        // and mutations must not panic on the missing counter slots
        let (ab, mut inst) = sample();
        inst.clear_stats_for_test();
        let a = ab.get("a").unwrap();
        let s = inst.node_by_name("s").unwrap();
        let x = inst.node_by_name("x").unwrap();
        assert!(inst.remove_edge(s, a, x), "stale stats must not panic");
        assert!(inst.add_edge(s, a, x));
        let csr = CsrGraph::from(&inst);
        assert_eq!(csr.stats().edge_count(a), 3);
        assert_eq!(csr.stats().source_count(a), 2);
    }

    #[test]
    fn empty_graph_is_fine() {
        let inst = Instance::new();
        let csr = CsrGraph::from(&inst);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.stats().num_labels(), 0);
        assert_eq!(csr.stats().hottest(), None);
    }
}
