//! [`DeltaGraph`] — an incremental snapshot: immutable base CSR plus a
//! mutation overlay.
//!
//! A production evaluator under write traffic cannot afford the `O(V + E)`
//! rebuild that freezing an [`crate::Instance`] into a [`CsrGraph`] costs on
//! every edge batch. `DeltaGraph` keeps the last compacted [`CsrGraph`] as
//! an immutable **base** and absorbs mutations into **per-label sorted
//! logs**: an add log of new edges and a tombstone log marking deleted base
//! edges. Each log is held in both orientations — sorted by `(source,
//! target)` for [`DeltaGraph::out`] and by `(target, source)` for
//! [`DeltaGraph::rev`] — so a `(node, label)` step is still one binary
//! search plus a contiguous range, merged lazily with the base row by
//! [`crate::view::OverlayEdges`].
//!
//! The overlay is **exact**: evaluation over the delta form agrees with a
//! from-scratch rebuild on every query (property-tested in
//! `tests/incremental_snapshots.rs`). [`LabelStats`] are maintained
//! incrementally on every mutation, with a debug-build equivalence check
//! against a recount at [`DeltaGraph::compact`] time.
//!
//! [`DeltaGraph::compact`] folds the logs into a fresh base CSR and starts
//! a new [`Epoch`] lineage: plans memoized against the old base are
//! invalidated (fresh base = fresh fingerprint), while small-delta epochs
//! *within* one lineage let `rpq_optimizer::PlannedEngine` reuse compiled
//! plans (see its epoch-aware memo).

use std::sync::atomic::{AtomicU64, Ordering};

use rpq_automata::Symbol;

use crate::csr::{CsrGraph, LabelStats};
use crate::instance::{Instance, Oid};
use crate::source::{GraphSource, NodeId};
use crate::view::{EdgeDelta, Epoch, GraphView, OverlayEdges, ViewEdges, ViewGroups};

/// Process-unique lineage ids for delta bases (0 is reserved for
/// standalone [`CsrGraph`]s — see [`Epoch::STATIC`]).
static NEXT_BASE_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_base_epoch() -> u64 {
    NEXT_BASE_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// One label's mutation log, in both orientations. `fwd` is sorted by
/// `(source, target)`, `rev` by `(target, source)` — mirrors of each other.
#[derive(Clone, Debug, Default)]
struct LabelLog {
    fwd: Vec<(Oid, Oid)>,
    rev: Vec<(Oid, Oid)>,
}

impl LabelLog {
    fn insert(&mut self, from: Oid, to: Oid) -> bool {
        match self.fwd.binary_search(&(from, to)) {
            Ok(_) => false,
            Err(pos) => {
                self.fwd.insert(pos, (from, to));
                let rpos = self.rev.binary_search(&(to, from)).unwrap_err();
                self.rev.insert(rpos, (to, from));
                true
            }
        }
    }

    fn remove(&mut self, from: Oid, to: Oid) -> bool {
        match self.fwd.binary_search(&(from, to)) {
            Ok(pos) => {
                let rpos = self.rev.binary_search(&(to, from));
                debug_assert!(rpos.is_ok(), "rev log mirrors fwd log");
                match rpos {
                    Ok(rpos) => {
                        self.fwd.remove(pos);
                        self.rev.remove(rpos);
                        true
                    }
                    // Impossible under the mirror invariant; if it ever
                    // happens, leave both logs untouched so forward and
                    // backward evaluation keep seeing the same edges.
                    Err(_) => false,
                }
            }
            Err(_) => false,
        }
    }

    fn contains(&self, from: Oid, to: Oid) -> bool {
        self.fwd.binary_search(&(from, to)).is_ok()
    }

    /// The contiguous `(key, endpoint)` range whose key is `v`.
    fn range(pairs: &[(Oid, Oid)], v: Oid) -> &[(Oid, Oid)] {
        let lo = pairs.partition_point(|&(k, _)| k < v);
        let hi = pairs.partition_point(|&(k, _)| k <= v);
        &pairs[lo..hi]
    }

    fn len(&self) -> usize {
        self.fwd.len()
    }
}

/// An incremental snapshot: immutable base [`CsrGraph`] plus per-label
/// sorted add/tombstone logs. See the module docs for the design; build one
/// with [`DeltaGraph::new`] (or [`DeltaGraph::from_instance`]), mutate with
/// [`DeltaGraph::add_edge`] / [`DeltaGraph::delete_edge`] /
/// [`DeltaGraph::apply_delta`], and fold the overlay down with
/// [`DeltaGraph::compact`].
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: CsrGraph,
    /// Add logs, indexed by label. Invariant: disjoint from the base (an
    /// edge present in the base is never also in the add log).
    adds: Vec<LabelLog>,
    /// Tombstone logs, indexed by label. Invariant: a subset of the base.
    dels: Vec<LabelLog>,
    /// Nodes created after the base was frozen (they have no base rows).
    extra_nodes: usize,
    /// Effective per-label statistics, maintained incrementally.
    stats: LabelStats,
    /// Effective edge count (base − tombstones + adds).
    edges: usize,
    base_epoch: u64,
    version: u64,
}

impl DeltaGraph {
    /// Wrap an immutable base snapshot, starting a fresh epoch lineage.
    pub fn new(base: CsrGraph) -> DeltaGraph {
        let stats = base.stats().clone();
        let edges = base.num_edges();
        DeltaGraph {
            base,
            adds: Vec::new(),
            dels: Vec::new(),
            extra_nodes: 0,
            stats,
            edges,
            base_epoch: fresh_base_epoch(),
            version: 0,
        }
    }

    /// Snapshot `instance` into a base CSR and wrap it.
    pub fn from_instance(instance: &Instance) -> DeltaGraph {
        DeltaGraph::new(CsrGraph::from(instance))
    }

    /// The current immutable base snapshot (excludes the overlay).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of nodes (base nodes plus nodes added since).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.extra_nodes
    }

    /// Number of effective edges (base − tombstones + adds).
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Effective per-label statistics, maintained incrementally on every
    /// mutation (never recomputed from scratch at read time).
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// Snapshot identity: the base lineage id plus the number of mutation
    /// calls absorbed since the base was installed.
    pub fn epoch(&self) -> Epoch {
        Epoch {
            base: self.base_epoch,
            version: self.version,
        }
    }

    /// Total log length (adds + tombstones) — the overlay debt a
    /// [`DeltaGraph::compact`] would fold down. Useful for compaction
    /// policies (`log_len() > base.num_edges() / k`).
    pub fn log_len(&self) -> usize {
        self.adds.iter().map(LabelLog::len).sum::<usize>()
            + self.dels.iter().map(LabelLog::len).sum::<usize>()
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.num_nodes() as u32).map(Oid)
    }

    /// Add a node (it has no base row; edges live purely in the logs until
    /// the next compaction).
    pub fn add_node(&mut self) -> Oid {
        self.extra_nodes += 1;
        self.version += 1;
        Oid((self.num_nodes() - 1) as u32)
    }

    fn base_out(&self, v: Oid, label: Symbol) -> &[Oid] {
        if v.index() < self.base.num_nodes() {
            self.base.out(v, label)
        } else {
            &[]
        }
    }

    fn base_rev(&self, v: Oid, label: Symbol) -> &[Oid] {
        if v.index() < self.base.num_nodes() {
            self.base.rev(v, label)
        } else {
            &[]
        }
    }

    fn log(logs: &[LabelLog], label: Symbol) -> Option<&LabelLog> {
        logs.get(label.index())
    }

    fn log_mut(logs: &mut Vec<LabelLog>, label: Symbol) -> &mut LabelLog {
        if logs.len() <= label.index() {
            logs.resize_with(label.index() + 1, LabelLog::default);
        }
        &mut logs[label.index()]
    }

    /// The targets of `v`'s edges labeled `label`, ascending — the base row
    /// with tombstones skipped, merged with the add log.
    pub fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        let base = self.base_out(v, label);
        let dels = Self::log(&self.dels, label).map_or(&[][..], |l| LabelLog::range(&l.fwd, v));
        let adds = Self::log(&self.adds, label).map_or(&[][..], |l| LabelLog::range(&l.fwd, v));
        if dels.is_empty() && adds.is_empty() {
            return ViewEdges::Slice(base);
        }
        ViewEdges::Overlay(OverlayEdges {
            base,
            dels,
            adds,
            len: base.len() - dels.len() + adds.len(),
        })
    }

    /// The sources of edges labeled `label` arriving at `v`, ascending —
    /// the transpose of [`DeltaGraph::out`], served from the reverse log
    /// orientation.
    pub fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        let base = self.base_rev(v, label);
        let dels = Self::log(&self.dels, label).map_or(&[][..], |l| LabelLog::range(&l.rev, v));
        let adds = Self::log(&self.adds, label).map_or(&[][..], |l| LabelLog::range(&l.rev, v));
        if dels.is_empty() && adds.is_empty() {
            return ViewEdges::Slice(base);
        }
        ViewEdges::Overlay(OverlayEdges {
            base,
            dels,
            adds,
            len: base.len() - dels.len() + adds.len(),
        })
    }

    /// `v`'s out-row grouped by label (each distinct label once, non-empty
    /// groups only, labels ascending) — the overlay counterpart of
    /// [`CsrGraph::out_groups`]. Costs one [`DeltaGraph::out`] probe per
    /// label slot tracked by the view (alphabets are small in this
    /// workspace, so this stays within noise of the CSR group walk).
    pub fn out_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Delta(DeltaGroups {
            graph: self,
            v,
            next_label: 0,
            num_labels: self.num_label_slots(),
            reverse: false,
        })
    }

    /// `v`'s *in*-row grouped by label — the transpose of
    /// [`DeltaGraph::out_groups`], served from the reverse log orientation
    /// via one [`DeltaGraph::rev`] probe per label slot. Feeds the dense
    /// pull step of the hybrid product BFS over mutated snapshots.
    pub fn rev_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Delta(DeltaGroups {
            graph: self,
            v,
            next_label: 0,
            num_labels: self.num_label_slots(),
            reverse: true,
        })
    }

    fn num_label_slots(&self) -> usize {
        self.stats
            .num_labels()
            .max(self.base.stats().num_labels())
            .max(self.adds.len())
    }

    /// Does the effective view contain `Ref(from, label, to)`?
    pub fn has_edge(&self, from: Oid, label: Symbol, to: Oid) -> bool {
        let in_base = self.base_out(from, label).binary_search(&to).is_ok();
        if in_base {
            !Self::log(&self.dels, label).is_some_and(|l| l.contains(from, to))
        } else {
            Self::log(&self.adds, label).is_some_and(|l| l.contains(from, to))
        }
    }

    /// Add `Ref(from, label, to)`. Returns true if the edge was new (it was
    /// neither live in the base nor in the add log); resurrecting a
    /// tombstoned base edge removes the tombstone rather than growing the
    /// add log. Each call is one epoch step.
    pub fn add_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        assert!(
            from.index() < self.num_nodes() && to.index() < self.num_nodes(),
            "edge endpoints must be existing nodes"
        );
        self.version += 1;
        let in_base = self.base_out(from, label).binary_search(&to).is_ok();
        let grew = if in_base {
            // live already, or tombstoned (then resurrect)
            Self::log_mut(&mut self.dels, label).remove(from, to)
        } else {
            let had_label = !self.out(from, label).is_empty();
            let inserted = Self::log_mut(&mut self.adds, label).insert(from, to);
            if inserted {
                self.stats.note_added(label, !had_label);
                self.edges += 1;
            }
            return inserted;
        };
        if grew {
            // the resurrected edge re-enters the stats and edge count
            let had_label = self.out(from, label).len() > 1;
            self.stats.note_added(label, !had_label);
            self.edges += 1;
        }
        grew
    }

    /// Delete `Ref(from, label, to)`. Returns true if the edge was live
    /// (deleting an add-log edge drops it from the log; deleting a base
    /// edge tombstones it). Each call is one epoch step.
    pub fn delete_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        self.version += 1;
        if from.index() >= self.num_nodes() {
            return false;
        }
        let removed = if let Some(l) = Self::log(&self.adds, label) {
            l.contains(from, to) && Self::log_mut(&mut self.adds, label).remove(from, to)
        } else {
            false
        };
        let removed = removed
            || (self.base_out(from, label).binary_search(&to).is_ok()
                && Self::log_mut(&mut self.dels, label).insert(from, to));
        if removed {
            self.edges -= 1;
            let has_label = !self.out(from, label).is_empty();
            self.stats.note_removed(label, !has_label);
        }
        removed
    }

    /// Apply a mutation batch as **one** epoch step (individual
    /// [`DeltaGraph::add_edge`] / [`DeltaGraph::delete_edge`] calls each
    /// step the epoch on their own). Returns the number of mutations that
    /// took effect (duplicates and misses are ignored, set semantics).
    pub fn apply_delta(&mut self, delta: &EdgeDelta) -> usize {
        let before = self.version;
        let mut applied = 0;
        for &(f, l, t) in &delta.dels {
            applied += usize::from(self.delete_edge(f, l, t));
        }
        for &(f, l, t) in &delta.adds {
            applied += usize::from(self.add_edge(f, l, t));
        }
        self.version = before + 1;
        applied
    }

    /// Iterate over all effective edges as `(source, label, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (Oid, Symbol, Oid)> + '_ {
        self.nodes().flat_map(move |v| {
            self.out_groups(v)
                .flat_map(move |(l, ts)| ts.map(move |t| (v, l, t)))
        })
    }

    /// Fold the overlay into a fresh base CSR (the `O(V + E)` pass the
    /// overlay defers), clear the logs, and start a **new epoch lineage**:
    /// plans memoized against the old base are invalidated. In debug
    /// builds, asserts the incrementally maintained [`LabelStats`] agree
    /// with the rebuilt base's recount.
    pub fn compact(&mut self) {
        let n = self.num_nodes();
        let mut inst = Instance::new();
        for _ in 0..n {
            inst.add_node();
        }
        // out_groups yields labels and targets ascending, so every
        // add_edge below appends at its row's end — O(E) overall.
        for v in self.nodes() {
            for (l, ts) in self.out_groups(v) {
                for t in ts {
                    inst.add_edge(v, l, t);
                }
            }
        }
        let base = CsrGraph::from(&inst);
        debug_assert!(
            self.stats.agrees_with(base.stats()),
            "incremental LabelStats diverged from compaction recount:\n{:?}\nvs\n{:?}",
            self.stats,
            base.stats()
        );
        self.base = base;
        self.adds.clear();
        self.dels.clear();
        self.extra_nodes = 0;
        self.edges = self.base.num_edges();
        self.base_epoch = fresh_base_epoch();
        self.version = 0;
    }
}

impl GraphView for DeltaGraph {
    fn num_nodes(&self) -> usize {
        DeltaGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        DeltaGraph::num_edges(self)
    }

    fn stats(&self) -> &LabelStats {
        DeltaGraph::stats(self)
    }

    fn epoch(&self) -> Epoch {
        DeltaGraph::epoch(self)
    }

    fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        DeltaGraph::out(self, v, label)
    }

    fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        DeltaGraph::rev(self, v, label)
    }

    fn out_groups(&self, v: Oid) -> ViewGroups<'_> {
        DeltaGraph::out_groups(self, v)
    }

    fn rev_groups(&self, v: Oid) -> ViewGroups<'_> {
        DeltaGraph::rev_groups(self, v)
    }
}

/// A `DeltaGraph` is also a [`GraphSource`], so the streaming evaluator
/// (Remark 2.1) pulls from the overlay unchanged.
impl GraphSource for DeltaGraph {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        self.out_groups(Oid(node as u32))
            .flat_map(|(l, ts)| ts.map(move |t| (l, t.0 as NodeId)))
            .collect()
    }
}

/// Iterator behind [`DeltaGraph::out_groups`] / [`DeltaGraph::rev_groups`]:
/// walks label slots in ascending order, yielding each label whose overlay
/// row segment (in the requested orientation) is non-empty.
pub struct DeltaGroups<'a> {
    graph: &'a DeltaGraph,
    v: Oid,
    next_label: usize,
    num_labels: usize,
    /// False = out-row (targets), true = in-row (sources).
    reverse: bool,
}

impl<'a> Iterator for DeltaGroups<'a> {
    type Item = (Symbol, ViewEdges<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next_label < self.num_labels {
            let label = Symbol::from_index(self.next_label);
            self.next_label += 1;
            let edges = if self.reverse {
                self.graph.rev(self.v, label)
            } else {
                self.graph.out(self.v, label)
            };
            if !edges.is_empty() {
                return Some((label, edges));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use rpq_automata::Alphabet;

    fn sample() -> (Alphabet, Instance) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("s", "a", "y");
        b.edge("s", "b", "x");
        b.edge("x", "b", "y");
        b.edge("y", "b", "x");
        b.edge("y", "a", "s");
        let (inst, _) = b.finish();
        (ab, inst)
    }

    fn collect(edges: ViewEdges<'_>) -> Vec<Oid> {
        edges.collect()
    }

    #[test]
    fn fresh_delta_matches_base() {
        let (ab, inst) = sample();
        let dg = DeltaGraph::from_instance(&inst);
        let csr = CsrGraph::from(&inst);
        assert_eq!(dg.num_nodes(), csr.num_nodes());
        assert_eq!(dg.num_edges(), csr.num_edges());
        for v in csr.nodes() {
            for sym in ab.symbols() {
                assert_eq!(collect(dg.out(v, sym)), csr.out(v, sym));
                assert_eq!(collect(dg.rev(v, sym)), csr.rev(v, sym));
            }
        }
        assert!(dg.stats().agrees_with(csr.stats()));
    }

    #[test]
    fn adds_and_deletes_overlay_the_base() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let (s, x, y) = (Oid(0), Oid(1), Oid(2));

        assert!(dg.delete_edge(s, a, x));
        assert!(!dg.delete_edge(s, a, x), "double delete is a no-op");
        assert!(dg.add_edge(x, a, y));
        assert!(!dg.add_edge(x, a, y), "duplicate add is a no-op");
        assert_eq!(dg.num_edges(), 6);

        assert_eq!(collect(dg.out(s, a)), vec![y]);
        assert_eq!(collect(dg.out(x, a)), vec![y]);
        assert!(dg.rev(x, a).is_empty());
        assert_eq!(collect(dg.rev(y, a)), vec![s, x]);
        assert!(!dg.has_edge(s, a, x));
        assert!(dg.has_edge(x, a, y));

        // resurrect the tombstoned base edge
        assert!(dg.add_edge(s, a, x));
        assert_eq!(collect(dg.out(s, a)), vec![x, y]);
        assert_eq!(dg.num_edges(), 7);

        // delete an add-log edge
        assert!(dg.delete_edge(x, a, y));
        assert!(!dg.has_edge(x, a, y));
        let _ = b;
    }

    #[test]
    fn out_groups_partition_the_overlay_row() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let s = Oid(0);
        dg.delete_edge(s, a, Oid(1));
        dg.add_edge(s, b, Oid(2));
        let groups: Vec<(Symbol, Vec<Oid>)> =
            dg.out_groups(s).map(|(l, ts)| (l, ts.collect())).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (a, vec![Oid(2)]));
        assert_eq!(groups[1], (b, vec![Oid(1), Oid(2)]));
    }

    #[test]
    fn rev_groups_partition_the_transposed_overlay_row() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let (s, x, y) = (Oid(0), Oid(1), Oid(2));
        dg.delete_edge(s, a, x);
        dg.add_edge(y, a, x);
        let groups: Vec<(Symbol, Vec<Oid>)> =
            dg.rev_groups(x).map(|(l, ss)| (l, ss.collect())).collect();
        assert_eq!(groups, vec![(a, vec![y]), (b, vec![s, y])]);
    }

    #[test]
    fn new_nodes_live_in_the_logs_until_compaction() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let fresh = dg.add_node();
        assert_eq!(fresh.index(), dg.num_nodes() - 1);
        assert!(dg.add_edge(Oid(0), a, fresh));
        assert!(dg.add_edge(fresh, a, Oid(0)));
        assert_eq!(collect(dg.out(fresh, a)), vec![Oid(0)]);
        assert!(collect(dg.rev(fresh, a)).contains(&Oid(0)));
        dg.compact();
        assert_eq!(dg.base().num_nodes(), dg.num_nodes());
        assert_eq!(collect(dg.out(fresh, a)), vec![Oid(0)]);
    }

    #[test]
    fn compact_preserves_the_view_and_restarts_the_lineage() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let before = dg.epoch();
        dg.delete_edge(Oid(0), a, Oid(1));
        dg.add_edge(Oid(1), a, Oid(2));
        assert_eq!(dg.epoch().base, before.base);
        assert!(dg.epoch().version > before.version);
        assert!(dg.log_len() > 0);

        let edges_before: Vec<_> = dg.edges().collect();
        dg.compact();
        assert_eq!(dg.log_len(), 0);
        assert_ne!(dg.epoch().base, before.base, "compaction = fresh lineage");
        assert_eq!(dg.epoch().version, 0);
        let edges_after: Vec<_> = dg.edges().collect();
        assert_eq!(edges_before, edges_after);
        assert_eq!(dg.num_edges(), dg.base().num_edges());
    }

    #[test]
    fn apply_delta_is_one_epoch_step() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let mut delta = EdgeDelta::new();
        delta.add(Oid(1), a, Oid(2)).del(Oid(0), a, Oid(1));
        let v0 = dg.epoch().version;
        let applied = dg.apply_delta(&delta);
        assert_eq!(applied, 2);
        assert_eq!(dg.epoch().version, v0 + 1);
        // inverse restores the original edge set
        dg.apply_delta(&delta.inverse());
        let csr = CsrGraph::from(&inst);
        assert_eq!(dg.num_edges(), csr.num_edges());
        for v in csr.nodes() {
            for sym in ab.symbols() {
                assert_eq!(collect(dg.out(v, sym)), csr.out(v, sym), "{v:?} {sym:?}");
            }
        }
    }

    #[test]
    fn stats_track_mutations_incrementally() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        assert_eq!(dg.stats().edge_count(a), 3);
        assert_eq!(dg.stats().source_count(a), 2); // s, y
        dg.delete_edge(Oid(0), a, Oid(1)); // s -a-> x; s still has s -a-> y
        assert_eq!(dg.stats().edge_count(a), 2);
        assert_eq!(dg.stats().source_count(a), 2);
        dg.delete_edge(Oid(0), a, Oid(2)); // s loses its last a-edge
        assert_eq!(dg.stats().source_count(a), 1);
        dg.add_edge(Oid(1), a, Oid(0)); // x gains its first a-edge
        assert_eq!(dg.stats().edge_count(a), 2);
        assert_eq!(dg.stats().source_count(a), 2);
        dg.compact(); // debug build: asserts agreement with the recount
        assert_eq!(dg.stats().edge_count(a), 2);
    }
}
