//! [`DeltaGraph`] — an incremental snapshot: immutable base CSR plus a
//! mutation overlay.
//!
//! A production evaluator under write traffic cannot afford the `O(V + E)`
//! rebuild that freezing an [`crate::Instance`] into a [`CsrGraph`] costs on
//! every edge batch. `DeltaGraph` keeps the last compacted [`CsrGraph`] as
//! an immutable **base** and absorbs mutations into **per-label sorted
//! logs**: an add log of new edges and a tombstone log marking deleted base
//! edges. Each log is held in both orientations — sorted by `(source,
//! target)` for [`DeltaGraph::out`] and by `(target, source)` for
//! [`DeltaGraph::rev`] — so a `(node, label)` step is still one binary
//! search plus a contiguous range, merged lazily with the base row by
//! [`crate::view::OverlayEdges`].
//!
//! The overlay is **exact**: evaluation over the delta form agrees with a
//! from-scratch rebuild on every query (property-tested in
//! `tests/incremental_snapshots.rs`). [`LabelStats`] are maintained
//! incrementally on every mutation, with a debug-build equivalence check
//! against a recount at [`DeltaGraph::compact`] time.
//!
//! [`DeltaGraph::compact`] folds the logs into a fresh base CSR and starts
//! a new [`Epoch`] lineage: plans memoized against the old base are
//! invalidated (fresh base = fresh fingerprint), while small-delta epochs
//! *within* one lineage let `rpq_optimizer::PlannedEngine` reuse compiled
//! plans (see its epoch-aware memo).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rpq_automata::Symbol;

use crate::csr::{CsrGraph, LabelStats};
use crate::instance::{Instance, Oid};
use crate::source::{GraphSource, NodeId};
use crate::view::{EdgeDelta, Epoch, GraphView, OverlayEdges, ViewEdges, ViewGroups};

/// Process-unique lineage ids for delta bases (0 is reserved for
/// standalone [`CsrGraph`]s — see [`Epoch::STATIC`]).
static NEXT_BASE_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_base_epoch() -> u64 {
    NEXT_BASE_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// One label's mutation log, in both orientations. `fwd` is sorted by
/// `(source, target)`, `rev` by `(target, source)` — mirrors of each other.
#[derive(Clone, Debug, Default)]
struct LabelLog {
    fwd: Vec<(Oid, Oid)>,
    rev: Vec<(Oid, Oid)>,
}

impl LabelLog {
    fn insert(&mut self, from: Oid, to: Oid) -> bool {
        match self.fwd.binary_search(&(from, to)) {
            Ok(_) => false,
            Err(pos) => {
                self.fwd.insert(pos, (from, to));
                let rpos = self.rev.binary_search(&(to, from)).unwrap_err();
                self.rev.insert(rpos, (to, from));
                true
            }
        }
    }

    fn remove(&mut self, from: Oid, to: Oid) -> bool {
        match self.fwd.binary_search(&(from, to)) {
            Ok(pos) => {
                let rpos = self.rev.binary_search(&(to, from));
                debug_assert!(rpos.is_ok(), "rev log mirrors fwd log");
                match rpos {
                    Ok(rpos) => {
                        self.fwd.remove(pos);
                        self.rev.remove(rpos);
                        true
                    }
                    // Impossible under the mirror invariant; if it ever
                    // happens, leave both logs untouched so forward and
                    // backward evaluation keep seeing the same edges.
                    Err(_) => false,
                }
            }
            Err(_) => false,
        }
    }

    fn contains(&self, from: Oid, to: Oid) -> bool {
        self.fwd.binary_search(&(from, to)).is_ok()
    }

    /// The contiguous `(key, endpoint)` range whose key is `v`.
    fn range(pairs: &[(Oid, Oid)], v: Oid) -> &[(Oid, Oid)] {
        let lo = pairs.partition_point(|&(k, _)| k < v);
        let hi = pairs.partition_point(|&(k, _)| k <= v);
        &pairs[lo..hi]
    }

    fn len(&self) -> usize {
        self.fwd.len()
    }
}

/// When should a writer fold a [`DeltaGraph`]'s overlay into a fresh base?
///
/// Compaction trades a one-off `O(V + E)` rebuild (plus plan-memo
/// invalidation in `rpq-optimizer`, since a fresh base is a fresh lineage)
/// against the per-read cost of overlay merges. The policy triggers on
/// either of two measured signals, gated by a minimum log size so tiny
/// graphs don't thrash:
///
/// * **log/base edge ratio** — total log length (adds + tombstones) as a
///   fraction of base edges ([`DeltaGraph::log_len`]);
/// * **overlay overhead** — how many `(node, label)` rows pay the sorted
///   merge instead of a raw slice ([`DeltaGraph::overlay_rows`]), as a
///   fraction of the node count.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once `log_len() > max_log_ratio * base.num_edges()`.
    pub max_log_ratio: f64,
    /// Never compact while `log_len() < min_log_len` (anti-thrash floor).
    pub min_log_len: usize,
    /// Compact once `overlay_rows() > max_overlay_row_fraction *
    /// num_nodes()` — the measured read-amplification trigger.
    pub max_overlay_row_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            max_log_ratio: 0.25,
            min_log_len: 64,
            max_overlay_row_fraction: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts (for tests and manual control).
    pub const NEVER: CompactionPolicy = CompactionPolicy {
        max_log_ratio: f64::INFINITY,
        min_log_len: usize::MAX,
        max_overlay_row_fraction: f64::INFINITY,
    };
}

/// An incremental snapshot: immutable base [`CsrGraph`] plus per-label
/// sorted add/tombstone logs. See the module docs for the design; build one
/// with [`DeltaGraph::new`] (or [`DeltaGraph::from_instance`]), mutate with
/// [`DeltaGraph::add_edge`] / [`DeltaGraph::delete_edge`] /
/// [`DeltaGraph::apply_delta`], and fold the overlay down with
/// [`DeltaGraph::compact`].
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    /// The immutable base, shared (`Arc`) so cloning a `DeltaGraph` for a
    /// pinned reader snapshot costs `O(log)` rather than `O(V + E)`, and so
    /// [`DeltaGraph::compact`] is copy-on-write: it installs a *fresh*
    /// `Arc`, leaving every previously cloned snapshot reading its old base
    /// undisturbed.
    base: Arc<CsrGraph>,
    /// Add logs, indexed by label. Invariant: disjoint from the base (an
    /// edge present in the base is never also in the add log).
    adds: Vec<LabelLog>,
    /// Tombstone logs, indexed by label. Invariant: a subset of the base.
    dels: Vec<LabelLog>,
    /// Nodes created after the base was frozen (they have no base rows).
    extra_nodes: usize,
    /// Effective per-label statistics, maintained incrementally.
    stats: LabelStats,
    /// Effective edge count (base − tombstones + adds).
    edges: usize,
    base_epoch: u64,
    version: u64,
}

impl DeltaGraph {
    /// Wrap an immutable base snapshot, starting a fresh epoch lineage.
    pub fn new(base: CsrGraph) -> DeltaGraph {
        DeltaGraph::from_shared(Arc::new(base))
    }

    /// Wrap an already-shared base snapshot (no copy), starting a fresh
    /// epoch lineage.
    pub fn from_shared(base: Arc<CsrGraph>) -> DeltaGraph {
        let stats = base.stats().clone();
        let edges = base.num_edges();
        DeltaGraph {
            base,
            adds: Vec::new(),
            dels: Vec::new(),
            extra_nodes: 0,
            stats,
            edges,
            base_epoch: fresh_base_epoch(),
            version: 0,
        }
    }

    /// Snapshot `instance` into a base CSR and wrap it.
    pub fn from_instance(instance: &Instance) -> DeltaGraph {
        DeltaGraph::new(CsrGraph::from(instance))
    }

    /// The current immutable base snapshot (excludes the overlay).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Do `self` and `other` share the same physical base arena? Clones
    /// share until one side compacts (copy-on-write); a pinned snapshot
    /// therefore keeps serving its old base after the writer's
    /// [`DeltaGraph::compact`].
    pub fn shares_base_with(&self, other: &DeltaGraph) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }

    /// Number of nodes (base nodes plus nodes added since).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.extra_nodes
    }

    /// Number of effective edges (base − tombstones + adds).
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Effective per-label statistics, maintained incrementally on every
    /// mutation (never recomputed from scratch at read time).
    pub fn stats(&self) -> &LabelStats {
        &self.stats
    }

    /// Snapshot identity: the base lineage id plus the number of mutation
    /// calls absorbed since the base was installed.
    pub fn epoch(&self) -> Epoch {
        Epoch {
            base: self.base_epoch,
            version: self.version,
        }
    }

    /// Total log length (adds + tombstones) — the overlay debt a
    /// [`DeltaGraph::compact`] would fold down. Useful for compaction
    /// policies (`log_len() > base.num_edges() / k`).
    pub fn log_len(&self) -> usize {
        self.adds.iter().map(LabelLog::len).sum::<usize>()
            + self.dels.iter().map(LabelLog::len).sum::<usize>()
    }

    /// Measured overlay overhead: the number of `(node, label)` rows —
    /// counting both orientations — that currently pay the sorted-merge
    /// path ([`crate::view::OverlayEdges`]) instead of a raw base slice.
    /// Every such row costs two binary searches per probe on the read side,
    /// so this is the read-amplification half of a [`CompactionPolicy`].
    pub fn overlay_rows(&self) -> usize {
        fn distinct_union_keys(a: &[(Oid, Oid)], b: &[(Oid, Oid)]) -> usize {
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            loop {
                let key = match (a.get(i), b.get(j)) {
                    (Some(&(ka, _)), Some(&(kb, _))) => ka.min(kb),
                    (Some(&(ka, _)), None) => ka,
                    (None, Some(&(kb, _))) => kb,
                    (None, None) => break,
                };
                while i < a.len() && a[i].0 == key {
                    i += 1;
                }
                while j < b.len() && b[j].0 == key {
                    j += 1;
                }
                n += 1;
            }
            n
        }
        let slots = self.adds.len().max(self.dels.len());
        let mut rows = 0;
        for slot in 0..slots {
            let adds = self.adds.get(slot);
            let dels = self.dels.get(slot);
            let a_fwd = adds.map_or(&[][..], |l| &l.fwd);
            let d_fwd = dels.map_or(&[][..], |l| &l.fwd);
            let a_rev = adds.map_or(&[][..], |l| &l.rev);
            let d_rev = dels.map_or(&[][..], |l| &l.rev);
            rows += distinct_union_keys(a_fwd, d_fwd) + distinct_union_keys(a_rev, d_rev);
        }
        rows
    }

    /// Has the overlay grown past `policy`'s thresholds, so that the next
    /// write boundary should fold it down? Readers never call this —
    /// compaction is a writer-side decision; pinned snapshot clones keep
    /// serving their old base regardless (see [`DeltaGraph::compact`]).
    pub fn should_compact(&self, policy: &CompactionPolicy) -> bool {
        let log = self.log_len();
        if log < policy.min_log_len {
            return false;
        }
        let base_edges = self.base.num_edges().max(1) as f64;
        if log as f64 > policy.max_log_ratio * base_edges {
            return true;
        }
        let rows = self.overlay_rows() as f64;
        rows > policy.max_overlay_row_fraction * self.num_nodes().max(1) as f64
    }

    /// Compact if [`DeltaGraph::should_compact`] says so; returns whether a
    /// compaction (and hence a lineage restart) happened.
    pub fn maybe_compact(&mut self, policy: &CompactionPolicy) -> bool {
        if self.should_compact(policy) {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.num_nodes() as u32).map(Oid)
    }

    /// Add a node (it has no base row; edges live purely in the logs until
    /// the next compaction).
    pub fn add_node(&mut self) -> Oid {
        self.extra_nodes += 1;
        self.version += 1;
        Oid((self.num_nodes() - 1) as u32)
    }

    fn base_out(&self, v: Oid, label: Symbol) -> &[Oid] {
        if v.index() < self.base.num_nodes() {
            self.base.out(v, label)
        } else {
            &[]
        }
    }

    fn base_rev(&self, v: Oid, label: Symbol) -> &[Oid] {
        if v.index() < self.base.num_nodes() {
            self.base.rev(v, label)
        } else {
            &[]
        }
    }

    fn log(logs: &[LabelLog], label: Symbol) -> Option<&LabelLog> {
        logs.get(label.index())
    }

    fn log_mut(logs: &mut Vec<LabelLog>, label: Symbol) -> &mut LabelLog {
        if logs.len() <= label.index() {
            logs.resize_with(label.index() + 1, LabelLog::default);
        }
        &mut logs[label.index()]
    }

    /// The targets of `v`'s edges labeled `label`, ascending — the base row
    /// with tombstones skipped, merged with the add log.
    pub fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        let base = self.base_out(v, label);
        let dels = Self::log(&self.dels, label).map_or(&[][..], |l| LabelLog::range(&l.fwd, v));
        let adds = Self::log(&self.adds, label).map_or(&[][..], |l| LabelLog::range(&l.fwd, v));
        if dels.is_empty() && adds.is_empty() {
            return ViewEdges::Slice(base);
        }
        ViewEdges::Overlay(OverlayEdges {
            base,
            dels,
            adds,
            len: base.len() - dels.len() + adds.len(),
        })
    }

    /// The sources of edges labeled `label` arriving at `v`, ascending —
    /// the transpose of [`DeltaGraph::out`], served from the reverse log
    /// orientation.
    pub fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        let base = self.base_rev(v, label);
        let dels = Self::log(&self.dels, label).map_or(&[][..], |l| LabelLog::range(&l.rev, v));
        let adds = Self::log(&self.adds, label).map_or(&[][..], |l| LabelLog::range(&l.rev, v));
        if dels.is_empty() && adds.is_empty() {
            return ViewEdges::Slice(base);
        }
        ViewEdges::Overlay(OverlayEdges {
            base,
            dels,
            adds,
            len: base.len() - dels.len() + adds.len(),
        })
    }

    /// `v`'s out-row grouped by label (each distinct label once, non-empty
    /// groups only, labels ascending) — the overlay counterpart of
    /// [`CsrGraph::out_groups`]. Costs one [`DeltaGraph::out`] probe per
    /// label slot tracked by the view (alphabets are small in this
    /// workspace, so this stays within noise of the CSR group walk).
    pub fn out_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Delta(DeltaGroups {
            graph: self,
            v,
            next_label: 0,
            num_labels: self.num_label_slots(),
            reverse: false,
        })
    }

    /// `v`'s *in*-row grouped by label — the transpose of
    /// [`DeltaGraph::out_groups`], served from the reverse log orientation
    /// via one [`DeltaGraph::rev`] probe per label slot. Feeds the dense
    /// pull step of the hybrid product BFS over mutated snapshots.
    pub fn rev_groups(&self, v: Oid) -> ViewGroups<'_> {
        ViewGroups::Delta(DeltaGroups {
            graph: self,
            v,
            next_label: 0,
            num_labels: self.num_label_slots(),
            reverse: true,
        })
    }

    fn num_label_slots(&self) -> usize {
        self.stats
            .num_labels()
            .max(self.base.stats().num_labels())
            .max(self.adds.len())
    }

    /// Does the effective view contain `Ref(from, label, to)`?
    pub fn has_edge(&self, from: Oid, label: Symbol, to: Oid) -> bool {
        let in_base = self.base_out(from, label).binary_search(&to).is_ok();
        if in_base {
            !Self::log(&self.dels, label).is_some_and(|l| l.contains(from, to))
        } else {
            Self::log(&self.adds, label).is_some_and(|l| l.contains(from, to))
        }
    }

    /// Add `Ref(from, label, to)`. Returns true if the edge was new (it was
    /// neither live in the base nor in the add log); resurrecting a
    /// tombstoned base edge removes the tombstone rather than growing the
    /// add log. Each call is one epoch step.
    pub fn add_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        assert!(
            from.index() < self.num_nodes() && to.index() < self.num_nodes(),
            "edge endpoints must be existing nodes"
        );
        self.version += 1;
        let in_base = self.base_out(from, label).binary_search(&to).is_ok();
        let grew = if in_base {
            // live already, or tombstoned (then resurrect)
            Self::log_mut(&mut self.dels, label).remove(from, to)
        } else {
            let had_label = !self.out(from, label).is_empty();
            let inserted = Self::log_mut(&mut self.adds, label).insert(from, to);
            if inserted {
                self.stats.note_added(label, !had_label);
                self.edges += 1;
            }
            return inserted;
        };
        if grew {
            // the resurrected edge re-enters the stats and edge count
            let had_label = self.out(from, label).len() > 1;
            self.stats.note_added(label, !had_label);
            self.edges += 1;
        }
        grew
    }

    /// Delete `Ref(from, label, to)`. Returns true if the edge was live
    /// (deleting an add-log edge drops it from the log; deleting a base
    /// edge tombstones it). Each call is one epoch step.
    pub fn delete_edge(&mut self, from: Oid, label: Symbol, to: Oid) -> bool {
        self.version += 1;
        if from.index() >= self.num_nodes() {
            return false;
        }
        let removed = if let Some(l) = Self::log(&self.adds, label) {
            l.contains(from, to) && Self::log_mut(&mut self.adds, label).remove(from, to)
        } else {
            false
        };
        let removed = removed
            || (self.base_out(from, label).binary_search(&to).is_ok()
                && Self::log_mut(&mut self.dels, label).insert(from, to));
        if removed {
            self.edges -= 1;
            let has_label = !self.out(from, label).is_empty();
            self.stats.note_removed(label, !has_label);
        }
        removed
    }

    /// Apply a mutation batch as **one** epoch step (individual
    /// [`DeltaGraph::add_edge`] / [`DeltaGraph::delete_edge`] calls each
    /// step the epoch on their own). Returns the number of mutations that
    /// took effect (duplicates and misses are ignored, set semantics).
    pub fn apply_delta(&mut self, delta: &EdgeDelta) -> usize {
        let before = self.version;
        let mut applied = 0;
        for &(f, l, t) in &delta.dels {
            applied += usize::from(self.delete_edge(f, l, t));
        }
        for &(f, l, t) in &delta.adds {
            applied += usize::from(self.add_edge(f, l, t));
        }
        self.version = before + 1;
        applied
    }

    /// Iterate over all effective edges as `(source, label, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (Oid, Symbol, Oid)> + '_ {
        self.nodes().flat_map(move |v| {
            self.out_groups(v)
                .flat_map(move |(l, ts)| ts.map(move |t| (v, l, t)))
        })
    }

    /// Fold the overlay into a fresh base CSR (the `O(V + E)` pass the
    /// overlay defers), clear the logs, and start a **new epoch lineage**:
    /// plans memoized against the old base are invalidated. In debug
    /// builds, asserts the incrementally maintained [`LabelStats`] agree
    /// with the rebuilt base's recount.
    ///
    /// Compaction is **copy-on-write**: the rebuilt base is installed as a
    /// fresh `Arc`, so `DeltaGraph` clones taken before the call (pinned
    /// reader snapshots) keep the old base arena alive and finish their
    /// traversals undisturbed — no reader is ever blocked or invalidated by
    /// a writer-side compaction.
    pub fn compact(&mut self) {
        let n = self.num_nodes();
        let mut inst = Instance::new();
        for _ in 0..n {
            inst.add_node();
        }
        // out_groups yields labels and targets ascending, so every
        // add_edge below appends at its row's end — O(E) overall.
        for v in self.nodes() {
            for (l, ts) in self.out_groups(v) {
                for t in ts {
                    inst.add_edge(v, l, t);
                }
            }
        }
        let base = CsrGraph::from(&inst);
        debug_assert!(
            self.stats.agrees_with(base.stats()),
            "incremental LabelStats diverged from compaction recount:\n{:?}\nvs\n{:?}",
            self.stats,
            base.stats()
        );
        self.base = Arc::new(base);
        self.adds.clear();
        self.dels.clear();
        self.extra_nodes = 0;
        self.edges = self.base.num_edges();
        self.base_epoch = fresh_base_epoch();
        self.version = 0;
    }
}

impl GraphView for DeltaGraph {
    fn num_nodes(&self) -> usize {
        DeltaGraph::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        DeltaGraph::num_edges(self)
    }

    fn stats(&self) -> &LabelStats {
        DeltaGraph::stats(self)
    }

    fn epoch(&self) -> Epoch {
        DeltaGraph::epoch(self)
    }

    fn out(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        DeltaGraph::out(self, v, label)
    }

    fn rev(&self, v: Oid, label: Symbol) -> ViewEdges<'_> {
        DeltaGraph::rev(self, v, label)
    }

    fn out_groups(&self, v: Oid) -> ViewGroups<'_> {
        DeltaGraph::out_groups(self, v)
    }

    fn rev_groups(&self, v: Oid) -> ViewGroups<'_> {
        DeltaGraph::rev_groups(self, v)
    }
}

/// A `DeltaGraph` is also a [`GraphSource`], so the streaming evaluator
/// (Remark 2.1) pulls from the overlay unchanged.
impl GraphSource for DeltaGraph {
    fn out_edges(&self, node: NodeId) -> Vec<(Symbol, NodeId)> {
        self.out_groups(Oid(node as u32))
            .flat_map(|(l, ts)| ts.map(move |t| (l, t.0 as NodeId)))
            .collect()
    }
}

/// Iterator behind [`DeltaGraph::out_groups`] / [`DeltaGraph::rev_groups`]:
/// walks label slots in ascending order, yielding each label whose overlay
/// row segment (in the requested orientation) is non-empty.
pub struct DeltaGroups<'a> {
    graph: &'a DeltaGraph,
    v: Oid,
    next_label: usize,
    num_labels: usize,
    /// False = out-row (targets), true = in-row (sources).
    reverse: bool,
}

impl<'a> Iterator for DeltaGroups<'a> {
    type Item = (Symbol, ViewEdges<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next_label < self.num_labels {
            let label = Symbol::from_index(self.next_label);
            self.next_label += 1;
            let edges = if self.reverse {
                self.graph.rev(self.v, label)
            } else {
                self.graph.out(self.v, label)
            };
            if !edges.is_empty() {
                return Some((label, edges));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use rpq_automata::Alphabet;

    fn sample() -> (Alphabet, Instance) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        b.edge("s", "a", "x");
        b.edge("s", "a", "y");
        b.edge("s", "b", "x");
        b.edge("x", "b", "y");
        b.edge("y", "b", "x");
        b.edge("y", "a", "s");
        let (inst, _) = b.finish();
        (ab, inst)
    }

    fn collect(edges: ViewEdges<'_>) -> Vec<Oid> {
        edges.collect()
    }

    #[test]
    fn fresh_delta_matches_base() {
        let (ab, inst) = sample();
        let dg = DeltaGraph::from_instance(&inst);
        let csr = CsrGraph::from(&inst);
        assert_eq!(dg.num_nodes(), csr.num_nodes());
        assert_eq!(dg.num_edges(), csr.num_edges());
        for v in csr.nodes() {
            for sym in ab.symbols() {
                assert_eq!(collect(dg.out(v, sym)), csr.out(v, sym));
                assert_eq!(collect(dg.rev(v, sym)), csr.rev(v, sym));
            }
        }
        assert!(dg.stats().agrees_with(csr.stats()));
    }

    #[test]
    fn adds_and_deletes_overlay_the_base() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let (s, x, y) = (Oid(0), Oid(1), Oid(2));

        assert!(dg.delete_edge(s, a, x));
        assert!(!dg.delete_edge(s, a, x), "double delete is a no-op");
        assert!(dg.add_edge(x, a, y));
        assert!(!dg.add_edge(x, a, y), "duplicate add is a no-op");
        assert_eq!(dg.num_edges(), 6);

        assert_eq!(collect(dg.out(s, a)), vec![y]);
        assert_eq!(collect(dg.out(x, a)), vec![y]);
        assert!(dg.rev(x, a).is_empty());
        assert_eq!(collect(dg.rev(y, a)), vec![s, x]);
        assert!(!dg.has_edge(s, a, x));
        assert!(dg.has_edge(x, a, y));

        // resurrect the tombstoned base edge
        assert!(dg.add_edge(s, a, x));
        assert_eq!(collect(dg.out(s, a)), vec![x, y]);
        assert_eq!(dg.num_edges(), 7);

        // delete an add-log edge
        assert!(dg.delete_edge(x, a, y));
        assert!(!dg.has_edge(x, a, y));
        let _ = b;
    }

    #[test]
    fn out_groups_partition_the_overlay_row() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let s = Oid(0);
        dg.delete_edge(s, a, Oid(1));
        dg.add_edge(s, b, Oid(2));
        let groups: Vec<(Symbol, Vec<Oid>)> =
            dg.out_groups(s).map(|(l, ts)| (l, ts.collect())).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (a, vec![Oid(2)]));
        assert_eq!(groups[1], (b, vec![Oid(1), Oid(2)]));
    }

    #[test]
    fn rev_groups_partition_the_transposed_overlay_row() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let (s, x, y) = (Oid(0), Oid(1), Oid(2));
        dg.delete_edge(s, a, x);
        dg.add_edge(y, a, x);
        let groups: Vec<(Symbol, Vec<Oid>)> =
            dg.rev_groups(x).map(|(l, ss)| (l, ss.collect())).collect();
        assert_eq!(groups, vec![(a, vec![y]), (b, vec![s, y])]);
    }

    #[test]
    fn new_nodes_live_in_the_logs_until_compaction() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let fresh = dg.add_node();
        assert_eq!(fresh.index(), dg.num_nodes() - 1);
        assert!(dg.add_edge(Oid(0), a, fresh));
        assert!(dg.add_edge(fresh, a, Oid(0)));
        assert_eq!(collect(dg.out(fresh, a)), vec![Oid(0)]);
        assert!(collect(dg.rev(fresh, a)).contains(&Oid(0)));
        dg.compact();
        assert_eq!(dg.base().num_nodes(), dg.num_nodes());
        assert_eq!(collect(dg.out(fresh, a)), vec![Oid(0)]);
    }

    #[test]
    fn compact_preserves_the_view_and_restarts_the_lineage() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let before = dg.epoch();
        dg.delete_edge(Oid(0), a, Oid(1));
        dg.add_edge(Oid(1), a, Oid(2));
        assert_eq!(dg.epoch().base, before.base);
        assert!(dg.epoch().version > before.version);
        assert!(dg.log_len() > 0);

        let edges_before: Vec<_> = dg.edges().collect();
        dg.compact();
        assert_eq!(dg.log_len(), 0);
        assert_ne!(dg.epoch().base, before.base, "compaction = fresh lineage");
        assert_eq!(dg.epoch().version, 0);
        let edges_after: Vec<_> = dg.edges().collect();
        assert_eq!(edges_before, edges_after);
        assert_eq!(dg.num_edges(), dg.base().num_edges());
    }

    #[test]
    fn apply_delta_is_one_epoch_step() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let mut delta = EdgeDelta::new();
        delta.add(Oid(1), a, Oid(2)).del(Oid(0), a, Oid(1));
        let v0 = dg.epoch().version;
        let applied = dg.apply_delta(&delta);
        assert_eq!(applied, 2);
        assert_eq!(dg.epoch().version, v0 + 1);
        // inverse restores the original edge set
        dg.apply_delta(&delta.inverse());
        let csr = CsrGraph::from(&inst);
        assert_eq!(dg.num_edges(), csr.num_edges());
        for v in csr.nodes() {
            for sym in ab.symbols() {
                assert_eq!(collect(dg.out(v, sym)), csr.out(v, sym), "{v:?} {sym:?}");
            }
        }
    }

    #[test]
    fn compaction_is_copy_on_write_for_pinned_clones() {
        let (ab, inst) = sample();
        let mut writer = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        writer.delete_edge(Oid(0), a, Oid(1));
        let pinned = writer.clone(); // a reader's snapshot, O(log) to take
        assert!(pinned.shares_base_with(&writer));
        let pinned_epoch = pinned.epoch();
        let pinned_edges: Vec<_> = pinned.edges().collect();

        writer.add_edge(Oid(1), a, Oid(2));
        writer.compact();
        assert!(
            !pinned.shares_base_with(&writer),
            "compact installs a fresh base arc"
        );
        // the pinned snapshot is byte-for-byte undisturbed
        assert_eq!(pinned.epoch(), pinned_epoch);
        assert_eq!(pinned.edges().collect::<Vec<_>>(), pinned_edges);
        assert!(!pinned.has_edge(Oid(1), a, Oid(2)));
    }

    #[test]
    fn compaction_policy_triggers_on_ratio_and_row_fraction() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        let ratio_only = CompactionPolicy {
            max_log_ratio: 0.4,
            min_log_len: 2,
            max_overlay_row_fraction: f64::INFINITY,
        };
        assert!(!dg.should_compact(&ratio_only), "clean overlay never folds");
        dg.delete_edge(Oid(0), a, Oid(1));
        assert!(
            !dg.should_compact(&ratio_only),
            "below the anti-thrash floor"
        );
        dg.add_edge(Oid(1), a, Oid(0));
        dg.add_edge(Oid(2), a, Oid(1));
        // log_len = 3 > 0.4 * 6 base edges, and >= min_log_len
        assert!(dg.should_compact(&ratio_only));
        assert!(!dg.should_compact(&CompactionPolicy::NEVER));

        let rows_only = CompactionPolicy {
            max_log_ratio: f64::INFINITY,
            min_log_len: 2,
            max_overlay_row_fraction: 0.5,
        };
        // 3 mutations touch > 0.5 * 3 nodes worth of (node, label) rows
        assert!(dg.overlay_rows() > 1);
        assert!(dg.should_compact(&rows_only));

        assert!(dg.maybe_compact(&ratio_only));
        assert_eq!(dg.log_len(), 0);
        assert!(!dg.maybe_compact(&ratio_only), "nothing left to fold");
    }

    #[test]
    fn stats_track_mutations_incrementally() {
        let (ab, inst) = sample();
        let mut dg = DeltaGraph::from_instance(&inst);
        let a = ab.get("a").unwrap();
        assert_eq!(dg.stats().edge_count(a), 3);
        assert_eq!(dg.stats().source_count(a), 2); // s, y
        dg.delete_edge(Oid(0), a, Oid(1)); // s -a-> x; s still has s -a-> y
        assert_eq!(dg.stats().edge_count(a), 2);
        assert_eq!(dg.stats().source_count(a), 2);
        dg.delete_edge(Oid(0), a, Oid(2)); // s loses its last a-edge
        assert_eq!(dg.stats().source_count(a), 1);
        dg.add_edge(Oid(1), a, Oid(0)); // x gains its first a-edge
        assert_eq!(dg.stats().edge_count(a), 2);
        assert_eq!(dg.stats().source_count(a), 2);
        dg.compact(); // debug build: asserts agreement with the recount
        assert_eq!(dg.stats().edge_count(a), 2);
    }
}
