//! Sound algebraic simplification of regular expressions.
//!
//! The paper's Section 5 notes that even classical regular-expression
//! equivalence has no obvious axiomatization (citing Salomaa \[29\]) and that
//! rewrite rules "of practical use in simplifying path queries" are a goal of
//! the constraint machinery. This module provides the constraint-free layer:
//! a terminating, shrinking-only rewriter built from sound identities of the
//! algebra of regular events, plus an optional "deep" mode that round-trips
//! through the minimal DFA and keeps whichever expression is smaller.
//!
//! Every rule is an equivalence of regular expressions — no rule depends on
//! constraints — so `L(simplify(r)) = L(r)` unconditionally (property-tested
//! against [`crate::ops::regex_equivalent`]). The optimizer uses this to
//! normalize rewrite candidates before costing them; smaller expressions
//! also directly shrink the quotient sets shipped by the distributed
//! protocol.
//!
//! Identities applied (beyond the smart-constructor normal form):
//!
//! | rule | identity |
//! |---|---|
//! | star-of-union-eps | `(ε + r)* = r*` |
//! | star-of-union-star | `(r* + s)* = (r + s)*` |
//! | star-of-nullable-concat | `(p·q)* = (p + q)*` when all parts nullable |
//! | adjacent-star-dedup | `r*·r* = r*` |
//! | plus-to-star | `ε + r·r* = r*` and `ε + r*·r = r*` |
//! | union-arm-subsumption | drop `p` from `p + q` when `L(p) ⊆ L(q)` |
//! | star-absorb | `r + r* = r*`, `ε` dropped next to a nullable arm |

use crate::nfa::Nfa;
use crate::ops;
use crate::regex::Regex;

/// Budget knobs for [`simplify_with`] / [`simplify_deep`].
#[derive(Clone, Debug)]
pub struct SimplifyConfig {
    /// Max AST size for which semantic (inclusion-based) union pruning runs.
    pub semantic_size_limit: usize,
    /// Max fixpoint passes (each pass is a full bottom-up rewrite).
    pub max_passes: usize,
    /// Whether [`simplify_deep`] may try the minimal-DFA → regex route.
    pub try_automaton_route: bool,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        SimplifyConfig {
            semantic_size_limit: 64,
            max_passes: 8,
            try_automaton_route: true,
        }
    }
}

/// Simplify with the cheap syntactic rules only; linear-ish and allocation
/// light. Guaranteed: `L(out) = L(r)` and `out.size() <= r.size()`.
pub fn simplify(r: &Regex) -> Regex {
    let cfg = SimplifyConfig {
        semantic_size_limit: 0,
        try_automaton_route: false,
        ..SimplifyConfig::default()
    };
    simplify_with(r, &cfg)
}

/// Simplify with syntactic rules plus size-budgeted semantic union pruning.
pub fn simplify_with(r: &Regex, cfg: &SimplifyConfig) -> Regex {
    let mut cur = r.clone();
    for _ in 0..cfg.max_passes {
        let next = pass(&cur, cfg);
        if next == cur {
            break;
        }
        debug_assert!(next.size() <= cur.size(), "simplify must not grow");
        cur = next;
    }
    cur
}

/// Full pipeline: syntactic + semantic rules, then (optionally) the minimal
/// DFA → state-elimination route; returns whichever equivalent expression is
/// smallest. This is the entry point the optimizer uses.
pub fn simplify_deep(r: &Regex, cfg: &SimplifyConfig) -> Regex {
    let syntactic = simplify_with(r, cfg);
    if !cfg.try_automaton_route || syntactic.size() > cfg.semantic_size_limit {
        return syntactic;
    }
    let sigma = syntactic
        .symbols()
        .iter()
        .map(|s| s.index() + 1)
        .max()
        .unwrap_or(1);
    let dfa = crate::dfa::Dfa::from_nfa(&Nfa::thompson(&syntactic), sigma).minimize();
    let via_dfa = simplify_with(&crate::elim::nfa_to_regex(&dfa.to_nfa()), cfg);
    if via_dfa.size() < syntactic.size() && ops::regex_equivalent(&via_dfa, &syntactic) {
        via_dfa
    } else {
        syntactic
    }
}

/// One bottom-up rewrite pass.
fn pass(r: &Regex, cfg: &SimplifyConfig) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => r.clone(),
        Regex::Concat(parts) => {
            let parts: Vec<Regex> = parts.iter().map(|p| pass(p, cfg)).collect();
            rewrite_concat(parts)
        }
        Regex::Union(parts) => {
            let parts: Vec<Regex> = parts.iter().map(|p| pass(p, cfg)).collect();
            rewrite_union(parts, cfg)
        }
        Regex::Star(inner) => rewrite_star(pass(inner, cfg)),
    }
}

/// `r*·r* → r*` on adjacent parts (the smart constructor has already
/// flattened and dropped units).
fn rewrite_concat(parts: Vec<Regex>) -> Regex {
    let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
    for p in parts {
        if let (Some(Regex::Star(last)), Regex::Star(cur)) = (out.last(), &p) {
            if **last == **cur {
                continue; // drop the duplicate star
            }
        }
        out.push(p);
    }
    Regex::concat(out)
}

/// Union-level rules: plus-to-star, star absorption, ε-absorption into a
/// nullable arm, and (budgeted) semantic subsumption.
fn rewrite_union(mut parts: Vec<Regex>, cfg: &SimplifyConfig) -> Regex {
    // ε + r·r* → r*  (and the mirrored ε + r*·r → r*). Scan while a rewrite
    // applies; each application strictly shrinks total size.
    if parts.contains(&Regex::Epsilon) {
        let mut changed = true;
        while changed {
            changed = false;
            for part in parts.iter_mut() {
                if let Some(star) = as_plus(part) {
                    *part = star;
                    changed = true;
                }
            }
            if changed {
                // Re-normalize: arms may now be absorbable.
                parts = match Regex::union(std::mem::take(&mut parts)) {
                    Regex::Union(ps) => ps,
                    single => return single,
                };
                if !parts.contains(&Regex::Epsilon) {
                    break;
                }
            }
        }
        // ε is redundant next to any nullable arm.
        if parts.iter().any(|p| *p != Regex::Epsilon && p.nullable()) {
            parts.retain(|p| *p != Regex::Epsilon);
        }
    }

    // r + r* → r* (syntactic star absorption).
    let stars: Vec<Regex> = parts
        .iter()
        .filter_map(|p| match p {
            Regex::Star(inner) => Some((**inner).clone()),
            _ => None,
        })
        .collect();
    if !stars.is_empty() {
        parts.retain(|p| !stars.contains(p));
    }

    // Budgeted semantic subsumption: drop arm i when L(i) ⊆ L(j), i ≠ j.
    let total: usize = parts.iter().map(Regex::size).sum();
    if parts.len() > 1 && total <= cfg.semantic_size_limit {
        let mut keep = vec![true; parts.len()];
        for i in 0..parts.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..parts.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Keep the later arm on ties (equal languages): drop i only
                // if included and (strictly smaller language or i > j) to
                // avoid dropping both arms of an equivalent pair.
                if ops::regex_included(&parts[i], &parts[j])
                    && (i > j || !ops::regex_included(&parts[j], &parts[i]))
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut pruned = Vec::with_capacity(parts.len());
        for (p, k) in parts.into_iter().zip(keep) {
            if k {
                pruned.push(p);
            }
        }
        parts = pruned;
    }

    Regex::union(parts)
}

/// Star-level rules.
fn rewrite_star(inner: Regex) -> Regex {
    match inner {
        // (ε + r)* = r*; (r* + s)* = (r + s)*
        Regex::Union(parts) => {
            let cleaned: Vec<Regex> = parts
                .into_iter()
                .filter(|p| *p != Regex::Epsilon)
                .map(|p| match p {
                    Regex::Star(inner) => *inner,
                    other => other,
                })
                .collect();
            Regex::union(cleaned).star()
        }
        // (p·q)* = (p + q)* when every part is nullable. Each pᵢ ⊆ p₁…pₙ
        // (instantiate the others at ε), so (p₁+…+pₙ)* ⊆ ((p₁…pₙ)*)* =
        // (p₁…pₙ)*; the other inclusion is immediate.
        Regex::Concat(parts) if parts.iter().all(Regex::nullable) => {
            rewrite_star(Regex::union(parts))
        }
        other => other.star(),
    }
}

/// Match `r·r*` or `r*·r` and return `r*`.
fn as_plus(r: &Regex) -> Option<Regex> {
    if let Regex::Concat(parts) = r {
        if parts.len() >= 2 {
            // head·(tail)* where tail == concat(head..)? Simplest useful
            // cases: [x, x*] and [x*, x]; also [x, y, (x·y)*] style with the
            // star wrapping the whole prefix.
            if let Regex::Star(tail) = &parts[parts.len() - 1] {
                let head = Regex::concat(parts[..parts.len() - 1].to_vec());
                if **tail == head {
                    return Some(head.star());
                }
            }
            if let Regex::Star(head) = &parts[0] {
                let tail = Regex::concat(parts[1..].to_vec());
                if **head == tail {
                    return Some(tail.star());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse_regex;
    use crate::random::{random_regex, RegexGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simp(src: &str) -> String {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, src).unwrap();
        let s = simplify_deep(&r, &SimplifyConfig::default());
        assert!(
            ops::regex_equivalent(&r, &s),
            "unsound simplification of {src}"
        );
        format!("{}", s.display(&ab))
    }

    #[test]
    fn plus_to_star() {
        assert_eq!(simp("() + a.a*"), "a*");
        assert_eq!(simp("() + a*.a"), "a*");
        assert_eq!(simp("() + a.b.(a.b)*"), "(a.b)*");
    }

    #[test]
    fn star_of_union_rules() {
        assert_eq!(simp("(() + a)*"), "a*");
        assert_eq!(simp("(a* + b)*"), "(a+b)*");
        assert_eq!(simp("(a* + b*)*"), "(a+b)*");
    }

    #[test]
    fn star_of_nullable_concat() {
        assert_eq!(simp("(a*.b*)*"), "(a+b)*");
        assert_eq!(simp("((()+a).(()+b))*"), "(a+b)*");
    }

    #[test]
    fn adjacent_star_dedup() {
        assert_eq!(simp("a*.a*"), "a*");
        assert_eq!(simp("b.a*.a*.c"), "b.a*.c");
    }

    #[test]
    fn star_absorbs_base() {
        assert_eq!(simp("a + a*"), "a*");
        assert_eq!(simp("a.b + (a.b)* + c"), "c+(a.b)*");
    }

    #[test]
    fn semantic_subsumption_prunes_arms() {
        // a.b ⊆ a.(b+c) — dropped by the inclusion check.
        assert_eq!(simp("a.b + a.(b+c)"), "a.(b+c)");
        // a ⊆ (a+b)* and b.a ⊆ (a+b)*
        assert_eq!(simp("a + b.a + (a+b)*"), "(a+b)*");
    }

    #[test]
    fn epsilon_absorbed_by_nullable_arm() {
        assert_eq!(simp("() + a*"), "a*");
        assert_eq!(simp("() + a*.b*"), "a*.b*");
    }

    #[test]
    fn preserves_already_minimal() {
        assert_eq!(simp("a.(b+c).d*"), "a.(b+c).d*");
        assert_eq!(simp("()"), "()");
        assert_eq!(simp("[]"), "[]");
    }

    #[test]
    fn never_grows_and_stays_equivalent_on_random_inputs() {
        let mut ab = Alphabet::new();
        let syms = vec![ab.intern("a"), ab.intern("b"), ab.intern("c")];
        let cfg = RegexGenConfig::new(syms);
        let mut rng = StdRng::seed_from_u64(0xA1B2);
        for _ in 0..200 {
            let r = random_regex(&mut rng, &cfg);
            let s = simplify_with(&r, &SimplifyConfig::default());
            assert!(s.size() <= r.size(), "{r:?} grew to {s:?}");
            assert!(
                ops::regex_equivalent(&r, &s),
                "unsound: {} vs {}",
                r.display(&ab),
                s.display(&ab)
            );
        }
    }

    #[test]
    fn deep_route_verified_on_random_inputs() {
        let mut ab = Alphabet::new();
        let syms = vec![ab.intern("a"), ab.intern("b")];
        let mut cfg = RegexGenConfig::new(syms);
        cfg.max_depth = 3;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..60 {
            let r = random_regex(&mut rng, &cfg);
            let s = simplify_deep(&r, &SimplifyConfig::default());
            assert!(ops::regex_equivalent(&r, &s));
        }
    }
}
