//! NFA → regular expression conversion by state elimination (GNFA).
//!
//! Used by the optimizer to turn derived automata (quotients of cached
//! queries, saturated `RewriteTo` languages) back into path expressions
//! that can travel inside `subquery` messages. The classical construction:
//! add fresh start/accept states, then eliminate the original states one at
//! a time, updating `R_ij := R_ij + R_ik · R_kk* · R_kj`. Expressions are
//! kept in the smart-constructor normal form; elimination order is by
//! (in-degree × out-degree) to curb blow-up.

use std::collections::HashMap;

use crate::nfa::Nfa;
use crate::regex::Regex;

/// Convert an NFA to an equivalent regular expression.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    let trimmed = nfa.trim();
    let n = trimmed.num_states();
    if n == 0 {
        return Regex::Empty;
    }
    // GNFA states: 0..n are the NFA's, n = fresh start, n+1 = fresh accept.
    let start = n;
    let accept = n + 1;
    let mut edges: HashMap<(usize, usize), Regex> = HashMap::new();
    let add = |edges: &mut HashMap<(usize, usize), Regex>, i: usize, j: usize, r: Regex| {
        if r == Regex::Empty {
            return;
        }
        match edges.get_mut(&(i, j)) {
            Some(existing) => {
                let prev = std::mem::replace(existing, Regex::Empty);
                *existing = prev.or(r);
            }
            None => {
                edges.insert((i, j), r);
            }
        }
    };

    add(&mut edges, start, trimmed.start() as usize, Regex::Epsilon);
    for s in 0..n {
        if trimmed.is_accepting(s as u32) {
            add(&mut edges, s, accept, Regex::Epsilon);
        }
        for &t in trimmed.eps_transitions(s as u32) {
            add(&mut edges, s, t as usize, Regex::Epsilon);
        }
        for &(sym, t) in trimmed.transitions(s as u32) {
            add(&mut edges, s, t as usize, Regex::sym(sym));
        }
    }

    // Eliminate internal states, cheapest (indeg × outdeg) first.
    let mut alive: Vec<usize> = (0..n).collect();
    while !alive.is_empty() {
        // pick the state minimizing in×out among alive
        let (pos, &k) = alive
            .iter()
            .enumerate()
            .min_by_key(|(_, &k)| {
                let indeg = edges.keys().filter(|&&(i, j)| j == k && i != k).count();
                let outdeg = edges.keys().filter(|&&(i, j)| i == k && j != k).count();
                indeg * outdeg
            })
            .expect("alive non-empty");
        alive.swap_remove(pos);

        let self_loop = edges.remove(&(k, k));
        let loop_star = match self_loop {
            Some(r) => r.star(),
            None => Regex::Epsilon,
        };
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(i, j), _)| j == k && i != k)
            .map(|(&(i, _), r)| (i, r.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(i, j), _)| i == k && j != k)
            .map(|(&(_, j), r)| (j, r.clone()))
            .collect();
        edges.retain(|&(i, j), _| i != k && j != k);
        for (i, rin) in &incoming {
            for (j, rout) in &outgoing {
                let through = rin.clone().then(loop_star.clone()).then(rout.clone());
                add(&mut edges, *i, *j, through);
            }
        }
    }

    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::ops::regex_equivalent;
    use crate::parser::parse_regex;

    fn round_trip(src: &str) {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        ab.intern("c");
        let r = parse_regex(&mut ab, src).unwrap();
        let back = nfa_to_regex(&Nfa::thompson(&r));
        assert!(
            regex_equivalent(&r, &back),
            "{src} → {} not equivalent",
            back.display(&ab)
        );
    }

    #[test]
    fn round_trips_language() {
        for src in [
            "a",
            "a.b.c",
            "a+b",
            "a*",
            "(a+b)*.c",
            "a.(b.a)*.c",
            "(a.b)* + c.c*",
            "()",
            "[]",
            "(a+b+c)*",
            "a?.b*.c?",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn empty_automaton_gives_empty() {
        let nfa = Nfa::empty();
        assert_eq!(nfa_to_regex(&nfa), Regex::Empty);
    }

    #[test]
    fn word_automaton_gives_word() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let r = nfa_to_regex(&Nfa::from_word(&[a, b, a]));
        assert_eq!(r.as_word(), Some(vec![a, b, a]));
    }

    #[test]
    fn handles_dead_states() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut nfa = Nfa::from_word(&[a]);
        let dead = nfa.add_state(false);
        nfa.add_transition(nfa.start(), a, dead); // dead branch
        let r = nfa_to_regex(&nfa);
        assert_eq!(r.as_word(), Some(vec![a]));
    }

    #[test]
    fn quotient_language_round_trip() {
        // existential quotient of a(ba)*c by (ab)* is a(ba)*c ∪ …
        let mut ab = Alphabet::new();
        let q = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
        let f = parse_regex(&mut ab, "(a.b)*").unwrap();
        let qn = Nfa::thompson(&q);
        let starts = qn.reachable_via(&Nfa::thompson(&f));
        let mut quot = Nfa::empty();
        let off = quot.add_nfa(&qn);
        for s in starts {
            quot.add_eps(quot.start(), s + off);
        }
        let r = nfa_to_regex(&quot);
        // the quotient contains a.c (after reading ab…) and the original
        let ac = parse_regex(&mut ab, "a.c").unwrap();
        assert!(crate::ops::regex_included(&ac, &r));
        assert!(crate::ops::regex_included(&q, &r));
    }
}
