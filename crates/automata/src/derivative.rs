//! Brzozowski derivatives — the paper's "quotients".
//!
//! For a language `L` and label `l`, the quotient `L/l = {w | l·w ∈ L}`
//! (Section 2.2). The paper's recursive evaluation procedure (✳) repeatedly
//! takes quotients of the query, and the finiteness of the set `P` of
//! repeated quotients is what makes the Datalog translation finite. On the
//! syntactic side, finiteness holds modulo the ACI axioms of union — which is
//! exactly the normal form maintained by the smart constructors in
//! [`crate::regex`]. [`DerivativeClosure`] materializes `P` and doubles as a
//! DFA constructed without going through an NFA.

use std::collections::HashMap;

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::regex::Regex;

/// The Brzozowski derivative (quotient) `∂_s r` with `L(∂_s r) = L(r)/s`.
pub fn derivative(r: &Regex, s: Symbol) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Symbol(t) => {
            if *t == s {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(parts) => {
            // ∂(r1 r2 … rn) = (∂r1) r2…rn  +  [r1 nullable] ∂(r2…rn)
            let head = &parts[0];
            let tail = Regex::concat(parts[1..].to_vec());
            let first = derivative(head, s).then(tail.clone());
            if head.nullable() {
                first.or(derivative(&tail, s))
            } else {
                first
            }
        }
        Regex::Union(parts) => Regex::union(parts.iter().map(|p| derivative(p, s)).collect()),
        Regex::Star(inner) => derivative(inner, s).then(r.clone()),
    }
}

/// Derivative by a whole word: `∂_w r` with `L(∂_w r) = {v | w·v ∈ L(r)}`.
pub fn word_derivative(r: &Regex, word: &[Symbol]) -> Regex {
    let mut cur = r.clone();
    for &s in word {
        cur = derivative(&cur, s);
        if cur == Regex::Empty {
            break;
        }
    }
    cur
}

/// Word membership by derivatives (`w ∈ L(r)` iff `∂_w r` is nullable).
pub fn accepts(r: &Regex, word: &[Symbol]) -> bool {
    word_derivative(r, word).nullable()
}

/// The closure `P` of repeated quotients of a query — the paper's finite set
/// of "still-left" subqueries — together with the transition structure, i.e.
/// a DFA whose states are (normalized) regexes.
#[derive(Clone, Debug)]
pub struct DerivativeClosure {
    /// All distinct derivatives, index 0 is the original query.
    pub classes: Vec<Regex>,
    /// `trans[class][sym] = class index of the derivative`.
    pub trans: Vec<Vec<usize>>,
    /// Nullability flag per class (ε ∈ quotient — "answer" classes).
    pub nullable: Vec<bool>,
    /// Symbols the closure was computed over.
    pub symbols: Vec<Symbol>,
}

/// Error when the closure exceeds the configured bound. With ACI-normalizing
/// constructors the closure is always finite, but the bound guards against
/// pathological blow-up in adversarial inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureOverflow {
    /// The cap that was exceeded.
    pub cap: usize,
}

impl std::fmt::Display for ClosureOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "derivative closure exceeded {} classes", self.cap)
    }
}

impl std::error::Error for ClosureOverflow {}

impl DerivativeClosure {
    /// Compute the quotient closure of `r` over `symbols`, with at most `cap`
    /// distinct classes.
    pub fn compute(r: &Regex, symbols: &[Symbol], cap: usize) -> Result<Self, ClosureOverflow> {
        let mut classes: Vec<Regex> = vec![r.clone()];
        let mut index: HashMap<Regex, usize> = HashMap::new();
        index.insert(r.clone(), 0);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut i = 0usize;
        while i < classes.len() {
            let cur = classes[i].clone();
            let mut row = Vec::with_capacity(symbols.len());
            for &s in symbols {
                let d = derivative(&cur, s);
                let id = match index.get(&d) {
                    Some(&id) => id,
                    None => {
                        let id = classes.len();
                        if id >= cap {
                            return Err(ClosureOverflow { cap });
                        }
                        index.insert(d.clone(), id);
                        classes.push(d);
                        id
                    }
                };
                row.push(id);
            }
            trans.push(row);
            i += 1;
        }
        let nullable = classes.iter().map(Regex::nullable).collect();
        Ok(DerivativeClosure {
            classes,
            trans,
            nullable,
            symbols: symbols.to_vec(),
        })
    }

    /// Number of quotient classes (the size of the paper's set `P`).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the closure is trivial (never: class 0 always exists).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class reached from the original query by reading `word`, or
    /// `None` if a symbol outside the closure's alphabet occurs.
    pub fn class_of(&self, word: &[Symbol]) -> Option<usize> {
        let mut cur = 0usize;
        for &s in word {
            let pos = self.symbols.iter().position(|&t| t == s)?;
            cur = self.trans[cur][pos];
        }
        Some(cur)
    }

    /// View the closure as a complete DFA over `sigma` symbols; symbols not
    /// in the closure's set go to a dead state.
    pub fn to_dfa(&self, sigma: usize) -> Dfa {
        // Build via an NFA to reuse the subset construction's completion.
        let mut nfa = crate::nfa::Nfa::empty();
        let mut ids = Vec::with_capacity(self.len());
        ids.push(nfa.start());
        nfa.set_accepting(nfa.start(), self.nullable[0]);
        for c in 1..self.len() {
            ids.push(nfa.add_state(self.nullable[c]));
        }
        for (c, row) in self.trans.iter().enumerate() {
            for (k, &target) in row.iter().enumerate() {
                nfa.add_transition(ids[c], self.symbols[k], ids[target]);
            }
        }
        Dfa::from_nfa(&nfa, sigma)
    }

    /// Render all classes (debugging / the Datalog translation's rule names).
    pub fn render(&self, alphabet: &Alphabet) -> Vec<String> {
        self.classes
            .iter()
            .map(|c| format!("{}", c.display(alphabet)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::Nfa;
    use crate::parser::parse_regex;

    fn setup(src: &str) -> (Alphabet, Regex) {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        ab.intern("c");
        let r = parse_regex(&mut ab, src).unwrap();
        (ab, r)
    }

    #[test]
    fn derivative_basic_laws() {
        let (ab, r) = setup("a.b");
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        assert_eq!(derivative(&r, a), Regex::sym(b));
        assert_eq!(derivative(&r, b), Regex::Empty);
        let (ab, r) = setup("a*");
        let a = ab.get("a").unwrap();
        assert_eq!(derivative(&r, a), r);
    }

    #[test]
    fn derivative_of_union_and_nullable_concat() {
        let (ab, r) = setup("(a + ()).b");
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        // ∂_a = b ; ∂_b = ε (via the nullable head)
        assert_eq!(derivative(&r, a), Regex::sym(b));
        assert_eq!(derivative(&r, b), Regex::Epsilon);
    }

    #[test]
    fn accepts_agrees_with_nfa_on_examples() {
        let exprs = ["a.(b+c)*", "(a.b)* + c", "a*.b.a*", "(a+b)*.c.c"];
        for src in exprs {
            let (ab, r) = setup(src);
            let nfa = Nfa::thompson(&r);
            let syms: Vec<Symbol> = ab.symbols().collect();
            // all words up to length 4
            let mut words: Vec<Vec<Symbol>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &words {
                    for &s in &syms {
                        let mut w2 = w.clone();
                        w2.push(s);
                        next.push(w2);
                    }
                }
                words.extend(next.clone());
                words.dedup();
            }
            for w in &words {
                assert_eq!(
                    accepts(&r, w),
                    nfa.accepts(w),
                    "{} on {:?}",
                    src,
                    ab.render_word(w)
                );
            }
        }
    }

    #[test]
    fn closure_is_finite_and_small() {
        let (ab, r) = setup("(a.b)*");
        let syms: Vec<Symbol> = ab.symbols().collect();
        let cl = DerivativeClosure::compute(&r, &syms, 1000).unwrap();
        // classes: (ab)*, b(ab)*, ∅ — exactly 3
        assert_eq!(cl.len(), 3);
        assert!(cl.nullable[0]);
    }

    #[test]
    fn closure_class_of_tracks_words() {
        let (ab, r) = setup("a.b*");
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let syms: Vec<Symbol> = ab.symbols().collect();
        let cl = DerivativeClosure::compute(&r, &syms, 1000).unwrap();
        let c1 = cl.class_of(&[a]).unwrap();
        assert!(cl.nullable[c1]);
        let c2 = cl.class_of(&[a, b, b]).unwrap();
        assert_eq!(cl.classes[c2], cl.classes[c1]);
        let dead = cl.class_of(&[b]).unwrap();
        assert_eq!(cl.classes[dead], Regex::Empty);
    }

    #[test]
    fn closure_to_dfa_preserves_language() {
        let (ab, r) = setup("a.(b+c)*.a");
        let syms: Vec<Symbol> = ab.symbols().collect();
        let cl = DerivativeClosure::compute(&r, &syms, 1000).unwrap();
        let dfa = cl.to_dfa(ab.len());
        let nfa = Nfa::thompson(&r);
        for w in nfa.enumerate_words(5, 200) {
            assert!(dfa.accepts(&w));
        }
        let a = ab.get("a").unwrap();
        assert!(!dfa.accepts(&[a]));
        assert!(dfa.accepts(&[a, a]));
    }

    #[test]
    fn closure_overflow_reports() {
        let (ab, r) = setup("(a+b)*.a.(a+b).(a+b).(a+b)");
        let syms: Vec<Symbol> = ab.symbols().collect();
        // This needs 2^4 = 16+ classes; cap at 4 must overflow.
        let err = DerivativeClosure::compute(&r, &syms, 4).unwrap_err();
        assert_eq!(err.cap, 4);
        assert!(DerivativeClosure::compute(&r, &syms, 10_000).is_ok());
    }

    #[test]
    fn word_derivative_is_iterated_quotient() {
        let (ab, r) = setup("a.b.c");
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let c = ab.get("c").unwrap();
        assert_eq!(word_derivative(&r, &[a, b]), Regex::sym(c));
        assert_eq!(word_derivative(&r, &[a, b, c]), Regex::Epsilon);
        assert_eq!(word_derivative(&r, &[b]), Regex::Empty);
    }
}
