//! Regular expressions over a label alphabet.
//!
//! Path queries in the paper are regular expressions over Σ with union `+`,
//! concatenation (juxtaposition), and Kleene star (Section 2.2). The AST here
//! is kept in a light normal form by the smart constructors ([`Regex::concat`],
//! [`Regex::union`], [`Regex::star`]): concatenations and unions are
//! flattened, the unit/annihilator laws for ε and ∅ are applied, and union
//! arms are sorted and deduplicated. This normal form is what makes the
//! Brzozowski-derivative closure (module [`mod@crate::derivative`]) finite — the
//! classical "similarity" quotient (associativity, commutativity, idempotence
//! of `+`).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::alphabet::{Alphabet, Symbol};

/// A regular expression over interned [`Symbol`]s.
///
/// Invariants maintained by the smart constructors (not by raw enum
/// construction):
/// * `Concat` has ≥ 2 parts, none of which is `Epsilon`, `Empty`, or a nested
///   `Concat`.
/// * `Union` has ≥ 2 parts, sorted, deduplicated, none of which is `Empty` or
///   a nested `Union`.
/// * `Star` never wraps `Empty`, `Epsilon`, or another `Star`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single label.
    Symbol(Symbol),
    /// Concatenation of the parts, in order.
    Concat(Vec<Regex>),
    /// Union of the parts.
    Union(Vec<Regex>),
    /// Kleene closure.
    Star(Box<Regex>),
}

impl Regex {
    /// The single-symbol expression.
    pub fn sym(s: Symbol) -> Regex {
        Regex::Symbol(s)
    }

    /// The expression denoting exactly the word `w` (ε when `w` is empty).
    pub fn word(w: &[Symbol]) -> Regex {
        Regex::concat(w.iter().map(|&s| Regex::Symbol(s)).collect())
    }

    /// Smart concatenation: flattens, applies `ε·r = r` and `∅·r = ∅`.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart binary concatenation.
    pub fn then(self, other: Regex) -> Regex {
        Regex::concat(vec![self, other])
    }

    /// Smart union: flattens, drops ∅, sorts and deduplicates the arms.
    pub fn union(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Union(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Union(out),
        }
    }

    /// Smart binary union.
    pub fn or(self, other: Regex) -> Regex {
        Regex::union(vec![self, other])
    }

    /// Smart Kleene star: `∅* = ε* = ε`… more precisely `∅* = {ε}`, `(r*)* = r*`.
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            r => Regex::Star(Box::new(r)),
        }
    }

    /// `r+ = r·r*` (the paper writes one-or-more as `r r*`).
    pub fn plus(self) -> Regex {
        let star = self.clone().star();
        self.then(star)
    }

    /// `r? = ε + r`.
    pub fn opt(self) -> Regex {
        Regex::union(vec![Regex::Epsilon, self])
    }

    /// Does the language contain the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Symbol(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Union(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Syntactic emptiness. With smart constructors, a regex denotes ∅ iff it
    /// *is* `Empty`; this checks the general case for manually built trees.
    pub fn is_empty_lang(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Symbol(_) | Regex::Star(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_empty_lang),
            Regex::Union(parts) => parts.iter().all(Regex::is_empty_lang),
        }
    }

    /// If this expression denotes a single word, return it. Words are the
    /// constraint class of Section 4.2 ("word constraints").
    pub fn as_word(&self) -> Option<Vec<Symbol>> {
        match self {
            Regex::Empty => None,
            Regex::Epsilon => Some(vec![]),
            Regex::Symbol(s) => Some(vec![*s]),
            Regex::Concat(parts) => {
                let mut w = Vec::new();
                for p in parts {
                    w.extend(p.as_word()?);
                }
                Some(w)
            }
            Regex::Union(_) | Regex::Star(_) => None,
        }
    }

    /// Number of AST nodes (a simple size measure used by cost models).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Concat(parts) | Regex::Union(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) => 1 + r.size(),
        }
    }

    /// Star height (max nesting depth of Kleene stars). A query is
    /// *nonrecursive* in the paper's sense iff its language is finite; star
    /// height 0 is a sufficient syntactic condition.
    pub fn star_height(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 0,
            Regex::Concat(parts) | Regex::Union(parts) => {
                parts.iter().map(Regex::star_height).max().unwrap_or(0)
            }
            Regex::Star(r) => 1 + r.star_height(),
        }
    }

    /// All symbols occurring in the expression, sorted and deduplicated.
    pub fn symbols(&self) -> Vec<Symbol> {
        fn walk(r: &Regex, out: &mut Vec<Symbol>) {
            match r {
                Regex::Empty | Regex::Epsilon => {}
                Regex::Symbol(s) => out.push(*s),
                Regex::Concat(parts) | Regex::Union(parts) => {
                    for p in parts {
                        walk(p, out);
                    }
                }
                Regex::Star(r) => walk(r, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// The reversal of the language (words read right-to-left).
    pub fn reverse(&self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Symbol(s) => Regex::Symbol(*s),
            Regex::Concat(parts) => Regex::concat(parts.iter().rev().map(Regex::reverse).collect()),
            Regex::Union(parts) => Regex::union(parts.iter().map(Regex::reverse).collect()),
            Regex::Star(r) => r.reverse().star(),
        }
    }

    /// If the language is finite, enumerate it (up to `cap` words); returns
    /// `None` if the language is infinite or exceeds the cap. Used by the
    /// boundedness machinery (Theorem 4.10) to print nonrecursive queries.
    pub fn finite_language(&self, cap: usize) -> Option<Vec<Vec<Symbol>>> {
        fn go(r: &Regex, cap: usize) -> Option<Vec<Vec<Symbol>>> {
            match r {
                Regex::Empty => Some(vec![]),
                Regex::Epsilon => Some(vec![vec![]]),
                Regex::Symbol(s) => Some(vec![vec![*s]]),
                Regex::Union(parts) => {
                    let mut out: Vec<Vec<Symbol>> = Vec::new();
                    for p in parts {
                        out.extend(go(p, cap)?);
                        if out.len() > cap {
                            return None;
                        }
                    }
                    out.sort();
                    out.dedup();
                    Some(out)
                }
                Regex::Concat(parts) => {
                    let mut out: Vec<Vec<Symbol>> = vec![vec![]];
                    for p in parts {
                        let ws = go(p, cap)?;
                        let mut next = Vec::with_capacity(out.len() * ws.len().max(1));
                        for prefix in &out {
                            for w in &ws {
                                let mut pw = prefix.clone();
                                pw.extend_from_slice(w);
                                next.push(pw);
                            }
                        }
                        if next.len() > cap {
                            return None;
                        }
                        out = next;
                    }
                    out.sort();
                    out.dedup();
                    Some(out)
                }
                Regex::Star(inner) => {
                    // r* is finite iff L(r) ⊆ {ε}.
                    let ws = go(inner, cap)?;
                    if ws.iter().all(|w| w.is_empty()) {
                        Some(vec![vec![]])
                    } else {
                        None
                    }
                }
            }
        }
        go(self, cap)
    }

    /// Build the union of a finite set of words.
    pub fn from_finite_language<I>(words: I) -> Regex
    where
        I: IntoIterator<Item = Vec<Symbol>>,
    {
        Regex::union(words.into_iter().map(|w| Regex::word(&w)).collect())
    }

    /// Render against an alphabet. See [`RegexDisplay`] for the syntax.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> RegexDisplay<'a> {
        RegexDisplay {
            regex: self,
            alphabet,
        }
    }
}

/// Total order on regexes used to canonicalize unions; any fixed order works.
impl Regex {
    /// Compare by (size, structure); exposed for deterministic iteration in
    /// downstream crates.
    pub fn canonical_cmp(&self, other: &Regex) -> Ordering {
        self.size().cmp(&other.size()).then_with(|| self.cmp(other))
    }
}

/// Pretty-printer produced by [`Regex::display`].
///
/// Syntax matches the parser in [`crate::parser`]: `+` for union, `.` (or
/// juxtaposition on input) for concatenation, postfix `*`/`?`, `()` for ε and
/// `[]` for ∅. Label names that are not plain identifiers are double-quoted.
pub struct RegexDisplay<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

fn is_plain_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !s.starts_with('-')
}

impl RegexDisplay<'_> {
    fn write(&self, r: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        // precedence: 0 = union, 1 = concat, 2 = atom/postfix
        match r {
            Regex::Empty => write!(f, "[]"),
            Regex::Epsilon => write!(f, "()"),
            Regex::Symbol(s) => {
                let name = self.alphabet.name(*s);
                if is_plain_ident(name) {
                    write!(f, "{name}")
                } else {
                    write!(f, "\"{}\"", name.replace('\\', "\\\\").replace('"', "\\\""))
                }
            }
            Regex::Concat(parts) => {
                if prec > 1 {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    self.write(p, f, 2)?;
                }
                if prec > 1 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Union(parts) => {
                if prec > 0 {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    self.write(p, f, 1)?;
                }
                if prec > 0 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Star(inner) => {
                self.write(inner, f, 2)?;
                write!(f, "*")
            }
        }
    }
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(self.regex, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab3() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (ab, a, b, c)
    }

    #[test]
    fn concat_normalizes_units() {
        let (_, a, b, _) = ab3();
        let r = Regex::concat(vec![
            Regex::Epsilon,
            Regex::sym(a),
            Regex::Epsilon,
            Regex::sym(b),
        ]);
        assert_eq!(r, Regex::Concat(vec![Regex::sym(a), Regex::sym(b)]));
        assert_eq!(
            Regex::concat(vec![Regex::sym(a), Regex::Empty]),
            Regex::Empty
        );
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
    }

    #[test]
    fn concat_flattens_nested() {
        let (_, a, b, c) = ab3();
        let inner = Regex::concat(vec![Regex::sym(b), Regex::sym(c)]);
        let r = Regex::concat(vec![Regex::sym(a), inner]);
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::sym(a), Regex::sym(b), Regex::sym(c)])
        );
    }

    #[test]
    fn union_sorts_and_dedups() {
        let (_, a, b, _) = ab3();
        let r1 = Regex::union(vec![Regex::sym(b), Regex::sym(a), Regex::sym(b)]);
        let r2 = Regex::union(vec![Regex::sym(a), Regex::sym(b)]);
        assert_eq!(r1, r2);
        assert_eq!(Regex::union(vec![Regex::Empty]), Regex::Empty);
        assert_eq!(
            Regex::union(vec![Regex::Empty, Regex::sym(a)]),
            Regex::sym(a)
        );
    }

    #[test]
    fn star_laws() {
        let (_, a, _, _) = ab3();
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(Regex::Epsilon.star(), Regex::Epsilon);
        let s = Regex::sym(a).star();
        assert_eq!(s.clone().star(), s);
    }

    #[test]
    fn nullable_cases() {
        let (_, a, b, _) = ab3();
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::sym(a).nullable());
        assert!(Regex::sym(a).star().nullable());
        assert!(!Regex::sym(a).then(Regex::sym(b)).nullable());
        assert!(Regex::sym(a).or(Regex::Epsilon).nullable());
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn as_word_detects_words() {
        let (_, a, b, _) = ab3();
        let w = Regex::word(&[a, b, a]);
        assert_eq!(w.as_word(), Some(vec![a, b, a]));
        assert_eq!(Regex::Epsilon.as_word(), Some(vec![]));
        assert_eq!(Regex::sym(a).star().as_word(), None);
        assert_eq!(Regex::sym(a).or(Regex::sym(b)).as_word(), None);
        assert_eq!(Regex::Empty.as_word(), None);
    }

    #[test]
    fn finite_language_enumerates() {
        let (_, a, b, _) = ab3();
        // (a+b).(a+b) has 4 words
        let r = Regex::sym(a)
            .or(Regex::sym(b))
            .then(Regex::sym(a).or(Regex::sym(b)));
        let words = r.finite_language(100).unwrap();
        assert_eq!(words.len(), 4);
        assert!(Regex::sym(a).star().finite_language(100).is_none());
        // ε* is finite
        assert_eq!(
            Regex::Epsilon.star().finite_language(10).unwrap(),
            vec![Vec::<Symbol>::new()]
        );
    }

    #[test]
    fn reverse_reverses_words() {
        let (_, a, b, c) = ab3();
        let r = Regex::word(&[a, b, c]);
        assert_eq!(r.reverse().as_word(), Some(vec![c, b, a]));
        // reverse is an involution on the normal form
        let q = Regex::sym(a).then(Regex::sym(b).or(Regex::sym(c)).star());
        assert_eq!(q.reverse().reverse(), q);
    }

    #[test]
    fn display_round_trips_syntax() {
        let (ab, a, b, _) = ab3();
        let r = Regex::sym(a)
            .then(Regex::sym(b).or(Regex::Epsilon))
            .then(Regex::sym(a).star());
        let s = format!("{}", r.display(&ab));
        assert_eq!(s, "a.(()+b).a*");
    }

    #[test]
    fn star_height_counts_nesting() {
        let (_, a, b, _) = ab3();
        assert_eq!(Regex::sym(a).star_height(), 0);
        assert_eq!(Regex::sym(a).star().star_height(), 1);
        let r = Regex::sym(a).star().then(Regex::sym(b)).star();
        assert_eq!(r.star_height(), 2);
    }

    #[test]
    fn is_empty_lang_on_raw_trees() {
        let (_, a, _, _) = ab3();
        let raw = Regex::Concat(vec![Regex::sym(a), Regex::Empty]);
        assert!(raw.is_empty_lang());
        let raw2 = Regex::Union(vec![Regex::Empty, Regex::Empty]);
        assert!(raw2.is_empty_lang());
        assert!(!Regex::sym(a).is_empty_lang());
    }
}
