//! Nondeterministic finite automata with ε-transitions.
//!
//! The paper's evaluation algorithm "constructs the nfsa for p and carries
//! along the set of states of the nfsa corresponding to the path traveled so
//! far" (Section 2.2); [`Nfa::start_set`] / [`Nfa::step`] are exactly that
//! operation. The builder API ([`Nfa::add_state`], [`Nfa::add_transition`],
//! [`Nfa::add_eps`], [`Nfa::add_nfa`]) is public because the constraint crate
//! constructs saturation automata (Lemmas 4.5/4.7) directly.

use std::collections::VecDeque;

use crate::alphabet::{Alphabet, Symbol};
use crate::regex::Regex;

/// Dense automaton state identifier.
pub type StateId = u32;

/// An NFA over [`Symbol`]s with a single start state and ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    start: StateId,
    accept: Vec<bool>,
    trans: Vec<Vec<(Symbol, StateId)>>,
    eps: Vec<Vec<StateId>>,
}

impl Nfa {
    /// An automaton with a single, non-accepting start state (language ∅).
    pub fn empty() -> Nfa {
        Nfa {
            start: 0,
            accept: vec![false],
            trans: vec![Vec::new()],
            eps: vec![Vec::new()],
        }
    }

    /// The automaton for {ε}.
    pub fn epsilon() -> Nfa {
        let mut n = Nfa::empty();
        n.accept[0] = true;
        n
    }

    /// The automaton accepting exactly `word`.
    pub fn from_word(word: &[Symbol]) -> Nfa {
        let mut n = Nfa::empty();
        let mut cur = n.start;
        for &s in word {
            let next = n.add_state(false);
            n.add_transition(cur, s, next);
            cur = next;
        }
        n.accept[cur as usize] = true;
        n
    }

    /// Thompson construction from a regular expression.
    pub fn thompson(r: &Regex) -> Nfa {
        let mut n = Nfa::empty();
        let exit = n.add_state(true);
        n.build_fragment(r, n.start, exit);
        n
    }

    fn build_fragment(&mut self, r: &Regex, from: StateId, to: StateId) {
        match r {
            Regex::Empty => {}
            Regex::Epsilon => {
                self.add_eps(from, to);
            }
            Regex::Symbol(s) => {
                self.add_transition(from, *s, to);
            }
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.add_state(false)
                    };
                    self.build_fragment(p, cur, next);
                    cur = next;
                }
            }
            Regex::Union(parts) => {
                for p in parts {
                    self.build_fragment(p, from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.add_state(false);
                self.add_eps(from, hub);
                self.add_eps(hub, to);
                let back = self.add_state(false);
                self.build_fragment(inner, hub, back);
                self.add_eps(back, hub);
            }
        }
    }

    // ----- builder API -----

    /// Add a fresh state; returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.accept.len() as StateId;
        self.accept.push(accepting);
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        id
    }

    /// Add a labeled transition. Duplicate edges are ignored.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) -> bool {
        let row = &mut self.trans[from as usize];
        if row.contains(&(sym, to)) {
            return false;
        }
        row.push((sym, to));
        true
    }

    /// Add an ε-transition. Duplicate edges are ignored.
    pub fn add_eps(&mut self, from: StateId, to: StateId) -> bool {
        if from == to {
            return false;
        }
        let row = &mut self.eps[from as usize];
        if row.contains(&to) {
            return false;
        }
        row.push(to);
        true
    }

    /// Copy all of `other`'s states into `self`, returning the offset that
    /// maps `other`'s ids into `self`'s. Accepting flags are preserved;
    /// `other`'s start is *not* linked — callers glue it explicitly.
    pub fn add_nfa(&mut self, other: &Nfa) -> StateId {
        let off = self.accept.len() as StateId;
        for s in 0..other.num_states() {
            self.accept.push(other.accept[s]);
            self.trans.push(
                other.trans[s]
                    .iter()
                    .map(|&(sym, t)| (sym, t + off))
                    .collect(),
            );
            self.eps
                .push(other.eps[s].iter().map(|&t| t + off).collect());
        }
        off
    }

    /// Mark or unmark a state as accepting.
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) {
        self.accept[s as usize] = accepting;
    }

    /// Change the start state.
    pub fn set_start(&mut self, s: StateId) {
        assert!((s as usize) < self.accept.len());
        self.start = s;
    }

    // ----- accessors -----

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Total number of transitions (labeled + ε).
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum::<usize>()
            + self.eps.iter().map(Vec::len).sum::<usize>()
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accept[s as usize]
    }

    /// Labeled transitions out of `s`.
    pub fn transitions(&self, s: StateId) -> &[(Symbol, StateId)] {
        &self.trans[s as usize]
    }

    /// ε-transitions out of `s`.
    pub fn eps_transitions(&self, s: StateId) -> &[StateId] {
        &self.eps[s as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states() as StateId)
            .filter(|&s| self.accept[s as usize])
            .collect()
    }

    // ----- state-set simulation -----

    /// ε-closure of a set of states; input need not be sorted, output is a
    /// sorted, deduplicated canonical set.
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out: Vec<StateId> = Vec::with_capacity(states.len());
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The canonical start set (ε-closure of the start state). This is the
    /// state-set representation of the *whole query*; quotients of the query
    /// are exactly the sets reachable from it via [`Nfa::step`].
    pub fn start_set(&self) -> Vec<StateId> {
        self.eps_closure(&[self.start])
    }

    /// One symbol step of the subset simulation (with ε-closure).
    pub fn step(&self, set: &[StateId], sym: Symbol) -> Vec<StateId> {
        let mut moved: Vec<StateId> = Vec::new();
        for &s in set {
            for &(sy, t) in &self.trans[s as usize] {
                if sy == sym {
                    moved.push(t);
                }
            }
        }
        if moved.is_empty() {
            return Vec::new();
        }
        self.eps_closure(&moved)
    }

    /// Does the set contain an accepting state? (i.e. ε ∈ quotient.)
    pub fn set_accepts(&self, set: &[StateId]) -> bool {
        set.iter().any(|&s| self.accept[s as usize])
    }

    /// Membership test for a word.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut set = self.start_set();
        for &s in word {
            set = self.step(&set, s);
            if set.is_empty() {
                return false;
            }
        }
        self.set_accepts(&set)
    }

    // ----- language queries -----

    /// True iff the language is empty (no accepting state reachable).
    pub fn is_empty_lang(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted word, if any (0–1 BFS over states, ε edges free).
    pub fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        #[derive(Clone)]
        struct Back {
            prev: StateId,
            sym: Option<Symbol>,
        }
        let n = self.num_states();
        let mut dist = vec![usize::MAX; n];
        let mut back: Vec<Option<Back>> = vec![None; n];
        let mut dq: VecDeque<StateId> = VecDeque::new();
        dist[self.start as usize] = 0;
        dq.push_back(self.start);
        while let Some(s) = dq.pop_front() {
            let d = dist[s as usize];
            if self.accept[s as usize] {
                // reconstruct
                let mut word = Vec::new();
                let mut cur = s;
                while cur != self.start || back[cur as usize].is_some() {
                    let Some(b) = back[cur as usize].clone() else {
                        break;
                    };
                    if let Some(sym) = b.sym {
                        word.push(sym);
                    }
                    cur = b.prev;
                }
                word.reverse();
                return Some(word);
            }
            for &t in &self.eps[s as usize] {
                if d < dist[t as usize] {
                    dist[t as usize] = d;
                    back[t as usize] = Some(Back { prev: s, sym: None });
                    dq.push_front(t);
                }
            }
            for &(sym, t) in &self.trans[s as usize] {
                if d + 1 < dist[t as usize] {
                    dist[t as usize] = d + 1;
                    back[t as usize] = Some(Back {
                        prev: s,
                        sym: Some(sym),
                    });
                    dq.push_back(t);
                }
            }
        }
        None
    }

    /// Keep only states that are both reachable from the start and
    /// co-reachable to an accepting state. Returns the trimmed automaton
    /// (canonical ∅ automaton when the language is empty).
    pub fn trim(&self) -> Nfa {
        let n = self.num_states();
        // forward reachability
        let mut fwd = vec![false; n];
        let mut stack = vec![self.start];
        fwd[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if !fwd[t as usize] {
                    fwd[t as usize] = true;
                    stack.push(t);
                }
            }
            for &(_, t) in &self.trans[s as usize] {
                if !fwd[t as usize] {
                    fwd[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        // backward from accepting, over reversed edges
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in 0..n {
            for &t in &self.eps[s] {
                rev[t as usize].push(s as StateId);
            }
            for &(_, t) in &self.trans[s] {
                rev[t as usize].push(s as StateId);
            }
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<StateId> = (0..n as StateId)
            .filter(|&s| self.accept[s as usize])
            .collect();
        for &s in &stack {
            bwd[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !bwd[p as usize] {
                    bwd[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        let keep: Vec<bool> = (0..n).map(|s| fwd[s] && bwd[s]).collect();
        if !keep[self.start as usize] {
            return Nfa::empty();
        }
        let mut map = vec![StateId::MAX; n];
        let mut out = Nfa {
            start: 0,
            accept: Vec::new(),
            trans: Vec::new(),
            eps: Vec::new(),
        };
        for s in 0..n {
            if keep[s] {
                map[s] = out.accept.len() as StateId;
                out.accept.push(self.accept[s]);
                out.trans.push(Vec::new());
                out.eps.push(Vec::new());
            }
        }
        for s in 0..n {
            if !keep[s] {
                continue;
            }
            let ms = map[s] as usize;
            for &(sym, t) in &self.trans[s] {
                if keep[t as usize] {
                    out.trans[ms].push((sym, map[t as usize]));
                }
            }
            for &t in &self.eps[s] {
                if keep[t as usize] {
                    out.eps[ms].push(map[t as usize]);
                }
            }
        }
        out.start = map[self.start as usize];
        out
    }

    /// The reversed-language automaton.
    ///
    /// **Stable state numbering — downstream code depends on it:** the
    /// result has exactly `num_states() + 1` states; state 0 is a fresh
    /// start (ε-wired to the images of the accepting states) and state
    /// `i` of `self` becomes state `i + 1`. The meet-in-the-middle pair
    /// search in `rpq-core` intersects forward cells `(q, v)` with
    /// backward cells `(q + 1, v)` under precisely this mapping (and
    /// asserts the state count), so any change here must keep the shift
    /// or update that correspondence.
    pub fn reverse(&self) -> Nfa {
        let n = self.num_states();
        let mut out = Nfa {
            start: 0,
            accept: vec![false; n + 1],
            trans: vec![Vec::new(); n + 1],
            eps: vec![Vec::new(); n + 1],
        };
        // state i of self becomes state i+1 of out; state 0 is the new start
        for s in 0..n {
            for &(sym, t) in &self.trans[s] {
                out.trans[t as usize + 1].push((sym, s as StateId + 1));
            }
            for &t in &self.eps[s] {
                out.eps[t as usize + 1].push(s as StateId + 1);
            }
            if self.accept[s] {
                out.eps[0].push(s as StateId + 1);
            }
        }
        out.accept[self.start as usize + 1] = true;
        out
    }

    /// The symbols that can begin an accepted word: labels on transitions
    /// out of the ε-closure of the start state, restricted to the trimmed
    /// (useful-state) automaton. Sorted and deduplicated.
    ///
    /// Together with [`Nfa::last_symbols`] this is the cost input for
    /// direction planning: a forward product search pays for edges matching
    /// the first symbols, a backward search for edges matching the last.
    pub fn first_symbols(&self) -> Vec<Symbol> {
        let t = self.trim();
        let mut out: Vec<Symbol> = t
            .eps_closure(&[t.start])
            .iter()
            .flat_map(|&q| t.trans[q as usize].iter().map(|&(sym, _)| sym))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The symbols that can end an accepted word — the first symbols of
    /// the reversed language, which is exactly the entry set the backward
    /// engines pay for ([`Nfa::reverse`] over the reverse adjacency).
    /// Sorted and deduplicated.
    pub fn last_symbols(&self) -> Vec<Symbol> {
        self.reverse().first_symbols()
    }

    /// Union of two automata (fresh start with ε-edges to both).
    pub fn union(a: &Nfa, b: &Nfa) -> Nfa {
        let mut out = Nfa::empty();
        let oa = out.add_nfa(a);
        let ob = out.add_nfa(b);
        out.add_eps(out.start, a.start + oa);
        out.add_eps(out.start, b.start + ob);
        out
    }

    /// Concatenation `a·b`.
    pub fn concat(a: &Nfa, b: &Nfa) -> Nfa {
        let mut out = Nfa::empty();
        let oa = out.add_nfa(a);
        let ob = out.add_nfa(b);
        out.add_eps(out.start, a.start + oa);
        for s in 0..a.num_states() {
            if a.accept[s] {
                out.accept[s + oa as usize] = false;
                out.add_eps(s as StateId + oa, b.start + ob);
            }
        }
        out
    }

    /// Kleene closure of `a`.
    pub fn star(a: &Nfa) -> Nfa {
        let mut out = Nfa::empty();
        out.accept[0] = true;
        let oa = out.add_nfa(a);
        out.add_eps(out.start, a.start + oa);
        for s in 0..a.num_states() {
            if a.accept[s] {
                out.add_eps(s as StateId + oa, out.start);
            }
        }
        out
    }

    /// Product automaton for intersection: accepts L(a) ∩ L(b). Only pairs
    /// reachable from (start, start) are materialized.
    pub fn intersection(a: &Nfa, b: &Nfa) -> Nfa {
        let mut out = Nfa::empty();
        let mut map: std::collections::HashMap<(StateId, StateId), StateId> =
            std::collections::HashMap::new();
        let start_pair = (a.start, b.start);
        map.insert(start_pair, out.start);
        out.accept[0] = a.accept[a.start as usize] && b.accept[b.start as usize];
        let mut queue = vec![start_pair];
        while let Some((sa, sb)) = queue.pop() {
            let from = map[&(sa, sb)];
            let push = |out: &mut Nfa,
                        map: &mut std::collections::HashMap<(StateId, StateId), StateId>,
                        queue: &mut Vec<(StateId, StateId)>,
                        pair: (StateId, StateId)|
             -> StateId {
                *map.entry(pair).or_insert_with(|| {
                    queue.push(pair);
                    out.add_state(a.accept[pair.0 as usize] && b.accept[pair.1 as usize])
                })
            };
            for &t in &a.eps[sa as usize] {
                let to = push(&mut out, &mut map, &mut queue, (t, sb));
                out.add_eps(from, to);
            }
            for &t in &b.eps[sb as usize] {
                let to = push(&mut out, &mut map, &mut queue, (sa, t));
                out.add_eps(from, to);
            }
            for &(sym, ta) in &a.trans[sa as usize] {
                for &(sym2, tb) in &b.trans[sb as usize] {
                    if sym == sym2 {
                        let to = push(&mut out, &mut map, &mut queue, (ta, tb));
                        out.add_transition(from, sym, to);
                    }
                }
            }
        }
        out
    }

    /// States of `self` reachable from its start by some word in `L(filter)`.
    /// Used by the constraint saturation procedures: "the set of states q
    /// such that some y ∈ L(Q) leads from the start to q".
    pub fn reachable_via(&self, filter: &Nfa) -> Vec<StateId> {
        let mut seen: std::collections::HashSet<(StateId, StateId)> =
            std::collections::HashSet::new();
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
        let start = (self.start, filter.start);
        seen.insert(start);
        queue.push_back(start);
        let mut hits = vec![false; self.num_states()];
        while let Some((s, f)) = queue.pop_front() {
            if filter.accept[f as usize] {
                hits[s as usize] = true;
            }
            for &t in &self.eps[s as usize] {
                if seen.insert((t, f)) {
                    queue.push_back((t, f));
                }
            }
            for &t in &filter.eps[f as usize] {
                if seen.insert((s, t)) {
                    queue.push_back((s, t));
                }
            }
            for &(sym, ts) in &self.trans[s as usize] {
                for &(sym2, tf) in &filter.trans[f as usize] {
                    if sym == sym2 && seen.insert((ts, tf)) {
                        queue.push_back((ts, tf));
                    }
                }
            }
        }
        (0..self.num_states() as StateId)
            .filter(|&s| hits[s as usize])
            .collect()
    }

    /// True iff the language is finite: the trimmed automaton has no cycle
    /// (ε edges included).
    pub fn is_finite_lang(&self) -> bool {
        let t = self.trim();
        // DFS cycle detection, but cycles of pure ε edges do not pump words.
        // We still treat ε-cycles as harmless only if no symbol edge lies on
        // a cycle; detect cycles on the graph where symbol edges count and
        // ε edges are contracted via SCC: a language is infinite iff some
        // SCC (over all edges) contains a symbol-labeled edge.
        let n = t.num_states();
        let scc = strongly_connected_components(n, |s, f| {
            for &e in &t.eps[s] {
                f(e as usize);
            }
            for &(_, e) in &t.trans[s] {
                f(e as usize);
            }
        });
        for s in 0..n {
            for &(_, e) in &t.trans[s] {
                if scc[s] == scc[e as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Length of the longest accepted word: `Some(len)` when the language
    /// is finite and non-empty, `None` when it is infinite or empty. This
    /// is the exact depth cap for bounded-depth product evaluation of
    /// finite-language queries: no answer can lie deeper than the longest
    /// word the automaton accepts.
    pub fn longest_accepted_len(&self) -> Option<usize> {
        let t = self.trim();
        if !t.accept.iter().any(|&a| a) {
            return None; // empty language: no word to bound
        }
        let n = t.num_states();
        let scc = strongly_connected_components(n, |s, f| {
            for &e in &t.eps[s] {
                f(e as usize);
            }
            for &(_, e) in &t.trans[s] {
                f(e as usize);
            }
        });
        for s in 0..n {
            for &(_, e) in &t.trans[s] {
                if scc[s] == scc[e as usize] {
                    return None; // a pumpable symbol cycle: infinite language
                }
            }
        }
        let ncomp = scc.iter().map(|&c| c + 1).max().unwrap_or(0);
        // Tarjan numbers components in reverse topological order: every
        // cross-component edge u→v has scc[v] < scc[u], so one sweep over
        // components in decreasing index order relaxes longest-path
        // distances in topological order (symbol edges weigh 1, ε weighs 0;
        // surviving cycles are ε-only and cannot change a distance).
        const UNREACH: isize = isize::MIN;
        let mut dist = vec![UNREACH; ncomp];
        dist[scc[t.start as usize]] = 0;
        let mut by_comp: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for (s, &c) in scc.iter().enumerate() {
            by_comp[c].push(s);
        }
        let mut best: isize = UNREACH;
        for c in (0..ncomp).rev() {
            if dist[c] == UNREACH {
                continue;
            }
            for &s in &by_comp[c] {
                if t.accept[s] {
                    best = best.max(dist[c]);
                }
                for &e in &t.eps[s] {
                    let tc = scc[e as usize];
                    if dist[c] > dist[tc] {
                        dist[tc] = dist[c];
                    }
                }
                for &(_, e) in &t.trans[s] {
                    let tc = scc[e as usize];
                    if dist[c] + 1 > dist[tc] {
                        dist[tc] = dist[c] + 1;
                    }
                }
            }
        }
        (best != UNREACH).then_some(best as usize)
    }

    /// The set of symbols appearing on any transition of the automaton
    /// (dead states included). Sorted and deduplicated.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .trans
            .iter()
            .flat_map(|row| row.iter().map(|&(sym, _)| sym))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Enumerate accepted words in nondecreasing length order, up to
    /// `max_len`, returning at most `cap` words. Deterministic order (length,
    /// then symbol indices). Mostly a testing and boundedness-construction
    /// aid; cost is exponential in `max_len` in the worst case.
    pub fn enumerate_words(&self, max_len: usize, cap: usize) -> Vec<Vec<Symbol>> {
        let mut out = Vec::new();
        let start = self.start_set();
        if start.is_empty() {
            return out;
        }
        let mut layer: Vec<(Vec<Symbol>, Vec<StateId>)> = vec![(Vec::new(), start)];
        let mut seen_sets: std::collections::HashMap<Vec<StateId>, usize> =
            std::collections::HashMap::new();
        for len in 0..=max_len {
            for (word, set) in &layer {
                if self.set_accepts(set) {
                    out.push(word.clone());
                    if out.len() >= cap {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next: Vec<(Vec<Symbol>, Vec<StateId>)> = Vec::new();
            let mut next_syms: std::collections::BTreeSet<Symbol> =
                std::collections::BTreeSet::new();
            for (word, set) in &layer {
                next_syms.clear();
                for &s in set {
                    for &(sym, _) in &self.trans[s as usize] {
                        next_syms.insert(sym);
                    }
                }
                for &sym in &next_syms {
                    let stepped = self.step(set, sym);
                    if stepped.is_empty() {
                        continue;
                    }
                    // Avoid re-expanding a set we have already expanded at
                    // the same or smaller depth unless it can still yield new
                    // words (different prefix). Words differ, so keep; but
                    // bound blow-up by capping the frontier.
                    let mut w = word.clone();
                    w.push(sym);
                    next.push((w, stepped));
                }
            }
            // Frontier safety valve.
            let frontier_cap = cap.saturating_mul(8).max(4096);
            if next.len() > frontier_cap {
                next.truncate(frontier_cap);
            }
            seen_sets.clear();
            layer = next;
            if layer.is_empty() {
                break;
            }
        }
        out
    }

    /// Graphviz rendering (for docs/examples).
    pub fn dot(&self, alphabet: &Alphabet) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph nfa {\n  rankdir=LR;\n");
        let _ = writeln!(s, "  start [shape=point];");
        let _ = writeln!(s, "  start -> q{};", self.start);
        for q in 0..self.num_states() {
            let shape = if self.accept[q] {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  q{q} [shape={shape}];");
            for &(sym, t) in &self.trans[q] {
                let _ = writeln!(s, "  q{q} -> q{t} [label=\"{}\"];", alphabet.name(sym));
            }
            for &t in &self.eps[q] {
                let _ = writeln!(s, "  q{q} -> q{t} [label=\"ε\"];");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Tarjan SCC over a graph given by a successor callback. Returns the
/// component index of each node (components are numbered arbitrarily).
pub fn strongly_connected_components<F>(n: usize, succ: F) -> Vec<usize>
where
    F: Fn(usize, &mut dyn FnMut(usize)),
{
    // Iterative Tarjan to avoid recursion limits on large automata.
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // call stack: (node, iterator position over successors)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            // collect successors each visit (cheap for our small degrees)
            let mut succs = Vec::new();
            succ(v, &mut |w| succs.push(w));
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack non-empty");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    fn re(ab: &mut Alphabet, s: &str) -> Regex {
        parse_regex(ab, s).unwrap()
    }

    fn w(ab: &mut Alphabet, s: &str) -> Vec<Symbol> {
        if s.is_empty() {
            vec![]
        } else {
            s.chars().map(|c| ab.intern(&c.to_string())).collect()
        }
    }

    #[test]
    fn thompson_accepts_expected_words() {
        let mut ab = Alphabet::new();
        let r = re(&mut ab, "a.(b+c)*.d");
        let n = Nfa::thompson(&r);
        assert!(n.accepts(&w(&mut ab, "ad")));
        assert!(n.accepts(&w(&mut ab, "abd")));
        assert!(n.accepts(&w(&mut ab, "abcbcd")));
        assert!(!n.accepts(&w(&mut ab, "a")));
        assert!(!n.accepts(&w(&mut ab, "d")));
        assert!(!n.accepts(&w(&mut ab, "abdd")));
    }

    #[test]
    fn epsilon_and_empty_languages() {
        let mut ab = Alphabet::new();
        let e = Nfa::thompson(&re(&mut ab, "()"));
        assert!(e.accepts(&[]));
        assert!(!e.accepts(&w(&mut ab, "a")));
        let v = Nfa::thompson(&re(&mut ab, "[]"));
        assert!(!v.accepts(&[]));
        assert!(v.is_empty_lang());
        assert!(!e.is_empty_lang());
    }

    #[test]
    fn shortest_accepted_finds_minimum() {
        let mut ab = Alphabet::new();
        let r = re(&mut ab, "a.a.a + b.b");
        let n = Nfa::thompson(&r);
        assert_eq!(n.shortest_accepted().unwrap().len(), 2);
        let r2 = re(&mut ab, "c* ");
        assert_eq!(Nfa::thompson(&r2).shortest_accepted().unwrap().len(), 0);
    }

    #[test]
    fn step_tracks_quotients() {
        let mut ab = Alphabet::new();
        let r = re(&mut ab, "a.b*");
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let n = Nfa::thompson(&r);
        let s0 = n.start_set();
        assert!(!n.set_accepts(&s0));
        let s1 = n.step(&s0, a);
        assert!(n.set_accepts(&s1)); // ε ∈ b*
        let s2 = n.step(&s1, b);
        assert!(n.set_accepts(&s2));
        let dead = n.step(&s1, a);
        assert!(dead.is_empty());
    }

    #[test]
    fn union_concat_star_combinators() {
        let mut ab = Alphabet::new();
        let na = Nfa::thompson(&re(&mut ab, "a"));
        let nb = Nfa::thompson(&re(&mut ab, "b"));
        let u = Nfa::union(&na, &nb);
        assert!(u.accepts(&w(&mut ab, "a")));
        assert!(u.accepts(&w(&mut ab, "b")));
        assert!(!u.accepts(&w(&mut ab, "ab")));
        let c = Nfa::concat(&na, &nb);
        assert!(c.accepts(&w(&mut ab, "ab")));
        assert!(!c.accepts(&w(&mut ab, "a")));
        let s = Nfa::star(&c);
        assert!(s.accepts(&[]));
        assert!(s.accepts(&w(&mut ab, "abab")));
        assert!(!s.accepts(&w(&mut ab, "aba")));
    }

    #[test]
    fn first_and_last_symbols() {
        let mut ab = Alphabet::new();
        let n = Nfa::thompson(&re(&mut ab, "a.(b+c)*.d"));
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let c = ab.get("c").unwrap();
        let d = ab.get("d").unwrap();
        assert_eq!(n.first_symbols(), vec![a]);
        assert_eq!(n.last_symbols(), vec![d]);
        // stars make both ends porous
        let star = Nfa::thompson(&re(&mut ab, "(a+b)*.c"));
        let mut firsts = star.first_symbols();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![a, b, c]);
        assert_eq!(star.last_symbols(), vec![c]);
        // dead branches contribute nothing
        let dead = Nfa::thompson(&re(&mut ab, "a + b.[]"));
        assert_eq!(dead.first_symbols(), vec![a]);
        assert_eq!(dead.last_symbols(), vec![a]);
        // the reverse automaton swaps the two sets
        let rev = n.reverse();
        assert_eq!(rev.first_symbols(), vec![d]);
        assert_eq!(rev.last_symbols(), vec![a]);
    }

    #[test]
    fn reverse_language() {
        let mut ab = Alphabet::new();
        let n = Nfa::thompson(&re(&mut ab, "a.b.c"));
        let r = n.reverse();
        assert!(r.accepts(&w(&mut ab, "cba")));
        assert!(!r.accepts(&w(&mut ab, "abc")));
    }

    #[test]
    fn intersection_products() {
        let mut ab = Alphabet::new();
        let n1 = Nfa::thompson(&re(&mut ab, "a*.b"));
        let n2 = Nfa::thompson(&re(&mut ab, "a.a*.b + b"));
        let i = Nfa::intersection(&n1, &n2);
        assert!(i.accepts(&w(&mut ab, "ab")));
        assert!(i.accepts(&w(&mut ab, "b")));
        assert!(i.accepts(&w(&mut ab, "aab")));
        assert!(!i.accepts(&w(&mut ab, "a")));
        let n3 = Nfa::thompson(&re(&mut ab, "c"));
        assert!(Nfa::intersection(&n1, &n3).is_empty_lang());
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let mut n = Nfa::empty();
        let acc = n.add_state(true);
        let dead = n.add_state(false);
        n.add_transition(n.start(), a, acc);
        n.add_transition(n.start(), a, dead); // dead end
        let t = n.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[a]));
    }

    #[test]
    fn finiteness_detection() {
        let mut ab = Alphabet::new();
        assert!(Nfa::thompson(&re(&mut ab, "a.b + c")).is_finite_lang());
        assert!(!Nfa::thompson(&re(&mut ab, "a.b*")).is_finite_lang());
        assert!(Nfa::thompson(&re(&mut ab, "[]")).is_finite_lang());
        // star of epsilon is finite
        assert!(Nfa::thompson(&re(&mut ab, "()*")).is_finite_lang());
        // unreachable cycles don't count
        let a = ab.get("a").unwrap();
        let mut n = Nfa::thompson(&re(&mut ab, "a"));
        let s1 = n.add_state(false);
        n.add_transition(s1, a, s1); // disconnected loop
        assert!(n.is_finite_lang());
    }

    #[test]
    fn longest_accepted_len_matches_language() {
        let mut ab = Alphabet::new();
        // finite: longest word is a.b.c (3) even with a shorter arm
        let n = Nfa::thompson(&re(&mut ab, "a.b.c + a"));
        assert_eq!(n.longest_accepted_len(), Some(3));
        // ε-only language
        assert_eq!(
            Nfa::thompson(&re(&mut ab, "()")).longest_accepted_len(),
            Some(0)
        );
        // star of ε is still finite with max length 0
        assert_eq!(
            Nfa::thompson(&re(&mut ab, "()*")).longest_accepted_len(),
            Some(0)
        );
        // infinite and empty languages have no bound
        assert_eq!(
            Nfa::thompson(&re(&mut ab, "a.b*")).longest_accepted_len(),
            None
        );
        assert_eq!(
            Nfa::thompson(&re(&mut ab, "[]")).longest_accepted_len(),
            None
        );
        // dead recursive branch does not spoil the bound
        let n = Nfa::thompson(&re(&mut ab, "a.b + c.c*.[]"));
        assert_eq!(n.longest_accepted_len(), Some(2));
    }

    #[test]
    fn symbols_lists_all_transition_labels() {
        let mut ab = Alphabet::new();
        let n = Nfa::thompson(&re(&mut ab, "a.(b+c)*.d"));
        let syms: Vec<String> = n
            .symbols()
            .iter()
            .map(|&s| ab.name(s).to_string())
            .collect();
        assert_eq!(syms, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn enumerate_words_in_order() {
        let mut ab = Alphabet::new();
        let n = Nfa::thompson(&re(&mut ab, "a.b* + b"));
        let words = n.enumerate_words(3, 100);
        let rendered: Vec<String> = words.iter().map(|w| ab.render_word(w)).collect();
        assert_eq!(rendered, vec!["a", "b", "a.b", "a.b.b"]);
    }

    #[test]
    fn reachable_via_filters_by_language() {
        let mut ab = Alphabet::new();
        // self: chain a b c; filter: a.b
        let n = Nfa::thompson(&re(&mut ab, "a.b.c"));
        let f = Nfa::thompson(&re(&mut ab, "a.b"));
        let hits = n.reachable_via(&f);
        // Exactly the states at "distance a.b" from start should be hit.
        assert!(!hits.is_empty());
        // From each hit state, reading c must reach acceptance.
        let c = ab.get("c").unwrap();
        let set = n.eps_closure(&hits);
        let after = n.step(&set, c);
        assert!(n.set_accepts(&after));
    }

    #[test]
    fn add_nfa_glues_with_offset() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let base = Nfa::from_word(&[a]);
        let mut big = Nfa::empty();
        let off = big.add_nfa(&base);
        big.add_eps(big.start(), base.start() + off);
        big.set_accepting(off + 1, true);
        assert!(big.accepts(&[a]));
    }

    #[test]
    fn scc_helper_identifies_components() {
        // 0 -> 1 -> 2 -> 0 cycle, 3 isolated
        let edges = [vec![1], vec![2], vec![0], vec![]];
        let comp = strongly_connected_components(4, |v, f| {
            for &w in &edges[v] {
                f(w);
            }
        });
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }
}
