//! Seeded random generators for regexes and words — workload generation for
//! benches and fuzz-style tests. All generators take an explicit RNG so that
//! every experiment in `rpq-bench` is reproducible from a seed.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::alphabet::Symbol;
use crate::nfa::Nfa;
use crate::regex::Regex;

/// Configuration for [`random_regex`].
#[derive(Clone, Debug)]
pub struct RegexGenConfig {
    /// Symbols to draw leaves from.
    pub symbols: Vec<Symbol>,
    /// Maximum AST depth.
    pub max_depth: usize,
    /// Relative weight of star nodes (vs. union/concat), 0–100.
    pub star_weight: u32,
    /// Probability (0–100) that an internal node is a union vs. concat.
    pub union_weight: u32,
    /// Fanout of union/concat nodes.
    pub fanout: usize,
}

impl RegexGenConfig {
    /// A reasonable default over the given symbols.
    pub fn new(symbols: Vec<Symbol>) -> Self {
        RegexGenConfig {
            symbols,
            max_depth: 4,
            star_weight: 20,
            union_weight: 50,
            fanout: 3,
        }
    }
}

/// Generate a random (normalized) regex.
pub fn random_regex(rng: &mut StdRng, cfg: &RegexGenConfig) -> Regex {
    fn go(rng: &mut StdRng, cfg: &RegexGenConfig, depth: usize) -> Regex {
        if depth == 0 || rng.random_range(0..100) < 25 {
            // leaf
            return match rng.random_range(0..10) {
                0 => Regex::Epsilon,
                _ => Regex::sym(*cfg.symbols.choose(rng).expect("non-empty symbols")),
            };
        }
        let roll = rng.random_range(0..100);
        if roll < cfg.star_weight {
            go(rng, cfg, depth - 1).star()
        } else {
            let k = rng.random_range(2..=cfg.fanout.max(2));
            let parts: Vec<Regex> = (0..k).map(|_| go(rng, cfg, depth - 1)).collect();
            if rng.random_range(0..100) < cfg.union_weight {
                Regex::union(parts)
            } else {
                Regex::concat(parts)
            }
        }
    }
    go(rng, cfg, cfg.max_depth)
}

/// Sample a word from `L(r)` by a random accepting-biased walk on the
/// Thompson NFA. Returns `None` when the language is empty or the walk
/// exceeds `max_len` without reaching acceptance.
pub fn sample_word(rng: &mut StdRng, r: &Regex, max_len: usize) -> Option<Vec<Symbol>> {
    let nfa = Nfa::thompson(r).trim();
    if nfa.num_states() == 1 && !nfa.is_accepting(nfa.start()) && nfa.num_transitions() == 0 {
        // canonical empty automaton
        if !nfa.is_accepting(nfa.start()) {
            return None;
        }
    }
    let mut set = nfa.start_set();
    if set.is_empty() {
        return None;
    }
    let mut word = Vec::new();
    for _ in 0..=max_len {
        let accepting = nfa.set_accepts(&set);
        // stop early with probability growing in word length
        if accepting && (word.len() >= max_len || rng.random_range(0..100) < 40) {
            return Some(word);
        }
        // collect outgoing symbols
        let mut syms: Vec<Symbol> = Vec::new();
        for &s in &set {
            for &(sym, _) in nfa.transitions(s) {
                if !syms.contains(&sym) {
                    syms.push(sym);
                }
            }
        }
        if syms.is_empty() {
            return if accepting { Some(word) } else { None };
        }
        let sym = *syms.choose(rng).expect("non-empty syms");
        let next = nfa.step(&set, sym);
        if next.is_empty() {
            return if accepting { Some(word) } else { None };
        }
        word.push(sym);
        set = next;
    }
    if nfa.set_accepts(&set) {
        Some(word)
    } else {
        None
    }
}

/// A uniformly random word over `symbols` of length `len`.
pub fn random_word(rng: &mut StdRng, symbols: &[Symbol], len: usize) -> Vec<Symbol> {
    (0..len)
        .map(|_| *symbols.choose(rng).expect("non-empty symbols"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_regex_is_deterministic_per_seed() {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let cfg = RegexGenConfig::new(ab.symbols().collect());
        let r1 = random_regex(&mut StdRng::seed_from_u64(7), &cfg);
        let r2 = random_regex(&mut StdRng::seed_from_u64(7), &cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn sampled_words_are_members() {
        let ab = Alphabet::from_names(["a", "b"]);
        let cfg = RegexGenConfig::new(ab.symbols().collect());
        let mut rng = rng();
        let mut sampled = 0;
        for _ in 0..50 {
            let r = random_regex(&mut rng, &cfg);
            let nfa = Nfa::thompson(&r);
            for _ in 0..5 {
                if let Some(w) = sample_word(&mut rng, &r, 16) {
                    assert!(nfa.accepts(&w), "sampled non-member from {r:?}");
                    sampled += 1;
                }
            }
        }
        assert!(sampled > 20, "sampler almost never produced words");
    }

    #[test]
    fn sample_word_on_empty_language() {
        let mut rng = rng();
        assert_eq!(sample_word(&mut rng, &Regex::Empty, 8), None);
        assert_eq!(sample_word(&mut rng, &Regex::Epsilon, 8), Some(vec![]));
    }

    #[test]
    fn random_word_length() {
        let ab = Alphabet::from_names(["a", "b"]);
        let syms: Vec<Symbol> = ab.symbols().collect();
        let w = random_word(&mut rng(), &syms, 17);
        assert_eq!(w.len(), 17);
    }
}
