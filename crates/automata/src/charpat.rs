//! Character-level string patterns for *general path queries* (Section 2.4).
//!
//! Languages like Lorel view labels as character strings and allow regular
//! expressions at two levels: over characters within a label and over labels
//! along a path. The paper's example uses grep-style patterns such as
//! `[sS]ections?` and `content=(.)*SGML(.)*`. This module implements that
//! character level: a small pattern AST, a grep-ish parser, and a matcher.
//! The path level reuses the ordinary [`crate::regex::Regex`] machinery via
//! the `μ` translation implemented in `rpq-core`.

use std::fmt;

/// A character-level pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CharPattern {
    /// Matches the empty string.
    Epsilon,
    /// A literal character.
    Char(char),
    /// `.` — any single character.
    Any,
    /// A character class: ranges, possibly negated (`[a-z]`, `[^0-9]`).
    Class {
        /// Inclusive ranges; single chars are `(c, c)`.
        ranges: Vec<(char, char)>,
        /// If true, matches any char *not* in the ranges.
        negated: bool,
    },
    /// Concatenation.
    Concat(Vec<CharPattern>),
    /// Alternation.
    Union(Vec<CharPattern>),
    /// Kleene star.
    Star(Box<CharPattern>),
}

impl CharPattern {
    /// A literal string pattern.
    pub fn literal(s: &str) -> CharPattern {
        CharPattern::Concat(s.chars().map(CharPattern::Char).collect())
    }

    fn matches_char(&self, c: char) -> bool {
        match self {
            CharPattern::Char(p) => *p == c,
            CharPattern::Any => true,
            CharPattern::Class { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
            _ => false,
        }
    }

    /// Match against a whole string (anchored at both ends, like the paper's
    /// label patterns). Thompson-style NFA simulation over positions.
    pub fn matches(&self, s: &str) -> bool {
        // Compile once per call — patterns are small; callers that match many
        // labels should use `CompiledPattern`.
        CompiledPattern::compile(self).matches(s)
    }
}

impl fmt::Display for CharPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharPattern::Epsilon => write!(f, "()"),
            CharPattern::Char(c) => {
                if "()[]|*+?.\\^".contains(*c) {
                    write!(f, "\\{c}")
                } else {
                    write!(f, "{c}")
                }
            }
            CharPattern::Any => write!(f, "."),
            CharPattern::Class { ranges, negated } => {
                write!(f, "[")?;
                if *negated {
                    write!(f, "^")?;
                }
                for &(lo, hi) in ranges {
                    if lo == hi {
                        write!(f, "{lo}")?;
                    } else {
                        write!(f, "{lo}-{hi}")?;
                    }
                }
                write!(f, "]")
            }
            CharPattern::Concat(ps) => {
                for p in ps {
                    match p {
                        CharPattern::Union(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            CharPattern::Union(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            CharPattern::Star(p) => match **p {
                CharPattern::Char(_) | CharPattern::Any | CharPattern::Class { .. } => {
                    write!(f, "{p}*")
                }
                _ => write!(f, "({p})*"),
            },
        }
    }
}

/// Parse a grep-E-style pattern: literals, `.`, `[...]` classes (with ranges
/// and `^` negation), `(...)`, `|`, postfix `*` `+` `?`, `\` escapes.
pub fn parse_char_pattern(src: &str) -> Result<CharPattern, String> {
    struct P<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }
    impl P<'_> {
        fn union(&mut self) -> Result<CharPattern, String> {
            let mut arms = vec![self.concat()?];
            while self.chars.peek() == Some(&'|') {
                self.chars.next();
                arms.push(self.concat()?);
            }
            Ok(if arms.len() == 1 {
                arms.pop().expect("one arm")
            } else {
                CharPattern::Union(arms)
            })
        }
        fn concat(&mut self) -> Result<CharPattern, String> {
            let mut parts = Vec::new();
            while let Some(&c) = self.chars.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                parts.push(self.postfix()?);
            }
            Ok(match parts.len() {
                0 => CharPattern::Epsilon,
                1 => parts.pop().expect("one part"),
                _ => CharPattern::Concat(parts),
            })
        }
        fn postfix(&mut self) -> Result<CharPattern, String> {
            let mut base = self.atom()?;
            while let Some(&c) = self.chars.peek() {
                match c {
                    '*' => {
                        self.chars.next();
                        base = CharPattern::Star(Box::new(base));
                    }
                    '+' => {
                        self.chars.next();
                        base = CharPattern::Concat(vec![
                            base.clone(),
                            CharPattern::Star(Box::new(base)),
                        ]);
                    }
                    '?' => {
                        self.chars.next();
                        base = CharPattern::Union(vec![CharPattern::Epsilon, base]);
                    }
                    _ => break,
                }
            }
            Ok(base)
        }
        fn atom(&mut self) -> Result<CharPattern, String> {
            let Some(c) = self.chars.next() else {
                return Err("unexpected end of pattern".into());
            };
            match c {
                '(' => {
                    let inner = self.union()?;
                    if self.chars.next() != Some(')') {
                        return Err("expected ')'".into());
                    }
                    Ok(inner)
                }
                '.' => Ok(CharPattern::Any),
                '[' => {
                    let mut negated = false;
                    if self.chars.peek() == Some(&'^') {
                        negated = true;
                        self.chars.next();
                    }
                    let mut ranges = Vec::new();
                    loop {
                        let Some(lo) = self.chars.next() else {
                            return Err("unterminated character class".into());
                        };
                        if lo == ']' {
                            if ranges.is_empty() {
                                return Err("empty character class".into());
                            }
                            break;
                        }
                        let lo = if lo == '\\' {
                            self.chars.next().ok_or("dangling escape in class")?
                        } else {
                            lo
                        };
                        if self.chars.peek() == Some(&'-') {
                            self.chars.next();
                            match self.chars.peek() {
                                Some(&']') | None => {
                                    // trailing '-' is a literal
                                    ranges.push((lo, lo));
                                    ranges.push(('-', '-'));
                                }
                                Some(&hi) => {
                                    self.chars.next();
                                    if hi < lo {
                                        return Err(format!("invalid range {lo}-{hi}"));
                                    }
                                    ranges.push((lo, hi));
                                }
                            }
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Ok(CharPattern::Class { ranges, negated })
                }
                '\\' => {
                    let e = self.chars.next().ok_or("dangling escape")?;
                    Ok(CharPattern::Char(e))
                }
                '*' | '+' | '?' => Err(format!("dangling postfix operator {c:?}")),
                ')' | ']' => Err(format!("unbalanced {c:?}")),
                other => Ok(CharPattern::Char(other)),
            }
        }
    }
    let mut p = P {
        chars: src.chars().peekable(),
    };
    let pat = p.union()?;
    if p.chars.next().is_some() {
        return Err("trailing input after pattern".into());
    }
    Ok(pat)
}

/// A pattern compiled to a position-NFA for repeated matching.
#[derive(Clone, Debug)]
pub struct CompiledPattern {
    // states: 0 = start; transitions carry a predicate index or ε
    eps: Vec<Vec<usize>>,
    sym: Vec<Vec<(PredId, usize)>>,
    preds: Vec<CharPattern>,
    accept: usize,
}

type PredId = usize;

impl CompiledPattern {
    /// Compile a pattern.
    pub fn compile(p: &CharPattern) -> CompiledPattern {
        let mut c = CompiledPattern {
            eps: vec![Vec::new(), Vec::new()],
            sym: vec![Vec::new(), Vec::new()],
            preds: Vec::new(),
            accept: 1,
        };
        c.build(p, 0, 1);
        c
    }

    fn add_state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.sym.push(Vec::new());
        self.eps.len() - 1
    }

    fn build(&mut self, p: &CharPattern, from: usize, to: usize) {
        match p {
            CharPattern::Epsilon => self.eps[from].push(to),
            CharPattern::Char(_) | CharPattern::Any | CharPattern::Class { .. } => {
                let id = self.preds.len();
                self.preds.push(p.clone());
                self.sym[from].push((id, to));
            }
            CharPattern::Concat(parts) => {
                let mut cur = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.add_state()
                    };
                    self.build(part, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps[from].push(to);
                }
            }
            CharPattern::Union(parts) => {
                for part in parts {
                    self.build(part, from, to);
                }
            }
            CharPattern::Star(inner) => {
                let hub = self.add_state();
                self.eps[from].push(hub);
                self.eps[hub].push(to);
                let back = self.add_state();
                self.build(inner, hub, back);
                self.eps[back].push(hub);
            }
        }
    }

    fn closure(&self, set: &mut [bool]) {
        let mut stack: Vec<usize> = set
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !set[t] {
                    set[t] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// Anchored match of `s`.
    pub fn matches(&self, s: &str) -> bool {
        let n = self.eps.len();
        let mut cur = vec![false; n];
        cur[0] = true;
        self.closure(&mut cur);
        for ch in s.chars() {
            let mut next = vec![false; n];
            let mut any = false;
            for (st, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for &(pid, to) in &self.sym[st] {
                    if self.preds[pid].matches_char(ch) {
                        next[to] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            self.closure(&mut next);
            cur = next;
        }
        cur[self.accept]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        parse_char_pattern(pat).unwrap().matches(s)
    }

    #[test]
    fn paper_example_patterns() {
        // "[sS]ections?" from Section 2.4
        assert!(m("[sS]ections?", "section"));
        assert!(m("[sS]ections?", "Sections"));
        assert!(!m("[sS]ections?", "sectionss"));
        assert!(!m("[sS]ections?", "ection"));
        // "[pP]aragraph"
        assert!(m("[pP]aragraph", "paragraph"));
        assert!(m("[pP]aragraph", "Paragraph"));
        assert!(!m("[pP]aragraph", "paragraphs"));
    }

    #[test]
    fn content_selection_pattern() {
        // content=(.)*SGML(.)* from Section 2.4
        let p = "content=(.)*SGML(.)*";
        assert!(m(p, "content=all about SGML here"));
        assert!(m(p, "content=SGML"));
        assert!(!m(p, "content=XML only"));
        assert!(!m(p, "SGML"));
    }

    #[test]
    fn example21_patterns() {
        // a*b, ba*, c, dd* from Example 2.1
        assert!(m("a*b", "b"));
        assert!(m("a*b", "aab"));
        assert!(!m("a*b", "ba"));
        assert!(m("ba*", "b"));
        assert!(m("ba*", "baa"));
        assert!(!m("ba*", "ab"));
        assert!(m("dd*", "d"));
        assert!(m("dd*", "ddd"));
        assert!(!m("dd*", ""));
    }

    #[test]
    fn classes_ranges_negation() {
        assert!(m("[a-c]x", "bx"));
        assert!(!m("[a-c]x", "dx"));
        assert!(m("[^a-c]x", "dx"));
        assert!(!m("[^a-c]x", "ax"));
        assert!(m("[a-c-]", "-"));
    }

    #[test]
    fn escapes_and_specials() {
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m("a.b", "axb"));
        assert!(m(r"\(x\)", "(x)"));
    }

    #[test]
    fn alternation_and_plus() {
        assert!(m("ab|cd", "ab"));
        assert!(m("ab|cd", "cd"));
        assert!(!m("ab|cd", "ad"));
        assert!(m("a+", "aaa"));
        assert!(!m("a+", ""));
        assert!(m("a?", ""));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_char_pattern("(ab").is_err());
        assert!(parse_char_pattern("[ab").is_err());
        assert!(parse_char_pattern("*a").is_err());
        assert!(parse_char_pattern("a)").is_err());
        assert!(parse_char_pattern("[]").is_err());
    }

    #[test]
    fn display_round_trip() {
        for src in ["[sS]ections?", "a*b|ba*", "content=(.)*SGML(.)*", "[^x-z]+"] {
            let p = parse_char_pattern(src).unwrap();
            let printed = format!("{p}");
            let reparsed = parse_char_pattern(&printed).unwrap();
            // Compare by behavior on a sample of strings.
            for s in ["", "a", "b", "ab", "ba", "section", "Sections", "xx", "wq"] {
                assert_eq!(
                    p.matches(s),
                    reparsed.matches(s),
                    "{src} vs {printed} on {s}"
                );
            }
        }
    }

    #[test]
    fn compiled_pattern_reuse() {
        let p = parse_char_pattern("(ab)*").unwrap();
        let c = CompiledPattern::compile(&p);
        assert!(c.matches(""));
        assert!(c.matches("abab"));
        assert!(!c.matches("aba"));
    }
}
