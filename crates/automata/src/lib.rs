//! # rpq-automata
//!
//! Regular expressions and finite automata — the language-theory substrate
//! for the reproduction of *Abiteboul & Vianu, "Regular Path Queries with
//! Constraints"* (PODS'97 / JCSS'99).
//!
//! The paper assumes "familiarity with basic notions of formal language
//! theory" (Section 2.2) and leans on: regular expressions and their
//! quotients, NFAs and products of NFAs, determinization, finiteness of
//! regular languages, and (for Theorem 4.3(ii)) the PSPACE procedure for
//! regular-language inclusion. This crate provides all of it:
//!
//! * [`Alphabet`] / [`Symbol`] — interned labels shared by queries, graphs
//!   and constraints.
//! * [`Regex`] — normalized regular expressions with the paper's syntax
//!   (union `+`, concatenation, Kleene `*`), parser ([`parse_regex`]) and
//!   pretty-printer.
//! * [`mod@derivative`] — Brzozowski derivatives (the paper's quotients `p/l`)
//!   and the finite closure of repeated quotients ([`DerivativeClosure`]).
//! * [`Nfa`] / [`Dfa`] — Thompson construction, subset construction,
//!   minimization, products, reversal, trimming, finiteness.
//! * [`ops`] — inclusion and equivalence (naive, antichain, Hopcroft–Karp).
//! * [`charpat`] — character-level label patterns for general path queries
//!   (Section 2.4).
//! * [`random`] — seeded generators for reproducible workloads.
//!
//! ## Example
//!
//! ```
//! use rpq_automata::{parse_regex, Alphabet, Nfa, ops};
//!
//! let mut ab = Alphabet::new();
//! let p = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
//! let q = parse_regex(&mut ab, "(a.b)*.a.c").unwrap();
//! assert!(ops::regex_equivalent(&p, &q)); // a(ba)*c = (ab)*ac
//!
//! let nfa = Nfa::thompson(&p);
//! let a = ab.get("a").unwrap();
//! let c = ab.get("c").unwrap();
//! assert!(nfa.accepts(&[a, c]));
//! ```

#![warn(missing_docs)]

pub mod alphabet;
pub mod charpat;
pub mod derivative;
pub mod dfa;
pub mod elim;
pub mod glushkov;
pub mod growth;
pub mod nfa;
pub mod ops;
pub mod parser;
pub mod random;
pub mod regex;
pub mod simplify;

pub use alphabet::{Alphabet, Symbol};
pub use derivative::{derivative, word_derivative, DerivativeClosure};
pub use dfa::Dfa;
pub use elim::nfa_to_regex;
pub use glushkov::glushkov;
pub use growth::{classify_regex, Growth};
pub use nfa::{Nfa, StateId};
pub use parser::{parse_regex, parse_regex_embedded, parse_word, ParseError};
pub use regex::Regex;
pub use simplify::{simplify, simplify_deep, simplify_with, SimplifyConfig};
