//! The Glushkov (position) automaton — an ε-free alternative to Thompson.
//!
//! States are the symbol *positions* of the expression plus one initial
//! state; transitions follow the classical `first`/`last`/`follow` sets.
//! The result has exactly `positions + 1` states and no ε-transitions,
//! which makes the product-automaton evaluation of Section 2.2 tighter
//! (every (state, node) pair corresponds to real progress through the
//! query). Bench `t1_eval_scaling` compares the two constructions.

use std::collections::HashMap;

use crate::nfa::Nfa;
use crate::regex::Regex;

/// Position index within the linearized expression.
type Pos = usize;

struct Sets {
    nullable: bool,
    first: Vec<Pos>,
    last: Vec<Pos>,
}

fn union(a: &[Pos], b: &[Pos]) -> Vec<Pos> {
    let mut out = a.to_vec();
    for &x in b {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

/// Build the Glushkov automaton for `r`. The language equals
/// [`Nfa::thompson`]'s (property-tested); the automaton is ε-free.
pub fn glushkov(r: &Regex) -> Nfa {
    // Linearize: assign positions to symbol occurrences left to right.
    let mut symbols_at: Vec<crate::alphabet::Symbol> = Vec::new();
    let mut follow: HashMap<Pos, Vec<Pos>> = HashMap::new();

    fn go(
        r: &Regex,
        symbols_at: &mut Vec<crate::alphabet::Symbol>,
        follow: &mut HashMap<Pos, Vec<Pos>>,
    ) -> Sets {
        match r {
            Regex::Empty => Sets {
                nullable: false,
                first: vec![],
                last: vec![],
            },
            Regex::Epsilon => Sets {
                nullable: true,
                first: vec![],
                last: vec![],
            },
            Regex::Symbol(s) => {
                let p = symbols_at.len();
                symbols_at.push(*s);
                Sets {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Regex::Concat(parts) => {
                let mut acc = Sets {
                    nullable: true,
                    first: vec![],
                    last: vec![],
                };
                for part in parts {
                    let s = go(part, symbols_at, follow);
                    // follow: every last of acc links to every first of s
                    for &l in &acc.last {
                        let entry = follow.entry(l).or_default();
                        for &f in &s.first {
                            if !entry.contains(&f) {
                                entry.push(f);
                            }
                        }
                    }
                    acc = Sets {
                        first: if acc.nullable {
                            union(&acc.first, &s.first)
                        } else {
                            acc.first
                        },
                        last: if s.nullable {
                            union(&acc.last, &s.last)
                        } else {
                            s.last
                        },
                        nullable: acc.nullable && s.nullable,
                    };
                }
                acc
            }
            Regex::Union(parts) => {
                let mut acc = Sets {
                    nullable: false,
                    first: vec![],
                    last: vec![],
                };
                for part in parts {
                    let s = go(part, symbols_at, follow);
                    acc = Sets {
                        nullable: acc.nullable || s.nullable,
                        first: union(&acc.first, &s.first),
                        last: union(&acc.last, &s.last),
                    };
                }
                acc
            }
            Regex::Star(inner) => {
                let s = go(inner, symbols_at, follow);
                // follow: last(inner) → first(inner)
                for &l in &s.last {
                    let entry = follow.entry(l).or_default();
                    for &f in &s.first {
                        if !entry.contains(&f) {
                            entry.push(f);
                        }
                    }
                }
                Sets {
                    nullable: true,
                    first: s.first,
                    last: s.last,
                }
            }
        }
    }

    let sets = go(r, &mut symbols_at, &mut follow);

    // Build: state 0 = initial; state p+1 per position p.
    let mut nfa = Nfa::empty();
    nfa.set_accepting(nfa.start(), sets.nullable);
    for p in 0..symbols_at.len() {
        let is_last = sets.last.contains(&p);
        let s = nfa.add_state(is_last);
        debug_assert_eq!(s as usize, p + 1);
    }
    for &f in &sets.first {
        nfa.add_transition(nfa.start(), symbols_at[f], f as u32 + 1);
    }
    for (p, succs) in &follow {
        for &q in succs {
            nfa.add_transition(*p as u32 + 1, symbols_at[q], q as u32 + 1);
        }
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::parser::parse_regex;

    fn words_up_to(syms: &[Symbol], n: usize) -> Vec<Vec<Symbol>> {
        let mut all: Vec<Vec<Symbol>> = vec![vec![]];
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..n {
            let mut next = Vec::new();
            for w in &layer {
                for &s in syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            layer = next;
        }
        all
    }

    #[test]
    fn agrees_with_thompson_on_suite() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        ab.intern("c");
        let syms: Vec<Symbol> = ab.symbols().collect();
        for src in [
            "a",
            "a.b.c",
            "a+b",
            "a*",
            "(a+b)*.c",
            "a.(b.a)*.c",
            "(a.b)* + c.c*",
            "()",
            "[]",
            "(a+b+c)*",
            "a?.b*.c?",
            "(a*.b*)*",
        ] {
            let r = parse_regex(&mut ab, src).unwrap();
            let g = glushkov(&r);
            let t = Nfa::thompson(&r);
            for w in words_up_to(&syms, 4) {
                assert_eq!(g.accepts(&w), t.accepts(&w), "{src} on {w:?}");
            }
        }
    }

    #[test]
    fn is_epsilon_free_and_small() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a.(b+c)*.d").unwrap();
        let g = glushkov(&r);
        for s in 0..g.num_states() as u32 {
            assert!(g.eps_transitions(s).is_empty(), "ε edge at {s}");
        }
        // 4 positions + initial
        assert_eq!(g.num_states(), 5);
        let t = Nfa::thompson(&r);
        assert!(g.num_states() <= t.num_states());
    }

    #[test]
    fn empty_and_epsilon() {
        let g = glushkov(&Regex::Empty);
        assert!(g.is_empty_lang());
        let e = glushkov(&Regex::Epsilon);
        assert!(e.accepts(&[]));
        assert_eq!(e.num_states(), 1);
    }
}
