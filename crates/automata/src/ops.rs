//! Language-level decision procedures: inclusion and equivalence.
//!
//! Regular-expression equivalence is PSPACE-complete (the paper cites this
//! via \[15\] when bounding Theorem 4.3(ii)), so every algorithm here is
//! worst-case exponential; they differ enormously in practice:
//!
//! * [`included_naive`] — determinize both sides, test `A ∩ ¬B = ∅`.
//! * [`included_antichain`] — on-the-fly product of NFA states of `A` with
//!   subset-states of `B`, pruned by the antichain subsumption order.
//! * [`equivalent_hopcroft_karp`] — union-find bisimulation over lazily
//!   determinized subset pairs.
//!
//! Bench `t7_regex_ops` compares them (an ablation the paper's complexity
//! remarks predict: the antichain/HK methods win as expressions grow).

use std::collections::{HashMap, VecDeque};

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use crate::regex::Regex;

/// Outcome of an inclusion check: either it holds, or a counterexample word
/// in `L(a) \ L(b)` is produced.
pub type InclusionResult = Result<(), Vec<Symbol>>;

/// The smallest complete-DFA alphabet size covering both automata:
/// `max symbol index + 1` over the transitions of `a` and `b` (at least 1,
/// so degenerate symbol-free automata still determinize). Deriving sigma
/// from the automata themselves — instead of a caller guess like
/// `Alphabet::len()` — keeps [`included_naive`] sound when the interned
/// alphabet is wider than the expressions under test, and cheap when it is
/// much wider.
pub fn union_sigma(a: &Nfa, b: &Nfa) -> usize {
    let top = |n: &Nfa| n.symbols().last().map_or(0, |s| s.index() + 1);
    top(a).max(top(b)).max(1)
}

/// Naive inclusion via full determinization: `L(a) ⊆ L(b)`.
///
/// `sigma` must be at least [`union_sigma`]`(a, b)` — symbols outside it
/// would silently vanish from the determinized alphabet.
pub fn included_naive(a: &Nfa, b: &Nfa, sigma: usize) -> InclusionResult {
    let da = Dfa::from_nfa(a, sigma);
    let db = Dfa::from_nfa(b, sigma);
    let diff = Dfa::product(&da, &db, |x, y| x && !y);
    match diff.shortest_accepted() {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Antichain-based inclusion check: `L(a) ⊆ L(b)`.
///
/// Explores pairs `(q, S)` where `q` is an `a`-state and `S` a subset-state
/// of `b`; a pair is a counterexample witness when `q` accepts and `S` does
/// not. A pair `(q, S)` is *subsumed* by a visited `(q, S')` with `S' ⊆ S`:
/// any word rejected from `S` is also rejected from `S'`, so exploring the
/// superset cannot find new counterexamples.
pub fn included_antichain(a: &Nfa, b: &Nfa) -> InclusionResult {
    // Work on ε-closed representations.
    #[derive(Clone)]
    struct Node {
        q: StateId,
        set: Vec<StateId>,
        parent: usize,
        sym: Option<Symbol>,
    }

    let a_start = a.start_set();
    let b_start = b.start_set();

    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    // visited minimal sets per a-state
    let mut antichain: HashMap<StateId, Vec<Vec<StateId>>> = HashMap::new();

    let push = |nodes: &mut Vec<Node>,
                queue: &mut VecDeque<usize>,
                antichain: &mut HashMap<StateId, Vec<Vec<StateId>>>,
                node: Node|
     -> Option<usize> {
        let chain = antichain.entry(node.q).or_default();
        // subsumed if an existing set is a subset of node.set
        if chain.iter().any(|s| is_subset(s, &node.set)) {
            return None;
        }
        chain.retain(|s| !is_subset(&node.set, s));
        chain.push(node.set.clone());
        nodes.push(node);
        let id = nodes.len() - 1;
        queue.push_back(id);
        Some(id)
    };

    for &q in &a_start {
        let node = Node {
            q,
            set: b_start.clone(),
            parent: usize::MAX,
            sym: None,
        };
        push(&mut nodes, &mut queue, &mut antichain, node);
    }

    while let Some(i) = queue.pop_front() {
        let (q, set) = (nodes[i].q, nodes[i].set.clone());
        if a.is_accepting(q) && !b.set_accepts(&set) {
            // reconstruct counterexample
            let mut word = Vec::new();
            let mut cur = i;
            loop {
                let n = &nodes[cur];
                if let Some(sym) = n.sym {
                    word.push(sym);
                }
                if n.parent == usize::MAX {
                    break;
                }
                cur = n.parent;
            }
            word.reverse();
            return Err(word);
        }
        // expand: labeled successors of q (ε-moves of a folded by closure)
        for &qe in a.eps_transitions(q) {
            let node = Node {
                q: qe,
                set: set.clone(),
                parent: i,
                sym: None,
            };
            push(&mut nodes, &mut queue, &mut antichain, node);
        }
        for &(sym, qt) in a.transitions(q) {
            let next_set = b.step(&set, sym);
            let node = Node {
                q: qt,
                set: next_set,
                parent: i,
                sym: Some(sym),
            };
            push(&mut nodes, &mut queue, &mut antichain, node);
        }
    }
    Ok(())
}

fn is_subset(small: &[StateId], big: &[StateId]) -> bool {
    // both sorted
    let mut i = 0;
    for &x in small {
        while i < big.len() && big[i] < x {
            i += 1;
        }
        if i == big.len() || big[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

/// Hopcroft–Karp style equivalence on two NFAs, via lazily determinized
/// subset states and a union-find "merge and verify" loop.
pub fn equivalent_hopcroft_karp(a: &Nfa, b: &Nfa, sigma: usize) -> Result<(), Vec<Symbol>> {
    // Union-find over interned subset states from both sides.
    #[derive(Default)]
    struct Interner {
        map: HashMap<(bool, Vec<StateId>), usize>,
        accept: Vec<bool>,
    }
    impl Interner {
        fn get(&mut self, side_b: bool, set: Vec<StateId>, accepts: bool) -> usize {
            let key = (side_b, set);
            if let Some(&i) = self.map.get(&key) {
                return i;
            }
            let i = self.accept.len();
            self.accept.push(accepts);
            self.map.insert(key, i);
            i
        }
    }
    struct Uf {
        parent: Vec<usize>,
    }
    impl Uf {
        fn find(&mut self, mut x: usize) -> usize {
            while self.parent[x] != x {
                self.parent[x] = self.parent[self.parent[x]];
                x = self.parent[x];
            }
            x
        }
        fn union(&mut self, x: usize, y: usize) -> bool {
            let (rx, ry) = (self.find(x), self.find(y));
            if rx == ry {
                return false;
            }
            self.parent[rx] = ry;
            true
        }
        fn ensure(&mut self, n: usize) {
            while self.parent.len() < n {
                self.parent.push(self.parent.len());
            }
        }
    }

    let mut interner = Interner::default();
    let mut uf = Uf { parent: Vec::new() };

    let sa = a.start_set();
    let sb = b.start_set();
    let ia = interner.get(false, sa.clone(), a.set_accepts(&sa));
    let ib = interner.get(true, sb.clone(), b.set_accepts(&sb));
    uf.ensure(interner.accept.len());

    let mut queue: VecDeque<(Vec<StateId>, Vec<StateId>, Vec<Symbol>)> = VecDeque::new();
    if interner.accept[ia] != interner.accept[ib] {
        return Err(Vec::new());
    }
    uf.union(ia, ib);
    queue.push_back((sa, sb, Vec::new()));

    while let Some((xa, xb, word)) = queue.pop_front() {
        for sym in 0..sigma {
            let sym = Symbol::from_index(sym);
            let na = a.step(&xa, sym);
            let nb = b.step(&xb, sym);
            let acc_a = a.set_accepts(&na);
            let acc_b = b.set_accepts(&nb);
            let ja = interner.get(false, na.clone(), acc_a);
            let jb = interner.get(true, nb.clone(), acc_b);
            uf.ensure(interner.accept.len());
            if acc_a != acc_b {
                let mut w = word.clone();
                w.push(sym);
                return Err(w);
            }
            let (ra, rb) = (uf.find(ja), uf.find(jb));
            if ra != rb {
                uf.union(ra, rb);
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((na, nb, w));
            }
        }
    }
    Ok(())
}

/// Language equivalence via two antichain inclusion checks; returns a word in
/// the symmetric difference on failure.
pub fn equivalent(a: &Nfa, b: &Nfa) -> Result<(), Vec<Symbol>> {
    included_antichain(a, b)?;
    included_antichain(b, a)
}

/// Regex-level convenience: `L(p) ⊆ L(q)`?
pub fn regex_included(p: &Regex, q: &Regex) -> bool {
    included_antichain(&Nfa::thompson(p), &Nfa::thompson(q)).is_ok()
}

/// Regex-level convenience: `L(p) = L(q)`?
pub fn regex_equivalent(p: &Regex, q: &Regex) -> bool {
    equivalent(&Nfa::thompson(p), &Nfa::thompson(q)).is_ok()
}

/// Regex-level counterexample: a word in `L(p) Δ L(q)` if the languages
/// differ, rendered against `alphabet`.
pub fn regex_difference_witness(p: &Regex, q: &Regex, alphabet: &Alphabet) -> Option<String> {
    match equivalent(&Nfa::thompson(p), &Nfa::thompson(q)) {
        Ok(()) => None,
        Err(w) => Some(alphabet.render_word(&w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse_regex;

    fn pair(ab: &mut Alphabet, p: &str, q: &str) -> (Nfa, Nfa) {
        let rp = parse_regex(ab, p).unwrap();
        let rq = parse_regex(ab, q).unwrap();
        (Nfa::thompson(&rp), Nfa::thompson(&rq))
    }

    #[test]
    fn inclusion_positive_cases() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let cases = [
            ("a.b", "a.b*"),
            ("a.(b.a)*", "(a.b)*.a"), // classic identity: a(ba)* = (ab)*a
            ("[]", "a"),
            ("()", "a*"),
            ("a.a + a.b", "a.(a+b)"),
        ];
        for (p, q) in cases {
            let (np, nq) = pair(&mut ab, p, q);
            assert!(included_naive(&np, &nq, ab.len()).is_ok(), "{p} ⊆ {q}");
            assert!(included_antichain(&np, &nq).is_ok(), "{p} ⊆ {q}");
        }
    }

    #[test]
    fn inclusion_counterexamples_verified() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let cases = [("a.b*", "a.b"), ("a*", "a.a*"), ("(a+b)*", "a*.b*")];
        for (p, q) in cases {
            let (np, nq) = pair(&mut ab, p, q);
            let w1 = included_naive(&np, &nq, ab.len()).unwrap_err();
            assert!(np.accepts(&w1) && !nq.accepts(&w1), "{p} vs {q}");
            let w2 = included_antichain(&np, &nq).unwrap_err();
            assert!(np.accepts(&w2) && !nq.accepts(&w2), "{p} vs {q}");
        }
    }

    #[test]
    fn equivalence_identities() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let identities = [
            ("a.(b.a)*", "(a.b)*.a"),
            ("(a+b)*", "(a*.b*)*"),
            ("a* ", "() + a.a*"),
            ("(a.b)* ", "() + a.(b.a)*.b"),
        ];
        for (p, q) in identities {
            let (np, nq) = pair(&mut ab, p, q);
            assert!(equivalent(&np, &nq).is_ok(), "{p} = {q}");
            assert!(
                equivalent_hopcroft_karp(&np, &nq, ab.len()).is_ok(),
                "{p} = {q} (HK)"
            );
        }
    }

    #[test]
    fn equivalence_rejects_different_languages() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let (np, nq) = pair(&mut ab, "a*", "b*");
        let w = equivalent(&np, &nq).unwrap_err();
        assert!(np.accepts(&w) != nq.accepts(&w));
        let w2 = equivalent_hopcroft_karp(&np, &nq, ab.len()).unwrap_err();
        assert!(np.accepts(&w2) != nq.accepts(&w2));
    }

    #[test]
    fn hk_counterexample_on_subtle_pair() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        // differ only on the word b.a.b
        let (np, nq) = pair(&mut ab, "(a+b)*", "(a+b)* "); // identical
        assert!(equivalent_hopcroft_karp(&np, &nq, ab.len()).is_ok());
        let (np, nq) = pair(&mut ab, "(a+b)*.a.(a+b)", "(a+b)*.a.(a+b).(a+b)");
        let w = equivalent_hopcroft_karp(&np, &nq, ab.len()).unwrap_err();
        assert!(np.accepts(&w) != nq.accepts(&w));
    }

    #[test]
    fn regex_level_helpers() {
        let mut ab = Alphabet::new();
        let p = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
        let q = parse_regex(&mut ab, "(a.b)*.a.c").unwrap();
        assert!(regex_equivalent(&p, &q));
        assert!(regex_included(&p, &q));
        let r = parse_regex(&mut ab, "a.c").unwrap();
        assert!(regex_included(&r, &p));
        assert!(!regex_included(&p, &r));
        let witness = regex_difference_witness(&p, &r, &ab).unwrap();
        assert!(witness.contains('b'));
    }

    #[test]
    fn antichain_agrees_with_naive_on_family() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        ab.intern("c");
        let exprs = [
            "a",
            "b",
            "a.b",
            "a+b",
            "a*",
            "(a+b)*",
            "a.(b+c)*",
            "a*.b*",
            "(a.b)*",
            "a.b.c",
            "()",
            "[]",
            "(a+b+c)*.a",
        ];
        for p in exprs {
            for q in exprs {
                let (np, nq) = pair(&mut ab, p, q);
                let naive = included_naive(&np, &nq, ab.len()).is_ok();
                let anti = included_antichain(&np, &nq).is_ok();
                assert_eq!(naive, anti, "{p} ⊆ {q}");
            }
        }
    }
}
