//! Growth-rate classification of regular languages.
//!
//! The boundedness problem of Theorem 4.10 asks whether a path query is
//! equivalent (under constraints) to one whose language is *finite*. This
//! module refines the finite/infinite dichotomy into the classical growth
//! hierarchy of regular languages: the counting function
//! `n ↦ |L ∩ Σⁿ|` of a regular language is either eventually zero
//! (finite language), bounded by a polynomial `n^d`, or in `2^Ω(n)`
//! (Szilard–Yu–Zhang–Shallit). The structural criterion on a trim DFA:
//!
//! * **exponential** iff some live state lies on two distinct cycles —
//!   equivalently, some strongly connected component carries more than one
//!   internal edge per state (it is not a simple cycle);
//! * otherwise **polynomial**, of degree `c − 1` where `c` is the maximum
//!   number of cyclic components on a path through the condensation DAG;
//! * **finite** when no live state lies on any cycle (`c = 0`).
//!
//! The optimizer uses this as a cost signal (a polynomial-growth query
//! explores graphs far more selectively than an exponential one), and the
//! boundedness bench reports it alongside Theorem 4.10's decision.

use crate::alphabet::Symbol;
use crate::dfa::Dfa;
use crate::nfa::{strongly_connected_components, Nfa};
use crate::regex::Regex;

/// Growth class of the counting function `n ↦ |L ∩ Σⁿ|`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Growth {
    /// The empty language.
    Empty,
    /// Finitely many words; `count` is exact unless it saturated at
    /// `u64::MAX`, and `max_len` is the length of the longest word.
    Finite {
        /// Number of words in the language (saturating).
        count: u64,
        /// Length of the longest word.
        max_len: usize,
    },
    /// `|L ∩ Σⁿ| = O(n^degree)` and `Ω(n^degree)` along a subsequence;
    /// degree 0 means boundedly many words per length (e.g. `a*`).
    Polynomial {
        /// The polynomial degree `d`.
        degree: usize,
    },
    /// `|L ∩ Σⁿ| = 2^Ω(n)`: some state lies on two distinct cycles.
    Exponential,
}

impl Growth {
    /// Is the language finite (including empty)?
    pub fn is_finite(&self) -> bool {
        matches!(self, Growth::Empty | Growth::Finite { .. })
    }
}

/// Classify the growth of the language of a complete [`Dfa`].
pub fn classify_dfa(dfa: &Dfa) -> Growth {
    let n = dfa.num_states();
    let sigma = dfa.sigma();
    let live = live_states(dfa);
    if !live[dfa.start() as usize] && !live.iter().any(|&l| l) {
        return Growth::Empty;
    }
    if live.iter().all(|&l| !l) {
        return Growth::Empty;
    }

    let comp = strongly_connected_components(n, |s, f| {
        if live[s] {
            for sym in 0..sigma {
                let t = dfa.next(s as u32, Symbol::from_index(sym)) as usize;
                if live[t] {
                    f(t);
                }
            }
        }
    });
    let num_comps = comp.iter().copied().max().map_or(0, |m| m + 1);

    // Per-component bookkeeping: is the component cyclic, and is it a simple
    // cycle (every member state has exactly one live internal out-edge)?
    let mut internal_edges: Vec<usize> = vec![0; num_comps];
    let mut members: Vec<usize> = vec![0; num_comps];
    let mut max_internal_out: Vec<usize> = vec![0; num_comps];
    for s in 0..n {
        if !live[s] {
            continue;
        }
        members[comp[s]] += 1;
        let mut out_here = 0usize;
        for sym in 0..sigma {
            let t = dfa.next(s as u32, Symbol::from_index(sym)) as usize;
            if live[t] && comp[t] == comp[s] {
                out_here += 1;
            }
        }
        internal_edges[comp[s]] += out_here;
        max_internal_out[comp[s]] = max_internal_out[comp[s]].max(out_here);
    }
    let cyclic: Vec<bool> = (0..num_comps).map(|c| internal_edges[c] > 0).collect();
    for c in 0..num_comps {
        // A cyclic SCC of a *deterministic* automaton is a simple cycle iff
        // each member has exactly one internal out-edge; two internal
        // out-edges from one state give two distinct cycles through it,
        // which pumps 2^Ω(n) distinct words.
        if cyclic[c] && max_internal_out[c] > 1 {
            return Growth::Exponential;
        }
        if cyclic[c] && internal_edges[c] != members[c] {
            // Simple cycle must have exactly |members| internal edges.
            return Growth::Exponential;
        }
    }

    if !cyclic.iter().any(|&c| c) {
        // Finite language: count words exactly by dynamic programming over
        // lengths up to the number of live states (longest word is shorter).
        let counts = dfa.count_words_by_length(n);
        let mut total: u64 = 0;
        let mut max_len = 0usize;
        for (len, &c) in counts.iter().enumerate() {
            if c > 0 {
                max_len = len;
            }
            total = total.saturating_add(c);
        }
        return Growth::Finite {
            count: total,
            max_len,
        };
    }

    // Polynomial: degree = (max number of cyclic components on a condensation
    // path) − 1. Longest path in a DAG by memoized DFS over components.
    let mut comp_succ: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
    for s in 0..n {
        if !live[s] {
            continue;
        }
        for sym in 0..sigma {
            let t = dfa.next(s as u32, Symbol::from_index(sym)) as usize;
            if live[t] && comp[t] != comp[s] {
                comp_succ[comp[s]].push(comp[t]);
            }
        }
    }
    for succ in &mut comp_succ {
        succ.sort_unstable();
        succ.dedup();
    }
    let mut memo: Vec<Option<usize>> = vec![None; num_comps];
    fn longest(
        c: usize,
        cyclic: &[bool],
        succ: &[Vec<usize>],
        memo: &mut Vec<Option<usize>>,
    ) -> usize {
        if let Some(v) = memo[c] {
            return v;
        }
        let here = usize::from(cyclic[c]);
        let best_tail = succ[c]
            .iter()
            .map(|&d| longest(d, cyclic, succ, memo))
            .max()
            .unwrap_or(0);
        let v = here + best_tail;
        memo[c] = Some(v);
        v
    }
    let mut best = 0usize;
    for s in 0..n {
        if live[s] {
            best = best.max(longest(comp[s], &cyclic, &comp_succ, &mut memo));
        }
    }
    // `best ≥ 1` here because some component is cyclic and all live states
    // reach an accepting state.
    Growth::Polynomial { degree: best - 1 }
}

/// Classify the growth of `L(nfa)`; `sigma` as in [`Dfa::from_nfa`].
pub fn classify_nfa(nfa: &Nfa, sigma: usize) -> Growth {
    classify_dfa(&Dfa::from_nfa(nfa, sigma))
}

/// Classify the growth of `L(r)`.
pub fn classify_regex(r: &Regex) -> Growth {
    let sigma = r.symbols().iter().map(|s| s.index() + 1).max().unwrap_or(1);
    classify_nfa(&Nfa::thompson(r), sigma)
}

/// Reachable-and-coreachable mask ("live" states): exactly the states that
/// occur on some accepting run.
fn live_states(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.num_states();
    let sigma = dfa.sigma();
    let mut reach = vec![false; n];
    let mut stack = vec![dfa.start()];
    reach[dfa.start() as usize] = true;
    while let Some(s) = stack.pop() {
        for sym in 0..sigma {
            let t = dfa.next(s, Symbol::from_index(sym));
            if !reach[t as usize] {
                reach[t as usize] = true;
                stack.push(t);
            }
        }
    }
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n {
        for sym in 0..sigma {
            let t = dfa.next(s as u32, Symbol::from_index(sym));
            rev[t as usize].push(s as u32);
        }
    }
    let mut co = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32).filter(|&s| dfa.is_accepting(s)).collect();
    for &s in &stack {
        co[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &rev[s as usize] {
            if !co[p as usize] {
                co[p as usize] = true;
                stack.push(p);
            }
        }
    }
    (0..n).map(|s| reach[s] && co[s]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse_regex;

    fn classify(src: &str) -> Growth {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, src).unwrap();
        classify_regex(&r)
    }

    #[test]
    fn empty_language() {
        assert_eq!(classify("[]"), Growth::Empty);
        assert_eq!(classify("[].a"), Growth::Empty);
    }

    #[test]
    fn finite_languages_counted_exactly() {
        assert_eq!(
            classify("()"),
            Growth::Finite {
                count: 1,
                max_len: 0
            }
        );
        assert_eq!(
            classify("a.b + a.c + ()"),
            Growth::Finite {
                count: 3,
                max_len: 2
            }
        );
        // (a+b)(a+b)(a+b): 8 words of length 3
        assert_eq!(
            classify("(a+b).(a+b).(a+b)"),
            Growth::Finite {
                count: 8,
                max_len: 3
            }
        );
    }

    #[test]
    fn degree_zero_polynomials() {
        assert_eq!(classify("a*"), Growth::Polynomial { degree: 0 });
        assert_eq!(classify("(a.b)*"), Growth::Polynomial { degree: 0 });
        assert_eq!(classify("c.(a.b)*.d"), Growth::Polynomial { degree: 0 });
        // union of two single-cycle languages still degree 0
        assert_eq!(classify("a* + (b.b)*"), Growth::Polynomial { degree: 0 });
    }

    #[test]
    fn higher_degree_polynomials() {
        assert_eq!(classify("a*.b*"), Growth::Polynomial { degree: 1 });
        assert_eq!(classify("a*.b*.a*"), Growth::Polynomial { degree: 2 });
        assert_eq!(classify("a*.c.b*"), Growth::Polynomial { degree: 1 });
        // parallel branches take the max, not the sum
        assert_eq!(classify("a*.b* + c*"), Growth::Polynomial { degree: 1 });
    }

    #[test]
    fn exponential_families() {
        assert_eq!(classify("(a+b)*"), Growth::Exponential);
        assert_eq!(classify("(a.b + b)*"), Growth::Exponential);
        assert_eq!(classify("c.(a+b)*.d"), Growth::Exponential);
        // two cycles through a shared state via different words
        assert_eq!(classify("(a.a + a.b)*"), Growth::Exponential);
    }

    #[test]
    fn growth_agrees_with_is_finite() {
        for src in ["a.b+c", "a*", "a*.b*", "(a+b)*", "[]", "()", "(a.b)*.c"] {
            let mut ab = Alphabet::new();
            let r = parse_regex(&mut ab, src).unwrap();
            let sigma = r.symbols().iter().map(|s| s.index() + 1).max().unwrap_or(1);
            let dfa = Dfa::from_nfa(&Nfa::thompson(&r), sigma);
            assert_eq!(
                classify_regex(&r).is_finite(),
                dfa.is_finite_lang(),
                "mismatch on {src}"
            );
        }
    }

    #[test]
    fn counts_match_polynomial_shape() {
        // a*b* has exactly n+1 words of each length n.
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*.b*").unwrap();
        let dfa = Dfa::from_nfa(&Nfa::thompson(&r), 2);
        let counts = dfa.count_words_by_length(6);
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(classify_regex(&r), Growth::Polynomial { degree: 1 });
    }

    #[test]
    fn counts_match_exponential_shape() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "(a+b)*").unwrap();
        let dfa = Dfa::from_nfa(&Nfa::thompson(&r), 2);
        let counts = dfa.count_words_by_length(5);
        assert_eq!(counts, vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(classify_regex(&r), Growth::Exponential);
    }
}
