//! Deterministic finite automata.
//!
//! DFAs here are always *complete*: every state has a transition on every
//! symbol of a fixed alphabet size (a dead sink is added by the subset
//! construction when needed). Completeness makes complementation a flag flip
//! and keeps the product constructions simple. The paper notes that building
//! the deterministic (quotient) automaton "may be exponential in p"
//! (Section 2.2) — the benches in `rpq-bench` measure exactly that effect.

use std::collections::HashMap;

use crate::alphabet::Symbol;
use crate::nfa::{strongly_connected_components, Nfa, StateId};

/// A complete DFA over symbols `0..sigma`.
#[derive(Clone, Debug)]
pub struct Dfa {
    sigma: usize,
    start: StateId,
    accept: Vec<bool>,
    /// Row-major transition table: `trans[state * sigma + symbol]`.
    trans: Vec<StateId>,
}

impl Dfa {
    /// Subset construction from an NFA. `sigma` must be at least
    /// `max symbol index + 1` over the NFA's transitions.
    ///
    /// The NFA is [`Nfa::trim`]med first: states not on a start→accept
    /// path cannot change the language, but left in they inflate the
    /// subset-state universe (every dead state a set drags along splits
    /// otherwise-equal sets). Determinizing the trimmed automaton yields a
    /// DFA over the same language with never more states.
    pub fn from_nfa(nfa: &Nfa, sigma: usize) -> Dfa {
        let nfa = &nfa.trim();
        let mut states: Vec<Vec<StateId>> = Vec::new();
        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut trans: Vec<StateId> = Vec::new();

        let start_set = nfa.start_set();
        states.push(start_set.clone());
        index.insert(start_set, 0);
        accept.push(nfa.set_accepts(&states[0]));

        let mut i = 0usize;
        while i < states.len() {
            let set = states[i].clone();
            for sym in 0..sigma {
                let stepped = nfa.step(&set, Symbol::from_index(sym));
                let id = match index.get(&stepped) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as StateId;
                        index.insert(stepped.clone(), id);
                        accept.push(nfa.set_accepts(&stepped));
                        states.push(stepped);
                        id
                    }
                };
                trans.push(id);
            }
            i += 1;
        }
        Dfa {
            sigma,
            start: 0,
            accept,
            trans,
        }
    }

    /// Number of states (including any dead sink).
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Alphabet size this DFA is complete over.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accept[s as usize]
    }

    /// The successor of `s` on `sym`.
    #[inline]
    pub fn next(&self, s: StateId, sym: Symbol) -> StateId {
        self.trans[s as usize * self.sigma + sym.index()]
    }

    /// Membership test.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next(s, sym);
        }
        self.accept[s as usize]
    }

    /// Complement (flip accepting); valid because the DFA is complete.
    pub fn complement(&self) -> Dfa {
        Dfa {
            sigma: self.sigma,
            start: self.start,
            accept: self.accept.iter().map(|&a| !a).collect(),
            trans: self.trans.clone(),
        }
    }

    /// True iff no accepting state is reachable from the start.
    pub fn is_empty_lang(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted word, if any (plain BFS).
    pub fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        let n = self.num_states();
        let mut back: Vec<Option<(StateId, Symbol)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            if self.accept[s as usize] {
                let mut word = Vec::new();
                let mut cur = s;
                while let Some((prev, sym)) = back[cur as usize] {
                    word.push(sym);
                    cur = prev;
                }
                word.reverse();
                return Some(word);
            }
            for sym in 0..self.sigma {
                let t = self.next(s, Symbol::from_index(sym));
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    back[t as usize] = Some((s, Symbol::from_index(sym)));
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// True iff the accepted language is finite: no reachable-and-coreachable
    /// state lies on a cycle.
    pub fn is_finite_lang(&self) -> bool {
        let n = self.num_states();
        let reach = self.reachable();
        // co-reachable
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in 0..n {
            for sym in 0..self.sigma {
                let t = self.trans[s * self.sigma + sym];
                rev[t as usize].push(s as StateId);
            }
        }
        let mut co = vec![false; n];
        let mut stack: Vec<StateId> = (0..n)
            .filter(|&s| self.accept[s])
            .map(|s| s as StateId)
            .collect();
        for &s in &stack {
            co[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !co[p as usize] {
                    co[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        let live: Vec<bool> = (0..n).map(|s| reach[s] && co[s]).collect();
        let comp = strongly_connected_components(n, |s, f| {
            if live[s] {
                for sym in 0..self.sigma {
                    let t = self.trans[s * self.sigma + sym] as usize;
                    if live[t] {
                        f(t);
                    }
                }
            }
        });
        for s in 0..n {
            if !live[s] {
                continue;
            }
            for sym in 0..self.sigma {
                let t = self.trans[s * self.sigma + sym] as usize;
                if live[t] && comp[s] == comp[t] {
                    return false;
                }
            }
        }
        true
    }

    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for sym in 0..self.sigma {
                let t = self.next(s, Symbol::from_index(sym));
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Moore partition-refinement minimization (restricted to reachable
    /// states). O(n²·σ) worst case; robust and plenty fast for our sizes.
    pub fn minimize(&self) -> Dfa {
        let n = self.num_states();
        let reach = self.reachable();
        // initial partition: {accepting, rejecting} over reachable states
        let mut class: Vec<u32> = (0..n).map(|s| if self.accept[s] { 1 } else { 0 }).collect();
        let mut num_classes = 2u32;
        loop {
            // signature: (class, class of successor per symbol)
            let mut sig_index: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut next_class: Vec<u32> = vec![0; n];
            let mut next_num = 0u32;
            for s in 0..n {
                if !reach[s] {
                    continue;
                }
                let mut sig = Vec::with_capacity(self.sigma + 1);
                sig.push(class[s]);
                for sym in 0..self.sigma {
                    sig.push(class[self.trans[s * self.sigma + sym] as usize]);
                }
                let id = *sig_index.entry(sig).or_insert_with(|| {
                    let id = next_num;
                    next_num += 1;
                    id
                });
                next_class[s] = id;
            }
            if next_num == num_classes {
                class = next_class;
                break;
            }
            num_classes = next_num;
            class = next_class;
        }
        // build quotient automaton
        let m = num_classes as usize;
        let mut accept = vec![false; m];
        let mut trans = vec![0 as StateId; m * self.sigma];
        let mut done = vec![false; m];
        for s in 0..n {
            if !reach[s] {
                continue;
            }
            let c = class[s] as usize;
            if done[c] {
                continue;
            }
            done[c] = true;
            accept[c] = self.accept[s];
            for sym in 0..self.sigma {
                trans[c * self.sigma + sym] = class[self.trans[s * self.sigma + sym] as usize];
            }
        }
        Dfa {
            sigma: self.sigma,
            start: class[self.start as usize],
            accept,
            trans,
        }
    }

    /// Hopcroft's partition-refinement minimization — `O(n·σ·log n)` against
    /// [`Dfa::minimize`]'s `O(n²·σ)` Moore refinement. Both produce the
    /// (unique) minimal DFA; the ablation in bench
    /// `t11_det_axioms_simplify` compares them on subset-blowup families,
    /// and the property suite asserts they agree state-for-state in count.
    pub fn minimize_hopcroft(&self) -> Dfa {
        let n = self.num_states();
        let sigma = self.sigma;
        let reach = self.reachable();
        // Compact the reachable subautomaton to indices 0..m.
        let mut idx = vec![usize::MAX; n];
        let mut states: Vec<usize> = Vec::new();
        for s in 0..n {
            if reach[s] {
                idx[s] = states.len();
                states.push(s);
            }
        }
        let m = states.len();
        // Inverse transition lists per symbol (successors of reachable
        // states are reachable, so idx is total here).
        let mut inv: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); m]; sigma];
        for (i, &s) in states.iter().enumerate() {
            for sym in 0..sigma {
                let t = idx[self.trans[s * sigma + sym] as usize];
                inv[sym][t].push(i as u32);
            }
        }

        // Initial partition {accepting, rejecting}, empties dropped.
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut block_of: Vec<usize> = vec![0; m];
        {
            let (mut acc, mut rej) = (Vec::new(), Vec::new());
            for (i, &s) in states.iter().enumerate() {
                if self.accept[s] {
                    acc.push(i as u32);
                } else {
                    rej.push(i as u32);
                }
            }
            for part in [acc, rej] {
                if !part.is_empty() {
                    let b = blocks.len();
                    for &s in &part {
                        block_of[s as usize] = b;
                    }
                    blocks.push(part);
                }
            }
        }

        use std::collections::VecDeque;
        let mut work: VecDeque<(usize, usize)> = VecDeque::new();
        let mut in_work: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        // Seed with the smaller initial block on every symbol (both is also
        // correct; the smaller one is the classic optimization).
        let seed = (0..blocks.len())
            .min_by_key(|&b| blocks[b].len())
            .into_iter();
        for b in seed {
            for sym in 0..sigma {
                work.push_back((b, sym));
                in_work.insert((b, sym));
            }
        }

        let mut marked: Vec<bool> = vec![false; m];
        while let Some((a_idx, sym)) = work.pop_front() {
            in_work.remove(&(a_idx, sym));
            // X = sym-preimage of the splitter block (current contents).
            let mut touched: Vec<usize> = Vec::new();
            let mut x: Vec<u32> = Vec::new();
            for &t in &blocks[a_idx] {
                for &s in &inv[sym][t as usize] {
                    if !marked[s as usize] {
                        marked[s as usize] = true;
                        x.push(s);
                        let b = block_of[s as usize];
                        if !touched.contains(&b) {
                            touched.push(b);
                        }
                    }
                }
            }
            for b in touched {
                let total = blocks[b].len();
                let hits = blocks[b].iter().filter(|&&s| marked[s as usize]).count();
                if hits == 0 || hits == total {
                    continue; // no split
                }
                // Split: keep unmarked in b, move marked to a new block.
                let (stay, move_out): (Vec<u32>, Vec<u32>) =
                    blocks[b].iter().partition(|&&s| !marked[s as usize]);
                let nb = blocks.len();
                for &s in &move_out {
                    block_of[s as usize] = nb;
                }
                blocks[b] = stay;
                blocks.push(move_out);
                for sym2 in 0..sigma {
                    if in_work.contains(&(b, sym2)) {
                        // the splitter must cover both halves
                        work.push_back((nb, sym2));
                        in_work.insert((nb, sym2));
                    } else {
                        let smaller = if blocks[b].len() <= blocks[nb].len() {
                            b
                        } else {
                            nb
                        };
                        work.push_back((smaller, sym2));
                        in_work.insert((smaller, sym2));
                    }
                }
            }
            for &s in &x {
                marked[s as usize] = false;
            }
        }

        // Quotient automaton.
        let k = blocks.len();
        let mut accept = vec![false; k];
        let mut trans = vec![0 as StateId; k * sigma];
        for (b, members) in blocks.iter().enumerate() {
            let rep = members[0] as usize;
            accept[b] = self.accept[states[rep]];
            for sym in 0..sigma {
                let t = idx[self.trans[states[rep] * sigma + sym] as usize];
                trans[b * sigma + sym] = block_of[t] as StateId;
            }
        }
        Dfa {
            sigma,
            start: block_of[idx[self.start as usize]] as StateId,
            accept,
            trans,
        }
    }

    /// Product DFA combining acceptance with `op(a_accepts, b_accepts)`.
    /// Both inputs must share `sigma`.
    pub fn product<F>(a: &Dfa, b: &Dfa, op: F) -> Dfa
    where
        F: Fn(bool, bool) -> bool,
    {
        assert_eq!(a.sigma, b.sigma, "product requires equal alphabets");
        let sigma = a.sigma;
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut order: Vec<(StateId, StateId)> = Vec::new();
        let mut accept = Vec::new();
        let mut trans: Vec<StateId> = Vec::new();
        let start = (a.start, b.start);
        index.insert(start, 0);
        order.push(start);
        accept.push(op(a.accept[a.start as usize], b.accept[b.start as usize]));
        let mut i = 0;
        while i < order.len() {
            let (sa, sb) = order[i];
            for sym in 0..sigma {
                let ta = a.trans[sa as usize * sigma + sym];
                let tb = b.trans[sb as usize * sigma + sym];
                let id = *index.entry((ta, tb)).or_insert_with(|| {
                    let id = order.len() as StateId;
                    order.push((ta, tb));
                    accept.push(op(a.accept[ta as usize], b.accept[tb as usize]));
                    id
                });
                trans.push(id);
            }
            i += 1;
        }
        Dfa {
            sigma,
            start: 0,
            accept,
            trans,
        }
    }

    /// Convert back to an NFA (for uniform downstream APIs).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::empty();
        // state 0 of the NFA is its start; map DFA state s -> s (+1 if start ≠ 0)
        // Simplest: add all states fresh and set start afterwards.
        let mut ids = Vec::with_capacity(self.num_states());
        ids.push(n.start());
        n.set_accepting(n.start(), self.accept[0]);
        for s in 1..self.num_states() {
            ids.push(n.add_state(self.accept[s]));
        }
        for s in 0..self.num_states() {
            for sym in 0..self.sigma {
                let t = self.trans[s * self.sigma + sym];
                n.add_transition(ids[s], Symbol::from_index(sym), ids[t as usize]);
            }
        }
        n.set_start(ids[self.start as usize]);
        n
    }

    /// Count accepted words of each length `0..=max_len` (dynamic program).
    /// Useful for comparing language sizes in tests and benches.
    pub fn count_words_by_length(&self, max_len: usize) -> Vec<u64> {
        let n = self.num_states();
        let mut cur = vec![0u64; n];
        cur[self.start as usize] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        for _ in 0..=max_len {
            let total: u64 = (0..n).filter(|&s| self.accept[s]).map(|s| cur[s]).sum();
            out.push(total);
            let mut next = vec![0u64; n];
            for (s, &c) in cur.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for sym in 0..self.sigma {
                    let t = self.trans[s * self.sigma + sym] as usize;
                    next[t] = next[t].saturating_add(c);
                }
            }
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::parse_regex;

    fn dfa(ab: &mut Alphabet, s: &str) -> Dfa {
        let r = parse_regex(ab, s).unwrap();
        let n = Nfa::thompson(&r);
        Dfa::from_nfa(&n, ab.len())
    }

    fn word(ab: &mut Alphabet, s: &str) -> Vec<Symbol> {
        s.chars().map(|c| ab.intern(&c.to_string())).collect()
    }

    #[test]
    fn subset_construction_preserves_language() {
        let mut ab = Alphabet::new();
        // pre-intern so sigma covers everything
        ab.intern("a");
        ab.intern("b");
        ab.intern("c");
        let d = dfa(&mut ab, "a.(b+c)*");
        assert!(d.accepts(&word(&mut ab, "a")));
        assert!(d.accepts(&word(&mut ab, "abcb")));
        assert!(!d.accepts(&word(&mut ab, "b")));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn complement_flips_membership() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let d = dfa(&mut ab, "a.b");
        let c = d.complement();
        assert!(!c.accepts(&word(&mut ab, "ab")));
        assert!(c.accepts(&word(&mut ab, "a")));
        assert!(c.accepts(&[]));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        // (a + a.a.a*) ≡ a.a*  — wait, a + a.a.a* = a(ε + a.a*) = a.a*
        let d1 = dfa(&mut ab, "a + a.a.a*");
        let d2 = dfa(&mut ab, "a.a*");
        let m1 = d1.minimize();
        let m2 = d2.minimize();
        assert_eq!(m1.num_states(), m2.num_states());
        for len in d1.count_words_by_length(6) {
            let _ = len;
        }
        assert_eq!(m1.count_words_by_length(8), m2.count_words_by_length(8));
    }

    #[test]
    fn product_difference_emptiness_checks_inclusion() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let sub = dfa(&mut ab, "a.b");
        let sup = dfa(&mut ab, "a.b*");
        let diff = Dfa::product(&sub, &sup, |x, y| x && !y);
        assert!(diff.is_empty_lang());
        let diff2 = Dfa::product(&sup, &sub, |x, y| x && !y);
        assert!(!diff2.is_empty_lang());
        let cex = diff2.shortest_accepted().unwrap();
        assert!(sup.accepts(&cex) && !sub.accepts(&cex));
    }

    #[test]
    fn finiteness() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        assert!(dfa(&mut ab, "a.b + b").is_finite_lang());
        assert!(!dfa(&mut ab, "a*.b").is_finite_lang());
        assert!(dfa(&mut ab, "[]").is_finite_lang());
    }

    #[test]
    fn count_words_by_length_counts() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let d = dfa(&mut ab, "(a+b)*");
        assert_eq!(d.count_words_by_length(4), vec![1, 2, 4, 8, 16]);
        let e = dfa(&mut ab, "a.b");
        assert_eq!(e.count_words_by_length(3), vec![0, 0, 1, 0]);
    }

    #[test]
    fn to_nfa_round_trip() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let d = dfa(&mut ab, "a.(a+b)*.b");
        let n = d.to_nfa();
        assert!(n.accepts(&word(&mut ab, "ab")));
        assert!(n.accepts(&word(&mut ab, "aabab")));
        assert!(!n.accepts(&word(&mut ab, "ba")));
    }

    #[test]
    fn shortest_accepted_empty_language() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        let d = dfa(&mut ab, "[]");
        assert!(d.shortest_accepted().is_none());
        assert!(d.is_empty_lang());
    }
    #[test]
    fn hopcroft_agrees_with_moore_on_basics() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        for src in ["a.(b+a)*", "(a+b)*.a", "a.b + a.c", "()", "[]", "a*.b*"] {
            let mut ab2 = ab.clone();
            ab2.intern("c");
            let d = dfa(&mut ab2, src);
            let moore = d.minimize();
            let hop = d.minimize_hopcroft();
            assert_eq!(
                moore.num_states(),
                hop.num_states(),
                "state counts differ on {src}"
            );
            assert!(crate::ops::equivalent(&moore.to_nfa(), &hop.to_nfa()).is_ok());
            assert!(crate::ops::equivalent(&d.to_nfa(), &hop.to_nfa()).is_ok());
        }
    }

    #[test]
    fn hopcroft_agrees_with_moore_on_random_regexes() {
        use crate::random::{random_regex, RegexGenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut ab = Alphabet::new();
        let syms = vec![ab.intern("a"), ab.intern("b"), ab.intern("c")];
        let cfg = RegexGenConfig::new(syms);
        let mut rng = StdRng::seed_from_u64(0x40B);
        for _ in 0..120 {
            let r = random_regex(&mut rng, &cfg);
            let d = Dfa::from_nfa(&Nfa::thompson(&r), 3);
            let moore = d.minimize();
            let hop = d.minimize_hopcroft();
            assert_eq!(moore.num_states(), hop.num_states(), "{r:?}");
            assert!(
                crate::ops::equivalent(&d.to_nfa(), &hop.to_nfa()).is_ok(),
                "{r:?}"
            );
        }
    }

    #[test]
    fn hopcroft_is_idempotent() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        ab.intern("b");
        let d = dfa(&mut ab, "(a+b)*.a.(a+b).(a+b)");
        let once = d.minimize_hopcroft();
        let twice = once.minimize_hopcroft();
        assert_eq!(once.num_states(), twice.num_states());
    }
}
