//! A parser for the paper's path-query syntax.
//!
//! Grammar (whitespace between tokens is insignificant except that it
//! separates adjacent identifiers):
//!
//! ```text
//! expr    := term ('+' term)*                 union  ('|' also accepted)
//! term    := factor (('.')? factor)*          concatenation
//! factor  := atom ('*' | '?')*                postfix star / optional
//! atom    := IDENT | STRING | '(' expr ')' | '()' | '[]'
//! IDENT   := [A-Za-z0-9_] [A-Za-z0-9_-]*
//! STRING  := '"' (escaped chars) '"'
//! ```
//!
//! `()` denotes ε and `[]` denotes the empty language, so every regex prints
//! (via [`crate::regex::RegexDisplay`]) to a string this parser accepts.
//! Following the paper, `+` is *union* (never one-or-more); write `p.p*` or
//! use [`crate::regex::Regex::plus`] programmatically.

use std::fmt;

use crate::alphabet::Alphabet;
use crate::regex::Regex;

/// Error with byte-span and expected-token hints produced by
/// [`parse_regex`].
///
/// `position..end` is the byte range of the offending token (or the
/// empty range at the detection point when no token is at fault, e.g.
/// end of input). `expected` lists what the parser would have accepted
/// there; `found` describes the token actually seen. All of it is
/// rendered by the [`fmt::Display`] impl, so `format!("{e}")` is a
/// complete diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Exclusive byte end of the offending span (`== position` when the
    /// error points between tokens rather than at one).
    pub end: usize,
    /// Human-readable description.
    pub message: String,
    /// What the parser would have accepted at this point, in grammar
    /// terms (`"a label"`, `"')'"`, …). Empty when no hint applies.
    pub expected: Vec<&'static str>,
    /// A description of the token actually found, if the error points at
    /// one (`None` for lexical errors such as an unterminated string).
    pub found: Option<String>,
}

impl ParseError {
    /// A hint-free error at a single byte offset.
    pub fn new(position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            end: position,
            message: message.into(),
            expected: Vec::new(),
            found: None,
        }
    }

    /// The offending byte range (`start..end`, end-exclusive).
    pub fn span(&self) -> (usize, usize) {
        (self.position, self.end.max(self.position))
    }

    /// Shift the span right by `delta` bytes — for callers that parse an
    /// expression embedded in a larger source string.
    pub fn offset(mut self, delta: usize) -> ParseError {
        self.position += delta;
        self.end += delta;
        self
    }

    fn spanned(mut self, start: usize, end: usize) -> ParseError {
        self.position = start;
        self.end = end;
        self
    }

    fn hinted(mut self, expected: &[&'static str], found: Option<String>) -> ParseError {
        self.expected = expected.to_vec();
        self.found = found;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end > self.position {
            write!(
                f,
                "parse error at bytes {}..{}: {}",
                self.position, self.end, self.message
            )?;
        } else {
            write!(f, "parse error at byte {}: {}", self.position, self.message)?;
        }
        if let Some(found) = &self.found {
            write!(f, "; found {found}")?;
        }
        if !self.expected.is_empty() {
            write!(f, "; expected {}", self.expected.join(" or "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Plus,
    Dot,
    Star,
    Question,
    LParen,
    RParen,
    Epsilon,
    EmptyLang,
}

/// A lexed token with its byte span: `(start, end, token)`, end-exclusive.
type SpannedTok = (usize, usize, Tok);

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<SpannedTok>,
}

impl<'a> Lexer<'a> {
    fn run(src: &'a str) -> Result<Vec<SpannedTok>, ParseError> {
        let mut lx = Lexer {
            src,
            pos: 0,
            toks: Vec::new(),
        };
        lx.lex()?;
        Ok(lx.toks)
    }

    fn err(&self, start: usize, message: impl Into<String>) -> ParseError {
        ParseError::new(start, message).spanned(start, self.pos.max(start))
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn lex(&mut self) -> Result<(), ParseError> {
        while self.pos < self.src.len() {
            let rest = self.rest();
            let c = rest.chars().next().expect("non-empty rest");
            let start = self.pos;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += c.len_utf8();
                }
                '+' | '|' => {
                    self.pos += 1;
                    self.toks.push((start, self.pos, Tok::Plus));
                }
                '.' => {
                    self.pos += 1;
                    self.toks.push((start, self.pos, Tok::Dot));
                }
                '*' => {
                    self.pos += 1;
                    self.toks.push((start, self.pos, Tok::Star));
                }
                '?' => {
                    self.pos += 1;
                    self.toks.push((start, self.pos, Tok::Question));
                }
                '(' => {
                    // Lookahead for "()" = epsilon (possibly with inner spaces).
                    let mut j = self.pos + 1;
                    while j < self.src.len() && self.src.as_bytes()[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < self.src.len() && self.src.as_bytes()[j] == b')' {
                        self.pos = j + 1;
                        self.toks.push((start, self.pos, Tok::Epsilon));
                    } else {
                        self.pos += 1;
                        self.toks.push((start, self.pos, Tok::LParen));
                    }
                }
                ')' => {
                    self.pos += 1;
                    self.toks.push((start, self.pos, Tok::RParen));
                }
                '[' => {
                    let mut j = self.pos + 1;
                    while j < self.src.len() && self.src.as_bytes()[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < self.src.len() && self.src.as_bytes()[j] == b']' {
                        self.pos = j + 1;
                        self.toks.push((start, self.pos, Tok::EmptyLang));
                    } else {
                        self.pos += 1;
                        return Err(self
                            .err(start, "expected ']' to close empty-language '[]'")
                            .hinted(&["']'"], None));
                    }
                }
                '"' => {
                    self.pos += 1;
                    let mut name = String::new();
                    loop {
                        let Some(c) = self.rest().chars().next() else {
                            return Err(self
                                .err(start, "unterminated string literal")
                                .hinted(&["closing '\"'"], None));
                        };
                        self.pos += c.len_utf8();
                        match c {
                            '"' => break,
                            '\\' => {
                                let Some(e) = self.rest().chars().next() else {
                                    return Err(self
                                        .err(start, "dangling escape in string")
                                        .hinted(&["an escaped character"], None));
                                };
                                self.pos += e.len_utf8();
                                name.push(e);
                            }
                            other => name.push(other),
                        }
                    }
                    self.toks.push((start, self.pos, Tok::Ident(name)));
                }
                'ε' => {
                    self.pos += c.len_utf8();
                    self.toks.push((start, self.pos, Tok::Epsilon));
                }
                '∅' => {
                    self.pos += c.len_utf8();
                    self.toks.push((start, self.pos, Tok::EmptyLang));
                }
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    let mut end = self.pos;
                    for ch in rest.chars() {
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' {
                            end += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let name = &self.src[self.pos..end];
                    self.toks.push((start, end, Tok::Ident(name.to_owned())));
                    self.pos = end;
                }
                other => {
                    self.pos += c.len_utf8();
                    return Err(self.err(start, format!("unexpected character {other:?}")));
                }
            }
        }
        Ok(())
    }
}

/// How a token reads in a diagnostic.
fn describe(t: &Tok) -> String {
    match t {
        Tok::Ident(name) => format!("label {name:?}"),
        Tok::Plus => "'+'".into(),
        Tok::Dot => "'.'".into(),
        Tok::Star => "'*'".into(),
        Tok::Question => "'?'".into(),
        Tok::LParen => "'('".into(),
        Tok::RParen => "')'".into(),
        Tok::Epsilon => "'()'".into(),
        Tok::EmptyLang => "'[]'".into(),
    }
}

/// What can start an atom — the hint set for misplaced-token errors.
const ATOM_STARTS: &[&str] = &["a label", "'('", "'()'", "'[]'"];

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    i: usize,
    alphabet: &'a mut Alphabet,
    input_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, _, t)| t)
    }

    /// Span of the token at the cursor, or the empty span at end of input.
    fn cur_span(&self) -> (usize, usize) {
        self.toks
            .get(self.i)
            .map(|&(s, e, _)| (s, e))
            .unwrap_or((self.input_len, self.input_len))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, _, t)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// An error pointing at the cursor token (or end of input), carrying
    /// the tokens the grammar would have accepted there.
    fn err_expected(&self, message: impl Into<String>, expected: &[&'static str]) -> ParseError {
        let (start, end) = self.cur_span();
        let found = Some(self.peek().map_or("end of input".into(), describe));
        ParseError::new(start, message)
            .spanned(start, end)
            .hinted(expected, found)
    }

    fn expr(&mut self) -> Result<Regex, ParseError> {
        let mut arms = vec![self.term()?];
        while matches!(self.peek(), Some(Tok::Plus)) {
            self.bump();
            arms.push(self.term()?);
        }
        Ok(Regex::union(arms))
    }

    fn term(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.factor()?];
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.bump();
                    parts.push(self.factor()?);
                }
                Some(Tok::Ident(_) | Tok::LParen | Tok::Epsilon | Tok::EmptyLang) => {
                    parts.push(self.factor()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn factor(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    r = r.star();
                }
                Some(Tok::Question) => {
                    self.bump();
                    r = r.opt();
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(name)) = self.bump() else {
                    unreachable!("peeked an identifier")
                };
                Ok(Regex::sym(self.alphabet.intern(&name)))
            }
            Some(Tok::Epsilon) => {
                self.bump();
                Ok(Regex::Epsilon)
            }
            Some(Tok::EmptyLang) => {
                self.bump();
                Ok(Regex::Empty)
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.expr()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.bump();
                        Ok(inner)
                    }
                    _ => Err(self.err_expected("unclosed '('", &["')'"])),
                }
            }
            Some(t) => Err(self.err_expected(format!("misplaced {}", describe(t)), ATOM_STARTS)),
            None => Err(self.err_expected("unexpected end of input", ATOM_STARTS)),
        }
    }
}

/// Parse a path query, interning labels into `alphabet`.
pub fn parse_regex(alphabet: &mut Alphabet, src: &str) -> Result<Regex, ParseError> {
    let toks = Lexer::run(src)?;
    let input_len = src.len();
    let mut p = Parser {
        toks,
        i: 0,
        alphabet,
        input_len,
    };
    let r = p.expr()?;
    if p.i != p.toks.len() {
        return Err(p.err_expected(
            "trailing input after expression",
            &["'+'", "'.'", "'*'", "'?'", "a label", "end of input"],
        ));
    }
    Ok(r)
}

/// Parse a path query that appears *embedded* in a larger source string
/// (e.g. one atom body of a conjunctive query): parses `&src[range]` and
/// shifts any error span by the slice's starting offset, so diagnostics
/// point into the original text. The range must lie on character
/// boundaries of `src`.
pub fn parse_regex_embedded(
    alphabet: &mut Alphabet,
    src: &str,
    range: std::ops::Range<usize>,
) -> Result<Regex, ParseError> {
    let start = range.start;
    parse_regex(alphabet, &src[range]).map_err(|e| e.offset(start))
}

/// Parse a *word* (a label sequence such as `a.b.c` or `a b c`; `()` for ε).
/// Errors if the expression denotes anything other than a single word.
pub fn parse_word(alphabet: &mut Alphabet, src: &str) -> Result<Vec<crate::Symbol>, ParseError> {
    let r = parse_regex(alphabet, src)?;
    r.as_word().ok_or_else(|| {
        let mut e = ParseError::new(0, format!("expression {src:?} is not a single word"));
        e.end = src.len();
        e
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_operators() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a.(b+c)*.d").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let c = ab.get("c").unwrap();
        let d = ab.get("d").unwrap();
        let expect = Regex::sym(a)
            .then(Regex::sym(b).or(Regex::sym(c)).star())
            .then(Regex::sym(d));
        assert_eq!(r, expect);
    }

    #[test]
    fn juxtaposition_is_concat() {
        let mut ab = Alphabet::new();
        let r1 = parse_regex(&mut ab, "section (paragraph + figure) caption").unwrap();
        let r2 = parse_regex(&mut ab, "section.(paragraph+figure).caption").unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn epsilon_and_empty() {
        let mut ab = Alphabet::new();
        assert_eq!(parse_regex(&mut ab, "()").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex(&mut ab, "( )").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex(&mut ab, "[]").unwrap(), Regex::Empty);
        assert_eq!(parse_regex(&mut ab, "ε").unwrap(), Regex::Epsilon);
        let r = parse_regex(&mut ab, "a + ()").unwrap();
        assert!(r.nullable());
    }

    #[test]
    fn postfix_operators() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*?").unwrap();
        let a = ab.get("a").unwrap();
        assert_eq!(r, Regex::sym(a).star().opt());
        // a* is already nullable so a*? == ... union dedups to the same set
        assert!(r.nullable());
    }

    #[test]
    fn quoted_labels() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, r#""CS Department"."DB group""#).unwrap();
        assert!(ab.get("CS Department").is_some());
        assert_eq!(r.as_word().map(|w| w.len()), Some(2));
    }

    #[test]
    fn error_positions() {
        let mut ab = Alphabet::new();
        let e = parse_regex(&mut ab, "a..b").unwrap_err();
        assert!(e.position >= 2, "{e}");
        assert!(parse_regex(&mut ab, "a)").is_err());
        assert!(parse_regex(&mut ab, "(a").is_err());
        assert!(parse_regex(&mut ab, "*a").is_err());
        assert!(parse_regex(&mut ab, "\"abc").is_err());
    }

    #[test]
    fn error_spans_and_hints() {
        let mut ab = Alphabet::new();
        // The misplaced second '.' of "a..b" is at bytes 2..3.
        let e = parse_regex(&mut ab, "a..b").unwrap_err();
        assert_eq!(e.span(), (2, 3));
        assert_eq!(e.found.as_deref(), Some("'.'"));
        assert!(e.expected.contains(&"a label"), "{:?}", e.expected);
        // An unclosed paren points at end of input and asks for ')'.
        let e = parse_regex(&mut ab, "(a").unwrap_err();
        assert_eq!(e.span(), (2, 2));
        assert_eq!(e.found.as_deref(), Some("end of input"));
        assert_eq!(e.expected, vec!["')'"]);
        // A stray closing paren is trailing input.
        let e = parse_regex(&mut ab, "a)").unwrap_err();
        assert_eq!(e.span(), (1, 2));
        assert_eq!(e.found.as_deref(), Some("')'"));
        assert!(e.expected.contains(&"end of input"));
        // An unterminated string spans from its opening quote to the end.
        let e = parse_regex(&mut ab, "\"abc").unwrap_err();
        assert_eq!(e.span(), (0, 4));
        // Display renders span, found token, and the hint set.
        let msg = parse_regex(&mut ab, "a + *").unwrap_err().to_string();
        assert!(msg.contains("found '*'"), "{msg}");
        assert!(msg.contains("expected a label"), "{msg}");
        // offset() shifts both ends for embedded-expression callers.
        let e = parse_regex(&mut ab, "a..b").unwrap_err().offset(10);
        assert_eq!(e.span(), (12, 13));
    }

    #[test]
    fn display_parse_round_trip() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "engine.(subpart)*.name + ()").unwrap();
        let printed = format!("{}", r.display(&ab));
        let reparsed = parse_regex(&mut ab, &printed).unwrap();
        assert_eq!(r, reparsed);
    }

    #[test]
    fn parse_word_accepts_only_words() {
        let mut ab = Alphabet::new();
        let w = parse_word(&mut ab, "a.b.c").unwrap();
        assert_eq!(w.len(), 3);
        assert!(parse_word(&mut ab, "a*").is_err());
        assert_eq!(parse_word(&mut ab, "()").unwrap(), vec![]);
    }

    #[test]
    fn plus_is_union_not_repetition() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a+b").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        assert_eq!(r, Regex::sym(a).or(Regex::sym(b)));
    }

    #[test]
    fn identifiers_can_contain_digits_and_dashes() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "cs345.CS-Department._tmp1").unwrap();
        assert_eq!(r.as_word().map(|w| w.len()), Some(3));
        assert!(ab.get("CS-Department").is_some());
    }
}
