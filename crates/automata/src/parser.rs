//! A parser for the paper's path-query syntax.
//!
//! Grammar (whitespace between tokens is insignificant except that it
//! separates adjacent identifiers):
//!
//! ```text
//! expr    := term ('+' term)*                 union  ('|' also accepted)
//! term    := factor (('.')? factor)*          concatenation
//! factor  := atom ('*' | '?')*                postfix star / optional
//! atom    := IDENT | STRING | '(' expr ')' | '()' | '[]'
//! IDENT   := [A-Za-z0-9_] [A-Za-z0-9_-]*
//! STRING  := '"' (escaped chars) '"'
//! ```
//!
//! `()` denotes ε and `[]` denotes the empty language, so every regex prints
//! (via [`crate::regex::RegexDisplay`]) to a string this parser accepts.
//! Following the paper, `+` is *union* (never one-or-more); write `p.p*` or
//! use [`crate::regex::Regex::plus`] programmatically.

use std::fmt;

use crate::alphabet::Alphabet;
use crate::regex::Regex;

/// Error with byte position produced by [`parse_regex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Plus,
    Dot,
    Star,
    Question,
    LParen,
    RParen,
    Epsilon,
    EmptyLang,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

impl<'a> Lexer<'a> {
    fn run(src: &'a str) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut lx = Lexer {
            src,
            pos: 0,
            toks: Vec::new(),
        };
        lx.lex()?;
        Ok(lx.toks)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn lex(&mut self) -> Result<(), ParseError> {
        while self.pos < self.src.len() {
            let rest = self.rest();
            let c = rest.chars().next().expect("non-empty rest");
            let start = self.pos;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += c.len_utf8();
                }
                '+' | '|' => {
                    self.toks.push((start, Tok::Plus));
                    self.pos += 1;
                }
                '.' => {
                    self.toks.push((start, Tok::Dot));
                    self.pos += 1;
                }
                '*' => {
                    self.toks.push((start, Tok::Star));
                    self.pos += 1;
                }
                '?' => {
                    self.toks.push((start, Tok::Question));
                    self.pos += 1;
                }
                '(' => {
                    // Lookahead for "()" = epsilon (possibly with inner spaces).
                    let mut j = self.pos + 1;
                    while j < self.src.len() && self.src.as_bytes()[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < self.src.len() && self.src.as_bytes()[j] == b')' {
                        self.toks.push((start, Tok::Epsilon));
                        self.pos = j + 1;
                    } else {
                        self.toks.push((start, Tok::LParen));
                        self.pos += 1;
                    }
                }
                ')' => {
                    self.toks.push((start, Tok::RParen));
                    self.pos += 1;
                }
                '[' => {
                    let mut j = self.pos + 1;
                    while j < self.src.len() && self.src.as_bytes()[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < self.src.len() && self.src.as_bytes()[j] == b']' {
                        self.toks.push((start, Tok::EmptyLang));
                        self.pos = j + 1;
                    } else {
                        return Err(self.err("expected ']' to close empty-language '[]'"));
                    }
                }
                '"' => {
                    self.pos += 1;
                    let mut name = String::new();
                    loop {
                        let Some(c) = self.rest().chars().next() else {
                            return Err(self.err("unterminated string literal"));
                        };
                        self.pos += c.len_utf8();
                        match c {
                            '"' => break,
                            '\\' => {
                                let Some(e) = self.rest().chars().next() else {
                                    return Err(self.err("dangling escape in string"));
                                };
                                self.pos += e.len_utf8();
                                name.push(e);
                            }
                            other => name.push(other),
                        }
                    }
                    self.toks.push((start, Tok::Ident(name)));
                }
                'ε' => {
                    self.toks.push((start, Tok::Epsilon));
                    self.pos += c.len_utf8();
                }
                '∅' => {
                    self.toks.push((start, Tok::EmptyLang));
                    self.pos += c.len_utf8();
                }
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    let mut end = self.pos;
                    for ch in rest.chars() {
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' {
                            end += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let name = &self.src[self.pos..end];
                    self.toks.push((start, Tok::Ident(name.to_owned())));
                    self.pos = end;
                }
                other => {
                    return Err(self.err(format!("unexpected character {other:?}")));
                }
            }
        }
        Ok(())
    }
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    i: usize,
    alphabet: &'a mut Alphabet,
    input_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.i)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos(),
            message: message.into(),
        }
    }

    fn expr(&mut self) -> Result<Regex, ParseError> {
        let mut arms = vec![self.term()?];
        while matches!(self.peek(), Some(Tok::Plus)) {
            self.bump();
            arms.push(self.term()?);
        }
        Ok(Regex::union(arms))
    }

    fn term(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.factor()?];
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.bump();
                    parts.push(self.factor()?);
                }
                Some(Tok::Ident(_) | Tok::LParen | Tok::Epsilon | Tok::EmptyLang) => {
                    parts.push(self.factor()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn factor(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    r = r.star();
                }
                Some(Tok::Question) => {
                    self.bump();
                    r = r.opt();
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(Regex::sym(self.alphabet.intern(&name))),
            Some(Tok::Epsilon) => Ok(Regex::Epsilon),
            Some(Tok::EmptyLang) => Ok(Regex::Empty),
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            Some(t) => Err(self.err(format!("unexpected token {t:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parse a path query, interning labels into `alphabet`.
pub fn parse_regex(alphabet: &mut Alphabet, src: &str) -> Result<Regex, ParseError> {
    let toks = Lexer::run(src)?;
    let input_len = src.len();
    let mut p = Parser {
        toks,
        i: 0,
        alphabet,
        input_len,
    };
    let r = p.expr()?;
    if p.i != p.toks.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(r)
}

/// Parse a *word* (a label sequence such as `a.b.c` or `a b c`; `()` for ε).
/// Errors if the expression denotes anything other than a single word.
pub fn parse_word(alphabet: &mut Alphabet, src: &str) -> Result<Vec<crate::Symbol>, ParseError> {
    let r = parse_regex(alphabet, src)?;
    r.as_word().ok_or(ParseError {
        position: 0,
        message: format!("expression {src:?} is not a single word"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_operators() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a.(b+c)*.d").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        let c = ab.get("c").unwrap();
        let d = ab.get("d").unwrap();
        let expect = Regex::sym(a)
            .then(Regex::sym(b).or(Regex::sym(c)).star())
            .then(Regex::sym(d));
        assert_eq!(r, expect);
    }

    #[test]
    fn juxtaposition_is_concat() {
        let mut ab = Alphabet::new();
        let r1 = parse_regex(&mut ab, "section (paragraph + figure) caption").unwrap();
        let r2 = parse_regex(&mut ab, "section.(paragraph+figure).caption").unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn epsilon_and_empty() {
        let mut ab = Alphabet::new();
        assert_eq!(parse_regex(&mut ab, "()").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex(&mut ab, "( )").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex(&mut ab, "[]").unwrap(), Regex::Empty);
        assert_eq!(parse_regex(&mut ab, "ε").unwrap(), Regex::Epsilon);
        let r = parse_regex(&mut ab, "a + ()").unwrap();
        assert!(r.nullable());
    }

    #[test]
    fn postfix_operators() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a*?").unwrap();
        let a = ab.get("a").unwrap();
        assert_eq!(r, Regex::sym(a).star().opt());
        // a* is already nullable so a*? == ... union dedups to the same set
        assert!(r.nullable());
    }

    #[test]
    fn quoted_labels() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, r#""CS Department"."DB group""#).unwrap();
        assert!(ab.get("CS Department").is_some());
        assert_eq!(r.as_word().map(|w| w.len()), Some(2));
    }

    #[test]
    fn error_positions() {
        let mut ab = Alphabet::new();
        let e = parse_regex(&mut ab, "a..b").unwrap_err();
        assert!(e.position >= 2, "{e}");
        assert!(parse_regex(&mut ab, "a)").is_err());
        assert!(parse_regex(&mut ab, "(a").is_err());
        assert!(parse_regex(&mut ab, "*a").is_err());
        assert!(parse_regex(&mut ab, "\"abc").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "engine.(subpart)*.name + ()").unwrap();
        let printed = format!("{}", r.display(&ab));
        let reparsed = parse_regex(&mut ab, &printed).unwrap();
        assert_eq!(r, reparsed);
    }

    #[test]
    fn parse_word_accepts_only_words() {
        let mut ab = Alphabet::new();
        let w = parse_word(&mut ab, "a.b.c").unwrap();
        assert_eq!(w.len(), 3);
        assert!(parse_word(&mut ab, "a*").is_err());
        assert_eq!(parse_word(&mut ab, "()").unwrap(), vec![]);
    }

    #[test]
    fn plus_is_union_not_repetition() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "a+b").unwrap();
        let a = ab.get("a").unwrap();
        let b = ab.get("b").unwrap();
        assert_eq!(r, Regex::sym(a).or(Regex::sym(b)));
    }

    #[test]
    fn identifiers_can_contain_digits_and_dashes() {
        let mut ab = Alphabet::new();
        let r = parse_regex(&mut ab, "cs345.CS-Department._tmp1").unwrap();
        assert_eq!(r.as_word().map(|w| w.len()), Some(3));
        assert!(ab.get("CS-Department").is_some());
    }
}
