//! Label alphabets and interned symbols.
//!
//! The paper fixes "a finite set of labels Σ" (Section 2). All crates in this
//! workspace share one [`Alphabet`] per scenario so that regular expressions,
//! graph edges, and path constraints speak about the same symbols. A
//! [`Symbol`] is a dense `u32` index into the alphabet, cheap to copy, hash,
//! and order; automata transition tables are indexed by it directly.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An interned label. Obtained from [`Alphabet::intern`].
///
/// Symbols are only meaningful relative to the alphabet that produced them;
/// mixing symbols from different alphabets is a logic error (not UB, but the
/// names will be wrong or out of range).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Construct a symbol from a raw index. Intended for dense loops over
    /// `0..alphabet.len()`; prefer [`Alphabet::intern`] elsewhere.
    #[inline]
    pub fn from_index(i: usize) -> Symbol {
        Symbol(i as u32)
    }

    /// The dense index of this symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A string interner for edge labels.
///
/// The alphabet is append-only: interning the same name twice returns the
/// same [`Symbol`]. Symbols are handed out densely starting at 0, so they can
/// index `Vec`-based transition tables without hashing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Alphabet {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Build an alphabet from a list of names (duplicates collapse).
    pub fn from_names<I, S>(names: I) -> Alphabet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ab = Alphabet::new();
        for n in names {
            ab.intern(n.as_ref());
        }
        ab
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&i) = self.index.get(name) {
            return Symbol(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        Symbol(i)
    }

    /// Intern every character of `s` as a one-character label, in order.
    /// Used by the two-level "general path query" machinery of Section 2.4.
    pub fn intern_chars(&mut self, s: &str) -> Vec<Symbol> {
        s.chars().map(|c| self.intern(&c.to_string())).collect()
    }

    /// Look up a name without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).map(|&i| Symbol(i))
    }

    /// The name of a symbol. Panics if the symbol is out of range for this
    /// alphabet (i.e. came from a different alphabet).
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Render a word (sequence of symbols) as dot-separated label names.
    pub fn render_word(&self, word: &[Symbol]) -> String {
        if word.is_empty() {
            return "()".to_owned();
        }
        word.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Rebuild the reverse index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        assert_ne!(a, b);
        assert_eq!(a, ab.intern("a"));
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.name(a), "a");
        assert_eq!(ab.name(b), "b");
    }

    #[test]
    fn symbols_are_dense() {
        let ab = Alphabet::from_names(["x", "y", "z"]);
        let idx: Vec<usize> = ab.symbols().map(|s| s.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn intern_chars_interns_each_character() {
        let mut ab = Alphabet::new();
        let w = ab.intern_chars("aba");
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], w[2]);
        assert_ne!(w[0], w[1]);
        assert_eq!(ab.name(w[1]), "b");
    }

    #[test]
    fn render_word_formats() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        assert_eq!(ab.render_word(&[a, b, a]), "a.b.a");
        assert_eq!(ab.render_word(&[]), "()");
    }

    #[test]
    fn get_does_not_intern() {
        let mut ab = Alphabet::new();
        assert!(ab.get("a").is_none());
        let a = ab.intern("a");
        assert_eq!(ab.get("a"), Some(a));
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut ab = Alphabet::from_names(["p", "q"]);
        ab.index.clear();
        assert!(ab.get("p").is_none());
        ab.rebuild_index();
        assert_eq!(ab.get("p").map(|s| s.index()), Some(0));
    }
}
