//! Property tests for the language-theory substrate: the algebraic laws and
//! cross-representation agreements everything downstream relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rpq_automata::derivative::{accepts as re_accepts, derivative};
use rpq_automata::elim::nfa_to_regex;
use rpq_automata::ops::{
    equivalent, equivalent_hopcroft_karp, included_antichain, included_naive, regex_included,
    union_sigma,
};
use rpq_automata::random::{random_regex, sample_word, RegexGenConfig};
use rpq_automata::{Alphabet, DerivativeClosure, Dfa, Nfa, Regex, Symbol};

fn syms() -> (Alphabet, Vec<Symbol>) {
    let ab = Alphabet::from_names(["a", "b", "c"]);
    let s = ab.symbols().collect();
    (ab, s)
}

fn gen(seed: u64) -> (Alphabet, Vec<Symbol>, Regex) {
    let (ab, s) = syms();
    let cfg = RegexGenConfig::new(s.clone());
    let r = random_regex(&mut StdRng::seed_from_u64(seed), &cfg);
    (ab, s, r)
}

fn words_up_to(syms: &[Symbol], n: usize) -> Vec<Vec<Symbol>> {
    let mut all: Vec<Vec<Symbol>> = vec![vec![]];
    let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &layer {
            for &s in syms {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        all.extend(next.iter().cloned());
        layer = next;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ∂_a then membership = membership of a·w (the defining law).
    #[test]
    fn derivative_law(seed in 0u64..100_000) {
        let (_, s, r) = gen(seed);
        for &a in &s {
            let d = derivative(&r, a);
            for w in words_up_to(&s, 3) {
                let mut aw = vec![a];
                aw.extend(w.iter().copied());
                prop_assert_eq!(re_accepts(&d, &w), re_accepts(&r, &aw));
            }
        }
    }

    /// Thompson NFA, Glushkov NFA, subset DFA, minimized DFA, and the
    /// derivative closure DFA all accept the same words.
    #[test]
    fn five_representations_agree(seed in 0u64..100_000) {
        let (ab, s, r) = gen(seed);
        let nfa = Nfa::thompson(&r);
        let glu = rpq_automata::glushkov(&r);
        let dfa = Dfa::from_nfa(&nfa, ab.len());
        let min = dfa.minimize();
        let closure = DerivativeClosure::compute(&r, &s, 10_000).unwrap();
        let cdfa = closure.to_dfa(ab.len());
        for w in words_up_to(&s, 4) {
            let expect = nfa.accepts(&w);
            prop_assert_eq!(glu.accepts(&w), expect);
            prop_assert_eq!(dfa.accepts(&w), expect);
            prop_assert_eq!(min.accepts(&w), expect);
            prop_assert_eq!(cdfa.accepts(&w), expect);
        }
        // Glushkov is ε-free with positions+1 states
        for st in 0..glu.num_states() as u32 {
            prop_assert!(glu.eps_transitions(st).is_empty());
        }
    }

    /// Minimization does not change word counts by length.
    #[test]
    fn minimize_preserves_census(seed in 0u64..100_000) {
        let (ab, _, r) = gen(seed);
        let dfa = Dfa::from_nfa(&Nfa::thompson(&r), ab.len());
        let min = dfa.minimize();
        prop_assert!(min.num_states() <= dfa.num_states());
        prop_assert_eq!(dfa.count_words_by_length(6), min.count_words_by_length(6));
    }

    /// The three inclusion/equivalence algorithms agree pairwise.
    #[test]
    fn decision_procedures_agree(seed in 0u64..100_000) {
        let (ab, s, _) = gen(seed);
        let cfg = RegexGenConfig::new(s);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(17));
        let p = random_regex(&mut rng, &cfg);
        let q = random_regex(&mut rng, &cfg);
        let (np, nq) = (Nfa::thompson(&p), Nfa::thompson(&q));
        let inc_naive = included_naive(&np, &nq, ab.len()).is_ok();
        let inc_anti = included_antichain(&np, &nq).is_ok();
        prop_assert_eq!(inc_naive, inc_anti);
        let eq_anti = equivalent(&np, &nq).is_ok();
        let eq_hk = equivalent_hopcroft_karp(&np, &nq, ab.len()).is_ok();
        prop_assert_eq!(eq_anti, eq_hk);
        // consistency: equal ⇒ included both ways
        if eq_anti {
            prop_assert!(inc_anti);
        }
    }

    /// The three inclusion deciders — the regex-level wrapper, the naive
    /// subset-construction check, and the antichain search — agree on
    /// random pairs, with the naive decider's alphabet bound derived from
    /// the *union* of the operands' transition labels ([`union_sigma`])
    /// rather than from an ambient alphabet, and every verdict is
    /// consistent with brute-force word enumeration.
    #[test]
    fn inclusion_deciders_agree_with_derived_sigma(seed in 0u64..100_000) {
        let (_, s, _) = gen(seed);
        let cfg = RegexGenConfig::new(s.clone());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(41));
        let p = random_regex(&mut rng, &cfg);
        let q = random_regex(&mut rng, &cfg);
        let (np, nq) = (Nfa::thompson(&p), Nfa::thompson(&q));
        let sigma = union_sigma(&np, &nq);
        let via_regex = regex_included(&p, &q);
        let via_naive = included_naive(&np, &nq, sigma).is_ok();
        let via_anti = included_antichain(&np, &nq).is_ok();
        prop_assert_eq!(via_regex, via_naive);
        prop_assert_eq!(via_naive, via_anti);
        // ground truth on short words: included ⇒ no short counterexample,
        // and any short counterexample ⇒ not included
        for w in words_up_to(&s, 4) {
            if np.accepts(&w) && !nq.accepts(&w) {
                prop_assert!(!via_anti, "short counterexample refutes inclusion");
                break;
            }
        }
        if via_anti {
            for w in words_up_to(&s, 4) {
                prop_assert!(!np.accepts(&w) || nq.accepts(&w));
            }
        }
    }

    /// State elimination round-trips the language.
    #[test]
    fn elimination_round_trip(seed in 0u64..100_000) {
        let (_, _, r) = gen(seed);
        let back = nfa_to_regex(&Nfa::thompson(&r));
        prop_assert!(
            equivalent(&Nfa::thompson(&r), &Nfa::thompson(&back)).is_ok(),
            "elimination changed the language"
        );
    }

    /// Reversal is a language anti-isomorphism and an involution.
    #[test]
    fn reversal_laws(seed in 0u64..100_000) {
        let (_, s, r) = gen(seed);
        let rev = r.reverse();
        let nfa = Nfa::thompson(&r);
        let nrev = Nfa::thompson(&rev);
        for w in words_up_to(&s, 4) {
            let mut back = w.clone();
            back.reverse();
            prop_assert_eq!(nfa.accepts(&w), nrev.accepts(&back));
        }
        prop_assert_eq!(rev.reverse(), r);
    }

    /// NFA reversal agrees with regex reversal.
    #[test]
    fn nfa_reverse_agrees(seed in 0u64..100_000) {
        let (_, s, r) = gen(seed);
        let via_regex = Nfa::thompson(&r.reverse());
        let via_nfa = Nfa::thompson(&r).reverse();
        for w in words_up_to(&s, 4) {
            prop_assert_eq!(via_regex.accepts(&w), via_nfa.accepts(&w));
        }
    }

    /// Finiteness decisions agree between NFA and DFA, and with the
    /// syntactic finite-language extraction when it succeeds.
    #[test]
    fn finiteness_agrees(seed in 0u64..100_000) {
        let (ab, _, r) = gen(seed);
        let nfa = Nfa::thompson(&r);
        let dfa = Dfa::from_nfa(&nfa, ab.len());
        prop_assert_eq!(nfa.is_finite_lang(), dfa.is_finite_lang());
        if let Some(words) = r.finite_language(4096) {
            prop_assert!(nfa.is_finite_lang());
            for w in &words {
                prop_assert!(nfa.accepts(w));
            }
        }
    }

    /// Sampled words are members; shortest-accepted is minimal and a member.
    #[test]
    fn sampling_and_shortest(seed in 0u64..100_000) {
        let (_, _, r) = gen(seed);
        let nfa = Nfa::thompson(&r);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(w) = sample_word(&mut rng, &r, 12) {
            prop_assert!(nfa.accepts(&w));
        }
        match nfa.shortest_accepted() {
            None => prop_assert!(nfa.is_empty_lang()),
            Some(w) => {
                prop_assert!(nfa.accepts(&w));
                // nothing shorter is accepted
                for shorter in nfa.enumerate_words(w.len().saturating_sub(1), 1) {
                    prop_assert!(shorter.len() >= w.len());
                }
            }
        }
    }

    /// Intersection product accepts exactly the conjunction.
    #[test]
    fn intersection_is_conjunction(seed in 0u64..100_000) {
        let (_, s, _) = gen(seed);
        let cfg = RegexGenConfig::new(s.clone());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(99));
        let p = random_regex(&mut rng, &cfg);
        let q = random_regex(&mut rng, &cfg);
        let (np, nq) = (Nfa::thompson(&p), Nfa::thompson(&q));
        let both = Nfa::intersection(&np, &nq);
        for w in words_up_to(&s, 4) {
            prop_assert_eq!(both.accepts(&w), np.accepts(&w) && nq.accepts(&w));
        }
    }

    /// Union/concat/star smart constructors respect the algebra semantically.
    #[test]
    fn constructor_semantics(seed in 0u64..100_000) {
        let (_, s, _) = gen(seed);
        let cfg = RegexGenConfig::new(s.clone());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let p = random_regex(&mut rng, &cfg);
        let q = random_regex(&mut rng, &cfg);
        let u = p.clone().or(q.clone());
        let cat = p.clone().then(q.clone());
        let st = p.clone().star();
        let (np, nq) = (Nfa::thompson(&p), Nfa::thompson(&q));
        let (nu, ncat, nst) = (Nfa::thompson(&u), Nfa::thompson(&cat), Nfa::thompson(&st));
        for w in words_up_to(&s, 3) {
            prop_assert_eq!(nu.accepts(&w), np.accepts(&w) || nq.accepts(&w));
            // concat: check via split
            let mut concat_expect = false;
            for i in 0..=w.len() {
                if np.accepts(&w[..i]) && nq.accepts(&w[i..]) {
                    concat_expect = true;
                    break;
                }
            }
            prop_assert_eq!(ncat.accepts(&w), concat_expect);
            let _ = &nst;
        }
        // star sanity
        prop_assert!(nst.accepts(&[]));
    }
}

#[test]
fn parser_printer_round_trip_on_random_regexes() {
    let (ab, s) = syms();
    let cfg = RegexGenConfig::new(s);
    for seed in 0..200u64 {
        let r = random_regex(&mut StdRng::seed_from_u64(seed), &cfg);
        let printed = format!("{}", r.display(&ab));
        let mut ab2 = ab.clone();
        let reparsed = rpq_automata::parse_regex(&mut ab2, &printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(r, reparsed, "round trip changed {printed}");
    }
}
