//! Per-query-class serving metrics: latency percentiles, work counters,
//! termination outcomes, admission rejections.
//!
//! Every worker thread records into the shared [`Metrics`] after its
//! evaluation finishes; [`Metrics::class`] folds a class's window into a
//! [`ClassSnapshot`] on demand. Latencies are kept in a bounded sliding
//! window per class (last [`LATENCY_WINDOW`] queries), so a long-lived
//! server's percentiles track *recent* behavior and memory stays flat.
//!
//! The per-class `push_levels` / `pull_levels` sums are the calibration
//! telemetry for the hybrid BFS's `PULL_SWEEP_DISCOUNT` (see the ROADMAP):
//! aggregated across a real workload they say how often the
//! direction-optimizing switch fires per class, which is the denominator
//! the discount constant should be fit against.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use rpq_core::{EvalStats, SourceSpec, Termination, PULL_SWEEP_DISCOUNT};

/// Sliding-window size for per-class latency percentiles.
pub const LATENCY_WINDOW: usize = 4096;

/// The request shapes the server accounts separately — one per
/// [`SourceSpec`] arm.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Single-source (`SourceSpec::Source`).
    Single,
    /// Multi-source batch (`SourceSpec::Sources`).
    Batch,
    /// Target-bound (`SourceSpec::Target`).
    TargetBound,
    /// Multi-target batch (`SourceSpec::Targets`).
    TargetBatch,
    /// Pair reachability (`SourceSpec::Pair`).
    Pair,
    /// N×M reachability matrix (`SourceSpec::Matrix`).
    Matrix,
    /// Binding-set / conjunctive (`SourceSpec::Conjunctive`), including
    /// multi-atom CRPQs submitted as text.
    Conjunctive,
}

impl QueryClass {
    /// Every class, in display order.
    pub const ALL: [QueryClass; 7] = [
        QueryClass::Single,
        QueryClass::Batch,
        QueryClass::TargetBound,
        QueryClass::TargetBatch,
        QueryClass::Pair,
        QueryClass::Matrix,
        QueryClass::Conjunctive,
    ];

    /// The class a request shape belongs to.
    pub fn of(spec: &SourceSpec) -> QueryClass {
        match spec {
            SourceSpec::Source(_) => QueryClass::Single,
            SourceSpec::Sources(_) => QueryClass::Batch,
            SourceSpec::Target(_) => QueryClass::TargetBound,
            SourceSpec::Targets(_) => QueryClass::TargetBatch,
            SourceSpec::Pair { .. } => QueryClass::Pair,
            SourceSpec::Matrix { .. } => QueryClass::Matrix,
            SourceSpec::Conjunctive { .. } => QueryClass::Conjunctive,
        }
    }

    /// Stable display name (used by benches and logs).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Single => "single",
            QueryClass::Batch => "batch",
            QueryClass::TargetBound => "target",
            QueryClass::TargetBatch => "target-batch",
            QueryClass::Pair => "pair",
            QueryClass::Matrix => "matrix",
            QueryClass::Conjunctive => "conjunctive",
        }
    }

    fn index(self) -> usize {
        match self {
            QueryClass::Single => 0,
            QueryClass::Batch => 1,
            QueryClass::TargetBound => 2,
            QueryClass::TargetBatch => 3,
            QueryClass::Pair => 4,
            QueryClass::Matrix => 5,
            QueryClass::Conjunctive => 6,
        }
    }
}

#[derive(Default)]
struct ClassAgg {
    queries: usize,
    edges_scanned: usize,
    answers: usize,
    push_levels: usize,
    pull_levels: usize,
    complete: usize,
    budget_exhausted: usize,
    cancelled: usize,
    atoms_evaluated: usize,
    atom_edges_scanned: usize,
    threads_peak: usize,
    steal_count: usize,
    parallel_levels: usize,
    latencies_ns: VecDeque<u64>,
}

/// One class's folded metrics at a point in time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// Queries recorded (lifetime of the server, not the window).
    pub queries: usize,
    /// Total `edges_scanned` across the class's queries.
    pub edges_scanned: usize,
    /// Total answers produced.
    pub answers: usize,
    /// Total sparse *push* BFS levels (PULL_SWEEP_DISCOUNT telemetry).
    pub push_levels: usize,
    /// Total dense *pull* BFS levels (PULL_SWEEP_DISCOUNT telemetry).
    pub pull_levels: usize,
    /// Runs that explored everything.
    pub complete: usize,
    /// Runs stopped by the fetch budget.
    pub budget_exhausted: usize,
    /// Runs stopped by cooperative cancellation.
    pub cancelled: usize,
    /// Conjunctive atoms evaluated (one per [`rpq_core::AtomStats`]
    /// record) — together with `queries` this gives the average join size
    /// the class serves.
    pub atoms_evaluated: usize,
    /// Edges scanned attributable to individual conjunctive atoms (the sum
    /// of per-atom `edges_scanned`; join-order telemetry).
    pub atom_edges_scanned: usize,
    /// Most OS threads any single query of this class engaged (1 =
    /// everything ran sequentially; 0 = no query reported the counter).
    pub threads_peak: usize,
    /// Total chunk/wave claims beyond workers' static fair shares — the
    /// intra-query work-stealing telemetry, summed across queries.
    pub steal_count: usize,
    /// Total BFS levels (or wave fan-outs) expanded with more than one
    /// worker thread.
    pub parallel_levels: usize,
    /// Median latency over the sliding window, nanoseconds (0 when empty).
    pub p50_latency_ns: u64,
    /// 99th-percentile latency over the sliding window, nanoseconds.
    pub p99_latency_ns: u64,
}

/// Shared serving metrics: one aggregate per [`QueryClass`] plus the
/// admission-rejection counter.
#[derive(Default)]
pub struct Metrics {
    classes: [Mutex<ClassAgg>; 7],
    rejected: AtomicUsize,
    /// Lifetime queries recorded, readable without taking a class lock
    /// (the calibration pass keys its cadence off this).
    recorded: AtomicUsize,
    /// Latest observed [`rpq_core::ScratchPool`] arena-allocation count
    /// (engine-global; refreshed at each record point).
    scratch_allocs: AtomicUsize,
    /// Latest observed [`rpq_core::ScratchPool`] warm-checkout count.
    scratch_reuses: AtomicUsize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one finished query.
    pub fn record(
        &self,
        class: QueryClass,
        latency: Duration,
        stats: &EvalStats,
        termination: Termination,
    ) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut agg = self.classes[class.index()].lock();
        agg.queries += 1;
        agg.edges_scanned += stats.edges_scanned;
        agg.answers += stats.answers;
        agg.push_levels += stats.push_levels;
        agg.pull_levels += stats.pull_levels;
        agg.threads_peak = agg.threads_peak.max(stats.threads_used);
        agg.steal_count += stats.steal_count;
        agg.parallel_levels += stats.parallel_levels;
        agg.atoms_evaluated += stats.atoms.len();
        agg.atom_edges_scanned += stats.atoms.iter().map(|a| a.edges_scanned).sum::<usize>();
        match termination {
            Termination::Complete => agg.complete += 1,
            Termination::BudgetExhausted => agg.budget_exhausted += 1,
            Termination::Cancelled => agg.cancelled += 1,
        }
        if agg.latencies_ns.len() == LATENCY_WINDOW {
            agg.latencies_ns.pop_front();
        }
        agg.latencies_ns
            .push_back(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Count one admission rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Submissions rejected by admission control so far.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Fold one class's aggregate into a snapshot (computes the window
    /// percentiles).
    pub fn class(&self, class: QueryClass) -> ClassSnapshot {
        let agg = self.classes[class.index()].lock();
        let mut window: Vec<u64> = agg.latencies_ns.iter().copied().collect();
        window.sort_unstable();
        ClassSnapshot {
            queries: agg.queries,
            edges_scanned: agg.edges_scanned,
            answers: agg.answers,
            push_levels: agg.push_levels,
            pull_levels: agg.pull_levels,
            complete: agg.complete,
            budget_exhausted: agg.budget_exhausted,
            cancelled: agg.cancelled,
            atoms_evaluated: agg.atoms_evaluated,
            atom_edges_scanned: agg.atom_edges_scanned,
            threads_peak: agg.threads_peak,
            steal_count: agg.steal_count,
            parallel_levels: agg.parallel_levels,
            p50_latency_ns: percentile(&window, 0.50),
            p99_latency_ns: percentile(&window, 0.99),
        }
    }

    /// Lifetime queries recorded across every class, without locking any
    /// class aggregate (cheap enough to read on every record point).
    pub fn recorded(&self) -> usize {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Refresh the engine-global scratch-pool counters (latest values win;
    /// the pool counters are monotonic, so any record point's observation
    /// is a valid snapshot).
    pub fn observe_scratch(&self, allocs: usize, reuses: usize) {
        self.scratch_allocs.store(allocs, Ordering::Relaxed);
        self.scratch_reuses.store(reuses, Ordering::Relaxed);
    }

    /// Arena allocations the engine's [`rpq_core::ScratchPool`] has
    /// performed (cold checkouts), as last observed at a record point.
    pub fn scratch_allocs(&self) -> usize {
        self.scratch_allocs.load(Ordering::Relaxed)
    }

    /// Warm arena checkouts (reuses) of the engine's scratch pool, as last
    /// observed at a record point.
    pub fn scratch_reuses(&self) -> usize {
        self.scratch_reuses.load(Ordering::Relaxed)
    }

    /// Total queries recorded across every class.
    pub fn total_queries(&self) -> usize {
        QueryClass::ALL.iter().map(|&c| self.class(c).queries).sum()
    }

    /// Calibrate the hybrid BFS's pull-sweep pricing discount from the
    /// aggregated `push_levels` / `pull_levels` telemetry (feed the result
    /// into `rpq_optimizer::PlannerConfig::pull_sweep_discount`).
    ///
    /// The hybrid search prices one dense pull sweep at
    /// `|Q|·|V| / discount` edge scans; the discount therefore controls
    /// how deep into a search the switch fires. On BFS-shaped workloads
    /// the dense tail is roughly the deepest quarter of levels, so the
    /// calibration steers the *observed* pull fraction toward 1/4: a
    /// workload whose switch fires too rarely gets a larger discount
    /// (sweeps priced cheaper, switch fires earlier), one that over-pulls
    /// gets a smaller one. With no recorded levels the compiled-in
    /// [`rpq_core::PULL_SWEEP_DISCOUNT`] default is returned unchanged;
    /// the result is clamped to `[1, 4 × default]` so one skewed window
    /// cannot push the switch into a degenerate regime.
    pub fn suggest_pull_discount(&self) -> usize {
        let mut push = 0usize;
        let mut pull = 0usize;
        for &c in QueryClass::ALL.iter() {
            let s = self.class(c);
            push += s.push_levels;
            pull += s.pull_levels;
        }
        let total = push + pull;
        if total == 0 {
            return PULL_SWEEP_DISCOUNT;
        }
        const TARGET_PULL_FRACTION: f64 = 0.25;
        // At least one virtual pull level keeps the ratio finite when the
        // switch never fired in the window.
        let observed = (pull.max(1)) as f64 / total as f64;
        let scaled = (PULL_SWEEP_DISCOUNT as f64 * (TARGET_PULL_FRACTION / observed)).round();
        (scaled as usize).clamp(1, PULL_SWEEP_DISCOUNT * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(edges: usize) -> EvalStats {
        EvalStats {
            edges_scanned: edges,
            answers: 1,
            push_levels: 2,
            pull_levels: 1,
            ..EvalStats::default()
        }
    }

    #[test]
    fn records_aggregate_per_class() {
        let m = Metrics::new();
        m.record(
            QueryClass::Single,
            Duration::from_micros(10),
            &stats(100),
            Termination::Complete,
        );
        m.record(
            QueryClass::Single,
            Duration::from_micros(30),
            &stats(50),
            Termination::BudgetExhausted,
        );
        m.record(
            QueryClass::Pair,
            Duration::from_micros(5),
            &stats(7),
            Termination::Cancelled,
        );
        let s = m.class(QueryClass::Single);
        assert_eq!(s.queries, 2);
        assert_eq!(s.edges_scanned, 150);
        assert_eq!(s.complete, 1);
        assert_eq!(s.budget_exhausted, 1);
        assert_eq!(s.push_levels, 4);
        assert!(s.p50_latency_ns >= Duration::from_micros(10).as_nanos() as u64);
        assert!(s.p99_latency_ns >= s.p50_latency_ns);
        assert_eq!(m.class(QueryClass::Pair).cancelled, 1);
        assert_eq!(m.class(QueryClass::Matrix), ClassSnapshot::default());
        assert_eq!(m.total_queries(), 3);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = Metrics::new();
        for i in 0..LATENCY_WINDOW + 100 {
            m.record(
                QueryClass::Batch,
                Duration::from_nanos(i as u64),
                &stats(0),
                Termination::Complete,
            );
        }
        let s = m.class(QueryClass::Batch);
        assert_eq!(
            s.queries,
            LATENCY_WINDOW + 100,
            "lifetime count keeps going"
        );
        // the window dropped the 100 oldest (smallest) samples
        assert!(s.p50_latency_ns as usize >= 100 + LATENCY_WINDOW / 2 - 1);
    }

    #[test]
    fn class_of_covers_every_spec() {
        use rpq_graph::Oid;
        let o = Oid(0);
        assert_eq!(QueryClass::of(&SourceSpec::Source(o)), QueryClass::Single);
        assert_eq!(
            QueryClass::of(&SourceSpec::Sources(vec![o])),
            QueryClass::Batch
        );
        assert_eq!(
            QueryClass::of(&SourceSpec::Target(o)),
            QueryClass::TargetBound
        );
        assert_eq!(
            QueryClass::of(&SourceSpec::Targets(vec![o])),
            QueryClass::TargetBatch
        );
        assert_eq!(
            QueryClass::of(&SourceSpec::Pair {
                source: o,
                target: o
            }),
            QueryClass::Pair
        );
        assert_eq!(
            QueryClass::of(&SourceSpec::Matrix {
                sources: vec![o],
                targets: vec![o]
            }),
            QueryClass::Matrix
        );
        assert_eq!(
            QueryClass::of(&SourceSpec::Conjunctive {
                sources: Some(vec![o]),
                targets: None
            }),
            QueryClass::Conjunctive
        );
    }

    #[test]
    fn atom_telemetry_aggregates() {
        use rpq_core::AtomStats;
        let m = Metrics::new();
        let s = EvalStats {
            edges_scanned: 30,
            atoms: vec![
                AtomStats {
                    atom: 1,
                    direction: None,
                    edges_scanned: 20,
                    bindings: 4,
                },
                AtomStats {
                    atom: 0,
                    direction: None,
                    edges_scanned: 10,
                    bindings: 2,
                },
            ],
            ..EvalStats::default()
        };
        m.record(
            QueryClass::Conjunctive,
            Duration::from_micros(1),
            &s,
            Termination::Complete,
        );
        let snap = m.class(QueryClass::Conjunctive);
        assert_eq!(snap.atoms_evaluated, 2);
        assert_eq!(snap.atom_edges_scanned, 30);
    }

    #[test]
    fn pull_discount_suggestion_tracks_the_level_mix() {
        let m = Metrics::new();
        assert_eq!(
            m.suggest_pull_discount(),
            PULL_SWEEP_DISCOUNT,
            "no data keeps the compiled-in default"
        );
        // All-push workload: the switch never fires, so the suggestion
        // rises (pull sweeps priced cheaper) up to the clamp.
        for _ in 0..10 {
            m.record(
                QueryClass::Single,
                Duration::from_micros(1),
                &EvalStats {
                    push_levels: 100,
                    ..EvalStats::default()
                },
                Termination::Complete,
            );
        }
        assert!(m.suggest_pull_discount() > PULL_SWEEP_DISCOUNT);
        assert!(m.suggest_pull_discount() <= PULL_SWEEP_DISCOUNT * 4);
        // Pull-heavy workload: the suggestion drops below the default.
        let m2 = Metrics::new();
        m2.record(
            QueryClass::Single,
            Duration::from_micros(1),
            &EvalStats {
                push_levels: 10,
                pull_levels: 90,
                ..EvalStats::default()
            },
            Termination::Complete,
        );
        assert!(m2.suggest_pull_discount() < PULL_SWEEP_DISCOUNT);
        assert!(m2.suggest_pull_discount() >= 1);
    }
}
