//! [`Catalog`] — the MVCC heart of the serving layer: an `Arc`-swapped
//! lineage of [`DeltaGraph`] epochs.
//!
//! One writer keeps absorbing [`EdgeDelta`] batches into a private
//! **master** copy; after every commit it publishes an immutable
//! `Arc<DeltaGraph>` snapshot. Readers [`Catalog::pin`] the published Arc
//! and evaluate against it for as long as they like — the publish path
//! never mutates a published snapshot, so a pinned reader is **never**
//! blocked or disturbed, not even by compaction:
//!
//! ```text
//!          writer                         readers
//!   ┌──────────────────┐
//!   │ master DeltaGraph │ apply_delta ──┐
//!   └──────────────────┘               │ clone (cheap: Arc'd base +
//!            │ maybe_compact(policy)    │  overlay logs only)
//!            ▼                          ▼
//!   published: RwLock<Arc<DeltaGraph>> ───► pin() ─► Arc<DeltaGraph>
//!            │                                        (epoch e₇)
//!            ▼ retained ring (≤ retention, default MAX_RETAINED_EPOCHS)
//!   [e₄] [e₅] [e₆] [e₇]  ───► pin_at(e₅) for time travel
//! ```
//!
//! The publish-time clone is copy-on-write in the load-bearing dimension:
//! [`DeltaGraph`] holds its base CSR behind an `Arc`, so cloning copies
//! only the overlay logs (`O(log_len)`), never the `O(V + E)` base.
//! [`DeltaGraph::compact`] on the master installs a *fresh* base Arc with
//! a fresh [`Epoch`] lineage — snapshots published earlier keep the old
//! base alive until their last reader drops, which is exactly the
//! epoch-pinning contract the planner's memo keys on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use rpq_graph::{CompactionPolicy, CsrGraph, DeltaGraph, EdgeDelta, Epoch, Instance};

/// Default for how many published epochs [`Catalog::pin_at`] can still
/// reach ([`Catalog::with_retention`] overrides it per catalog). Older
/// snapshots stay alive only while some reader holds their Arc.
pub const MAX_RETAINED_EPOCHS: usize = 8;

/// What one [`Catalog::commit`] did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Commit {
    /// The epoch the commit published.
    pub epoch: Epoch,
    /// Mutations that actually took effect (duplicates and misses skipped).
    pub applied: usize,
    /// Did the compaction policy fire, folding the overlay into a fresh
    /// base lineage?
    pub compacted: bool,
}

/// The epoch-pinned snapshot store: one writer, any number of readers.
/// See the module docs for the lifecycle diagram.
pub struct Catalog {
    /// The writer's working copy. Only [`Catalog::commit`] locks it.
    master: Mutex<DeltaGraph>,
    /// The snapshot readers pin. Swapped whole on every commit.
    published: RwLock<Arc<DeltaGraph>>,
    /// Recent epochs for [`Catalog::pin_at`], newest last.
    retained: Mutex<VecDeque<Arc<DeltaGraph>>>,
    policy: CompactionPolicy,
    /// Ring capacity for [`Catalog::pin_at`] time travel.
    retention: usize,
    commits: AtomicUsize,
    compactions: AtomicUsize,
}

impl Catalog {
    /// A catalog seeded from an immutable base snapshot, with the default
    /// [`CompactionPolicy`].
    pub fn new(base: CsrGraph) -> Catalog {
        let master = DeltaGraph::from_shared(Arc::new(base));
        let published = Arc::new(master.clone());
        let mut retained = VecDeque::with_capacity(MAX_RETAINED_EPOCHS);
        retained.push_back(published.clone());
        Catalog {
            master: Mutex::new(master),
            published: RwLock::new(published),
            retained: Mutex::new(retained),
            policy: CompactionPolicy::default(),
            retention: MAX_RETAINED_EPOCHS,
            commits: AtomicUsize::new(0),
            compactions: AtomicUsize::new(0),
        }
    }

    /// A catalog seeded by snapshotting `instance`.
    pub fn from_instance(instance: &Instance) -> Catalog {
        Catalog::new(CsrGraph::from(instance))
    }

    /// Replace the compaction policy (e.g. [`CompactionPolicy::NEVER`] to
    /// pin the lineage for a test).
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Catalog {
        self.policy = policy;
        self
    }

    /// The active compaction policy.
    pub fn policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Replace the time-travel ring capacity (how many published epochs
    /// [`Catalog::pin_at`] can reach; default [`MAX_RETAINED_EPOCHS`]).
    /// Must be ≥ 1 — the latest epoch is always reachable. Shrinking below
    /// the current ring occupancy evicts the oldest epochs immediately;
    /// readers already pinned to them are unaffected (their Arcs keep the
    /// snapshots alive).
    pub fn with_retention(mut self, retention: usize) -> Catalog {
        assert!(retention >= 1, "retention must be ≥ 1");
        self.retention = retention;
        let mut retained = self.retained.lock();
        while retained.len() > retention {
            retained.pop_front();
        }
        drop(retained);
        self
    }

    /// The time-travel ring capacity.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Pin the latest published snapshot. The returned Arc stays valid —
    /// and *bitwise unchanged* — no matter how many deltas or compactions
    /// the writer commits afterwards.
    pub fn pin(&self) -> Arc<DeltaGraph> {
        self.published.read().clone()
    }

    /// Pin a specific retained epoch, if it is still within the
    /// [`MAX_RETAINED_EPOCHS`] ring.
    pub fn pin_at(&self, epoch: Epoch) -> Option<Arc<DeltaGraph>> {
        self.retained
            .lock()
            .iter()
            .rev()
            .find(|s| s.epoch() == epoch)
            .cloned()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> Epoch {
        self.published.read().epoch()
    }

    /// Apply one [`EdgeDelta`] batch and publish the resulting epoch:
    /// mutate the master copy, let the policy decide whether to fold the
    /// overlay down ([`DeltaGraph::maybe_compact`]), then swap in a fresh
    /// snapshot. Readers pinned to earlier epochs are untouched.
    pub fn commit(&self, delta: &EdgeDelta) -> Commit {
        let mut master = self.master.lock();
        let applied = master.apply_delta(delta);
        let compacted = master.maybe_compact(&self.policy);
        let snapshot = Arc::new(master.clone());
        let epoch = snapshot.epoch();
        // Publish while still holding the master lock so concurrent
        // commits cannot publish out of order.
        *self.published.write() = snapshot.clone();
        drop(master);
        self.commits.fetch_add(1, Ordering::Relaxed);
        if compacted {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
        let mut retained = self.retained.lock();
        while retained.len() >= self.retention {
            retained.pop_front();
        }
        retained.push_back(snapshot);
        Commit {
            epoch,
            applied,
            compacted,
        }
    }

    /// Delta batches committed so far.
    pub fn commits(&self) -> usize {
        self.commits.load(Ordering::Relaxed)
    }

    /// Commits on which the compaction policy fired.
    pub fn compactions(&self) -> usize {
        self.compactions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Alphabet;
    use rpq_graph::{InstanceBuilder, Oid};

    fn seed() -> (Alphabet, Catalog, Oid, Oid) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..8 {
            b.edge(&format!("n{i}"), "a", &format!("n{}", (i + 1) % 8));
        }
        let (inst, names) = b.finish();
        let (n0, n1) = (names["n0"], names["n1"]);
        (ab, Catalog::from_instance(&inst), n0, n1)
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_commits_and_compaction() {
        let (ab, catalog, n0, n1) = seed();
        let catalog = catalog.with_policy(CompactionPolicy {
            min_log_len: 4,
            max_log_ratio: 0.25,
            ..CompactionPolicy::default()
        });
        let a = ab.get("a").unwrap();
        let pinned = catalog.pin();
        let epoch0 = pinned.epoch();
        let edges0 = pinned.num_edges();

        // Accumulating chord edges (the base is the +1 ring, these are +2)
        // grow the log monotonically, so the ratio trigger must trip.
        let mut compacted_some = false;
        for round in 0..16u32 {
            let mut d = EdgeDelta::new();
            d.add(Oid(round % 8), a, Oid((round + 2) % 8));
            compacted_some |= catalog.commit(&d).compacted;
        }
        assert!(compacted_some, "the policy must fire under this churn");
        assert_eq!(pinned.epoch(), epoch0, "pinned epoch never moves");
        assert_eq!(pinned.num_edges(), edges0, "pinned data never moves");
        assert_ne!(catalog.epoch(), epoch0);
        assert!(catalog.compactions() >= 1);
        let fresh = catalog.pin();
        assert!(
            !fresh.shares_base_with(&pinned),
            "compaction must have installed a fresh base lineage"
        );
        let _ = (n0, n1);
    }

    #[test]
    fn pin_at_reaches_retained_epochs_only() {
        let (ab, catalog, n0, _) = seed();
        let catalog = catalog.with_policy(CompactionPolicy::NEVER);
        let a = ab.get("a").unwrap();
        let mut epochs = vec![catalog.epoch()];
        for i in 0..MAX_RETAINED_EPOCHS + 3 {
            let mut d = EdgeDelta::new();
            d.add(n0, a, Oid((i % 8) as u32));
            d.del(n0, a, Oid((i % 8) as u32));
            epochs.push(catalog.commit(&d).epoch);
        }
        // the newest epochs are reachable, the oldest have been evicted
        let newest = *epochs.last().unwrap();
        assert_eq!(catalog.pin_at(newest).unwrap().epoch(), newest);
        assert!(catalog.pin_at(epochs[0]).is_none(), "evicted from the ring");
        let reachable = epochs
            .iter()
            .filter(|&&e| catalog.pin_at(e).is_some())
            .count();
        assert_eq!(reachable, MAX_RETAINED_EPOCHS);
    }

    #[test]
    fn retention_is_configurable_and_shrinking_evicts_but_never_disturbs_pins() {
        let (ab, catalog, n0, _) = seed();
        let catalog = catalog
            .with_policy(CompactionPolicy::NEVER)
            .with_retention(3);
        assert_eq!(catalog.retention(), 3);
        let a = ab.get("a").unwrap();
        let pinned = catalog.pin();
        let e0 = pinned.epoch();
        let mut epochs = vec![e0];
        for i in 0..6 {
            let mut d = EdgeDelta::new();
            d.add(n0, a, Oid(i as u32 % 8));
            d.del(n0, a, Oid(i as u32 % 8));
            epochs.push(catalog.commit(&d).epoch);
        }
        // exactly the 3 newest epochs are reachable
        let reachable: Vec<_> = epochs
            .iter()
            .filter(|&&e| catalog.pin_at(e).is_some())
            .collect();
        assert_eq!(
            reachable,
            epochs.iter().rev().take(3).rev().collect::<Vec<_>>()
        );
        // the evicted seed epoch is gone from the ring, but the held pin
        // still serves it
        assert!(catalog.pin_at(e0).is_none());
        assert_eq!(pinned.epoch(), e0);

        // retention 1: only the latest epoch ever survives
        let (ab, catalog, n0, _) = seed();
        let catalog = catalog
            .with_policy(CompactionPolicy::NEVER)
            .with_retention(1);
        let a = ab.get("a").unwrap();
        let mut d = EdgeDelta::new();
        d.add(n0, a, n0);
        let c = catalog.commit(&d);
        assert_eq!(catalog.pin_at(c.epoch).unwrap().epoch(), c.epoch);
        let mut d = EdgeDelta::new();
        d.del(n0, a, n0);
        let c2 = catalog.commit(&d);
        assert!(catalog.pin_at(c.epoch).is_none());
        assert_eq!(catalog.pin_at(c2.epoch).unwrap().epoch(), c2.epoch);
    }

    #[test]
    fn commit_reports_applied_mutations_and_epochs_advance() {
        let (ab, catalog, n0, n1) = seed();
        let a = ab.get("a").unwrap();
        let mut d = EdgeDelta::new();
        d.add(n0, a, n0); // new
        d.add(n0, a, n1); // duplicate of a base edge
        let c = catalog.commit(&d);
        assert_eq!(c.applied, 1);
        assert_eq!(c.epoch, catalog.epoch());
        assert_eq!(catalog.commits(), 1);
    }
}
