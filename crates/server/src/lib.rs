//! # rpq-server
//!
//! The concurrent serving layer: sessions evaluate regular path queries
//! against **epoch-pinned snapshots** while a writer keeps absorbing edge
//! deltas — the production shape of the paper's query processor, built
//! entirely on the unified [`rpq_core::EvalRequest`] /
//! [`rpq_core::EvalResponse`] convention.
//!
//! Three pieces:
//!
//! * [`Catalog`] — an `Arc`-swapped lineage of [`rpq_graph::DeltaGraph`]
//!   epochs. The writer's [`Catalog::commit`] applies an
//!   [`rpq_graph::EdgeDelta`], lets the [`rpq_graph::CompactionPolicy`]
//!   decide whether to fold the overlay into a fresh base (measured
//!   log/base edge ratio and overlay-row overhead, not a guess), and
//!   publishes a new snapshot. Readers [`Catalog::pin`] an epoch and are
//!   never blocked — compaction is copy-on-write, so a reader pinned to an
//!   old epoch finishes undisturbed on the old base.
//! * [`Server`] / [`Session`] / [`QueryHandle`] — the submission API. A
//!   session pins an epoch; [`Session::submit`] runs the query on a worker
//!   thread through the shared [`rpq_optimizer::PlannedEngine`] (one plan
//!   memo and one `ScratchPool` across all workers), with per-query fetch
//!   budgets, cooperative cancellation, and admission control
//!   ([`SubmitError::Rejected`] above [`ServerConfig::max_concurrent`]).
//!   Queries enter as text via [`Session::submit_text`]
//!   (`parse("a.(b+c)*")` → constraints → analyze → plan → eval).
//! * [`Metrics`] — per-[`QueryClass`] latency percentiles (p50/p99 over a
//!   sliding window), `edges_scanned`, termination and rejection counts,
//!   parallel-evaluation telemetry (`threads_peak`, `steal_count`,
//!   `parallel_levels`, scratch-pool alloc/reuse counters), plus the
//!   push/pull level telemetry that drives the **live** pull-discount
//!   calibration: every 256 recorded queries the record path nudges the
//!   engine's discount a bounded step toward
//!   [`Metrics::suggest_pull_discount`], never touching in-flight queries.
//!
//! Intra-query parallelism: the shared engine owns an
//! [`rpq_core::WorkerPool`] sized by [`ServerConfig::parallelism`]; each
//! query leases extra workers only when the planner's frontier estimate
//! clears `rpq_core::PAR_LEVEL_THRESHOLD`, so small queries keep the
//! sequential hot path.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use rpq_automata::Alphabet;
//! use rpq_graph::{EdgeDelta, InstanceBuilder};
//! use rpq_core::{EvalRequest, Termination};
//! use rpq_server::{Catalog, Server};
//!
//! let mut ab = Alphabet::new();
//! let mut b = InstanceBuilder::new(&mut ab);
//! b.edge("o1", "a", "o2");
//! b.edge("o2", "b", "o3");
//! let (inst, names) = b.finish();
//! let server = Server::new(Arc::new(Catalog::from_instance(&inst)), ab.clone());
//!
//! // A session pins the current epoch; queries enter as text.
//! let session = server.session();
//! let q = server.parse("a.b*").unwrap();
//! let handle = session
//!     .submit(&q, EvalRequest::source(names["o1"]))
//!     .unwrap();
//! let resp = handle.join();
//! assert_eq!(resp.termination, Termination::Complete);
//! assert_eq!(resp.nodes().unwrap().len(), 2); // {o2, o3}
//!
//! // The writer keeps going; the session's pin is unaffected until refresh.
//! let a = ab.get("a").unwrap();
//! let mut d = EdgeDelta::new();
//! d.add(names["o2"], a, names["o1"]);
//! server.catalog().commit(&d);
//! assert_ne!(server.catalog().epoch(), session.epoch());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod metrics;
pub mod session;

pub use catalog::{Catalog, Commit, MAX_RETAINED_EPOCHS};
pub use metrics::{ClassSnapshot, Metrics, QueryClass, LATENCY_WINDOW};
pub use session::{QueryHandle, Server, ServerConfig, Session, SubmitError};

// The conjunctive-query surface served by `Session::submit_crpq` /
// `submit_text`, re-exported so serving clients need no direct
// `rpq_optimizer` dependency.
pub use rpq_optimizer::{Crpq, JoinPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use rpq_automata::Alphabet;
    use rpq_core::{
        eval_product_csr_with, EvalRequest, EvalScratch, FrontierMode, Query, SourceSpec,
        Termination,
    };
    use rpq_graph::{CompactionPolicy, DeltaGraph, EdgeDelta, InstanceBuilder, Oid};

    /// Exhaustive single-source answers over a pinned view, for soundness
    /// oracles.
    fn full_answers(q: &Query, view: &DeltaGraph, source: Oid) -> Vec<Oid> {
        let mut scratch = EvalScratch::new();
        eval_product_csr_with(q.nfa(), view, source, FrontierMode::Hybrid, &mut scratch).answers
    }

    /// A ring with a hub: n0 → n1 → … → n7 → n0 on `a`, hub edges on `b`.
    fn workload() -> (Alphabet, Arc<Catalog>, Vec<Oid>) {
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..8 {
            b.edge(&format!("n{i}"), "a", &format!("n{}", (i + 1) % 8));
            b.edge("hub", "b", &format!("n{i}"));
        }
        let (inst, names) = b.finish();
        let nodes = (0..8).map(|i| names[format!("n{i}").as_str()]).collect();
        (ab, Arc::new(Catalog::from_instance(&inst)), nodes)
    }

    #[test]
    fn text_query_flows_parse_plan_eval() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab);
        let session = server.session();
        let handle = session
            .submit_text("a.a*", SourceSpec::Source(nodes[0]))
            .unwrap();
        assert_eq!(handle.class(), QueryClass::Single);
        let resp = handle.join();
        assert_eq!(resp.termination, Termination::Complete);
        assert_eq!(resp.nodes().unwrap().len(), 8, "the whole ring");
        // the planner stamped the response
        assert_eq!(resp.stats.plan_cache_hits + resp.stats.plan_cache_misses, 1);
        assert_eq!(server.metrics().class(QueryClass::Single).queries, 1);
        // bad text is a parse error, not a panic
        let err = session.submit_text("a.(b", SourceSpec::Source(nodes[0]));
        assert!(matches!(err, Err(SubmitError::Parse(_))), "{err:?}");
    }

    #[test]
    fn admission_rejects_above_cap_and_frees_on_join() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab).with_config(ServerConfig {
            max_concurrent: 2,
            ..ServerConfig::default()
        });
        let session = server.session();
        let q = server.parse("a*").unwrap();
        let h1 = session.submit(&q, EvalRequest::source(nodes[0])).unwrap();
        let h2 = session.submit(&q, EvalRequest::source(nodes[1])).unwrap();
        // Slots are held until handles are joined/dropped, so the third
        // submission is rejected deterministically.
        match session.submit(&q, EvalRequest::source(nodes[2])) {
            Err(SubmitError::Rejected { active, cap }) => {
                assert_eq!((active, cap), (2, 2));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(server.metrics().rejected(), 1);
        assert_eq!(server.active_queries(), 2);
        h1.join();
        // the freed slot admits again
        let h3 = session.submit(&q, EvalRequest::source(nodes[2])).unwrap();
        h3.join();
        h2.join();
        assert_eq!(server.active_queries(), 0);
    }

    #[test]
    fn default_budget_terminates_runaways_soundly() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab).with_config(ServerConfig {
            max_concurrent: 4,
            default_budget: Some(3),
            ..ServerConfig::default()
        });
        let session = server.session();
        let q = server.parse("(a+b)*").unwrap();
        let resp = session
            .submit(&q, EvalRequest::source(nodes[0]))
            .unwrap()
            .join();
        assert_eq!(resp.termination, Termination::BudgetExhausted);
        assert!(resp.stats.edges_scanned <= 3, "budget binds");
        // answers are a sound subset of the exhaustive run
        let full = full_answers(&q, session.snapshot(), nodes[0]);
        for n in resp.nodes().unwrap() {
            assert!(full.contains(n));
        }
        assert_eq!(
            server.metrics().class(QueryClass::Single).budget_exhausted,
            1
        );
        // an explicit request budget overrides the default
        let resp = session
            .submit(&q, EvalRequest::source(nodes[0]).with_budget(1_000_000))
            .unwrap()
            .join();
        assert_eq!(resp.termination, Termination::Complete);
        assert_eq!(resp.nodes().unwrap(), &full[..]);
    }

    #[test]
    fn cancellation_yields_terminated_never_wrong() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab);
        let session = server.session();
        let q = server.parse("(a+b)*").unwrap();
        let full = full_answers(&q, session.snapshot(), nodes[0]);
        for _ in 0..8 {
            let handle = session.submit(&q, EvalRequest::source(nodes[0])).unwrap();
            handle.cancel();
            let resp = handle.join();
            // cancelled either before or after the search finished — both
            // are fine, but the answers must always be sound
            for n in resp.nodes().unwrap() {
                assert!(full.contains(n));
            }
            if resp.termination == Termination::Complete {
                assert_eq!(resp.nodes().unwrap(), &full[..]);
            }
        }
    }

    #[test]
    fn sessions_pin_epochs_and_refresh_moves_forward() {
        let (ab, catalog, nodes) = workload();
        let a = ab.get("a").unwrap();
        let server = Server::new(catalog, ab).with_config(ServerConfig::default());
        let mut session = server.session();
        let q = server.parse("a").unwrap();
        let e0 = session.epoch();
        let before = session.run(&q, &EvalRequest::source(nodes[0]));

        // writer commits a new a-edge from n0; the pinned session must
        // not see it until refresh
        let mut d = EdgeDelta::new();
        d.add(nodes[0], a, nodes[4]);
        let commit = server.catalog().commit(&d);
        assert_eq!(commit.applied, 1);
        assert_eq!(session.epoch(), e0, "pin holds");
        let still = session.run(&q, &EvalRequest::source(nodes[0]));
        assert_eq!(still.nodes().unwrap(), before.nodes().unwrap());

        session.refresh();
        assert_ne!(session.epoch(), e0);
        let after = session.run(&q, &EvalRequest::source(nodes[0]));
        assert_eq!(
            after.nodes().unwrap().len(),
            before.nodes().unwrap().len() + 1
        );

        // time travel back to the pinned epoch through the retained ring
        let old = server.session_at(e0).unwrap();
        let redo = old.run(&q, &EvalRequest::source(nodes[0]));
        assert_eq!(redo.nodes().unwrap(), before.nodes().unwrap());
    }

    #[test]
    fn workers_share_one_plan_memo_and_scratch_pool() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab);
        let session = server.session();
        let q = server.parse("a.a").unwrap();
        let handles: Vec<_> = nodes
            .iter()
            .map(|&s| session.submit(&q, EvalRequest::source(s)).unwrap())
            .collect();
        for h in handles {
            assert!(h.join().termination.is_complete());
        }
        assert_eq!(
            server.engine().plan_cache_misses(),
            1,
            "one plan compiled, every other worker hit the memo"
        );
        assert!(server.engine().plan_cache_hits() >= nodes.len() - 1);
        assert_eq!(server.metrics().class(QueryClass::Single).queries, 8);
    }

    #[test]
    fn matrix_and_pair_classes_route_through_the_same_entry() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab);
        let session = server.session();
        let q = server.parse("a.a*").unwrap();
        let m = session
            .submit(&q, EvalRequest::matrix(nodes.clone(), nodes.clone()))
            .unwrap();
        assert_eq!(m.class(), QueryClass::Matrix);
        let resp = m.join();
        let matrix = resp.matrix().unwrap();
        // the ring is strongly connected on `a`
        assert_eq!(matrix.reachable_count(), nodes.len() * nodes.len());
        let p = session
            .submit(&q, EvalRequest::pair(nodes[0], nodes[5]))
            .unwrap()
            .join();
        assert_eq!(p.reachable(), Some(true));
        assert_eq!(server.metrics().class(QueryClass::Pair).queries, 1);
    }

    #[test]
    fn conjunctive_text_flows_end_to_end() {
        // A 3-atom chain query through the full serving path: text →
        // parse_crpq → join planner → set-valued kernels → bindings.
        let mut ab = Alphabet::new();
        let mut b = InstanceBuilder::new(&mut ab);
        for i in 0..4 {
            b.edge(&format!("s{i}"), "a", &format!("m{i}"));
            b.edge(&format!("m{i}"), "b", &format!("t{i}"));
        }
        b.edge("t0", "c", "end");
        b.edge("t2", "c", "end");
        b.edge("noise", "a", "noise2");
        let (inst, names) = b.finish();
        let server = Server::new(Arc::new(Catalog::from_instance(&inst)), ab);
        let session = server.session();

        let handle = session
            .submit_text(
                "ans(x, w) :- x -[a]-> y, y -[b*]-> z, z -[c]-> w",
                SourceSpec::Conjunctive {
                    sources: None,
                    targets: None,
                },
            )
            .unwrap();
        assert_eq!(handle.class(), QueryClass::Conjunctive);
        let resp = handle.join();
        assert_eq!(resp.termination, Termination::Complete);
        let mut expected = [(names["s0"], names["end"]), (names["s2"], names["end"])];
        expected.sort_unstable();
        assert_eq!(resp.bindings().unwrap(), &expected[..]);
        // per-atom telemetry in execution order, aggregated in metrics
        assert_eq!(resp.stats.atoms.len(), 3);
        let snap = server.metrics().class(QueryClass::Conjunctive);
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.atoms_evaluated, 3);
        assert!(snap.atom_edges_scanned > 0);

        // head restriction through the request spec
        let resp = session
            .submit_text(
                "ans(x, w) :- x -[a]-> y, y -[b*]-> z, z -[c]-> w",
                SourceSpec::Conjunctive {
                    sources: Some(vec![names["s2"]]),
                    targets: None,
                },
            )
            .unwrap()
            .join();
        assert_eq!(resp.bindings().unwrap(), &[(names["s2"], names["end"])][..]);
        // second submission of the same signature hits the join-plan memo
        assert_eq!(resp.stats.plan_cache_hits + resp.stats.plan_cache_misses, 1);

        // conjunctive parse errors surface as SubmitError::Parse with spans
        let err = session.submit_text(
            "ans(x, w) :- x -[a]-> y, y -[b**)]-> w",
            SourceSpec::Conjunctive {
                sources: None,
                targets: None,
            },
        );
        assert!(matches!(err, Err(SubmitError::Parse(_))), "{err:?}");
    }

    #[test]
    fn calibration_nudges_the_live_pull_discount_boundedly() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab);
        let session = server.session();
        let q = server.parse("(a+b)*").unwrap();
        // A broad recursive query on a tiny graph runs push-only, so the
        // suggestion moves away from the static default.
        for _ in 0..4 {
            session.run(&q, &EvalRequest::source(nodes[0]));
        }
        let before = server.engine().pull_discount();
        let target = server.metrics().suggest_pull_discount();
        server.calibrate();
        let after = server.engine().pull_discount();
        if target == before {
            assert_eq!(after, before);
        } else {
            // bounded step: moved toward the suggestion, but by at most a
            // quarter of the gap (or the minimum one unit)
            let gap = target.abs_diff(before);
            let step = after.abs_diff(before);
            assert!(
                step >= 1 && step <= (gap / 4).max(1),
                "{before}->{after} vs {target}"
            );
            assert!(
                (target > before && after > before) || (target < before && after < before),
                "moved the wrong way: {before}->{after} vs {target}"
            );
        }
        // convergence: repeated steps reach the suggestion exactly
        for _ in 0..64 {
            server.calibrate();
        }
        assert_eq!(server.engine().pull_discount(), target);
        // the suggestion itself stays in the documented clamp
        assert!(target >= 1);
    }

    #[test]
    fn metrics_expose_parallel_and_scratch_telemetry() {
        let (ab, catalog, nodes) = workload();
        let server = Server::new(catalog, ab).with_config(ServerConfig {
            parallelism: 4,
            ..ServerConfig::default()
        });
        assert_eq!(server.engine().worker_pool().parallelism(), 4);
        let session = server.session();
        let q = server.parse("a.a*").unwrap();
        let resp = session.run(&q, &EvalRequest::source(nodes[0]));
        assert!(resp.termination.is_complete());
        let snap = server.metrics().class(QueryClass::Single);
        assert_eq!(snap.queries, 1);
        // this graph is far below PAR_LEVEL_THRESHOLD: the DoP decision
        // must keep it sequential (no extra threads, no parallel levels)
        assert!(snap.threads_peak <= 1, "{}", snap.threads_peak);
        assert_eq!(snap.parallel_levels, 0);
        assert_eq!(snap.steal_count, 0);
        // the record path refreshed the scratch-pool counters
        assert_eq!(server.metrics().recorded(), 1);
        assert!(server.metrics().scratch_allocs() + server.metrics().scratch_reuses() >= 1);
    }

    #[test]
    fn reader_pinned_before_compaction_is_never_disturbed() {
        let (ab, catalog, nodes) = workload();
        let a = ab.get("a").unwrap();
        let catalog = Arc::new(
            Arc::try_unwrap(catalog)
                .unwrap_or_else(|_| unreachable!("sole owner"))
                .with_policy(CompactionPolicy {
                    min_log_len: 2,
                    max_log_ratio: 0.05,
                    ..CompactionPolicy::default()
                }),
        );
        let server = Server::new(catalog, ab);
        let session = server.session();
        let q = server.parse("a*").unwrap();
        let baseline = session.run(&q, &EvalRequest::source(nodes[0]));

        let mut compactions = 0;
        for i in 0..16 {
            let mut d = EdgeDelta::new();
            d.add(nodes[i % 8], a, nodes[(i + 3) % 8]);
            if server.catalog().commit(&d).compacted {
                compactions += 1;
            }
        }
        assert!(compactions >= 1, "the aggressive policy must fire");
        // the pinned session still answers from its epoch, bit-for-bit
        let again = session.run(&q, &EvalRequest::source(nodes[0]));
        assert_eq!(again.nodes().unwrap(), baseline.nodes().unwrap());
    }
}
