//! Sessions, query handles, and admission control — the client-facing
//! surface of the serving layer.
//!
//! A [`Session`] pins one [`Catalog`] epoch; every query it submits
//! evaluates against that pinned snapshot on a worker thread, through the
//! shared [`PlannedEngine`] (one plan memo, one `ScratchPool`, reused
//! across all workers). [`Session::refresh`] re-pins to the latest
//! published epoch; the old snapshot lives on until its last handle
//! finishes.
//!
//! A query enters as **text** ([`Session::submit_text`]) or as a prebuilt
//! [`Query`] + [`EvalRequest`] ([`Session::submit`]); either way it flows
//! parse → constraints → analyze → plan → eval, and the *only* evaluation
//! entry point is the unified request form
//! ([`PlannedEngine::run_view`]).
//!
//! Admission control counts **outstanding handles** (submitted, not yet
//! joined or dropped) against [`ServerConfig::max_concurrent`]; a
//! submission over the cap is rejected synchronously with
//! [`SubmitError::Rejected`], carrying the observed occupancy. Every
//! submission gets a cancellation flag ([`QueryHandle::cancel`]) and —
//! unless the request carries its own — the server's default fetch
//! budget, so a runaway query terminates with
//! [`rpq_core::Termination::BudgetExhausted`] instead of monopolizing a
//! worker.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use rpq_automata::{Alphabet, ParseError};
use rpq_constraints::ConstraintSet;
use rpq_core::{EvalRequest, EvalResponse, ProductEngine, Query, SourceSpec};
use rpq_graph::{DeltaGraph, Epoch};
use rpq_optimizer::{parse_crpq, Crpq, PlannedEngine, PlannerConfig};

use crate::catalog::Catalog;
use crate::metrics::{Metrics, QueryClass};

/// Serving knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Admission cap: maximum outstanding [`QueryHandle`]s. Submissions
    /// over the cap are rejected with [`SubmitError::Rejected`].
    pub max_concurrent: usize,
    /// Fetch budget stamped onto requests that do not carry their own
    /// (`None` = unlimited by default).
    pub default_budget: Option<usize>,
    /// Intra-query parallelism ceiling: the engine's shared
    /// [`rpq_core::WorkerPool`] holds `parallelism - 1` extra-worker
    /// permits, leased per query by estimated frontier size. `1` keeps
    /// every query on the fully sequential hot path. Defaults to the
    /// machine's available parallelism.
    pub parallelism: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent: 64,
            default_budget: None,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Why a submission did not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the server is at its concurrency cap.
    Rejected {
        /// Outstanding handles observed at rejection time.
        active: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The query text did not parse.
    Parse(ParseError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Rejected { active, cap } => {
                write!(f, "admission rejected: {active} of {cap} slots in use")
            }
            SubmitError::Parse(e) => write!(f, "query did not parse: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ParseError> for SubmitError {
    fn from(e: ParseError) -> SubmitError {
        SubmitError::Parse(e)
    }
}

/// Releases one admission slot when dropped (handle joined, dropped, or
/// the submission path unwound).
struct AdmissionSlot(Arc<AtomicUsize>);

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The serving front end: a shared planner over a [`Catalog`], sessions,
/// admission control, and [`Metrics`].
pub struct Server {
    catalog: Arc<Catalog>,
    engine: Arc<PlannedEngine<ProductEngine>>,
    set: ConstraintSet,
    alphabet: Mutex<Alphabet>,
    metrics: Arc<Metrics>,
    active: Arc<AtomicUsize>,
    config: ServerConfig,
}

/// How often the background calibration pass considers a pull-discount
/// step, in recorded queries.
const CALIBRATE_EVERY: usize = 256;

/// Piggy-backed calibration: refresh the scratch-pool telemetry, and every
/// [`CALIBRATE_EVERY`] recorded queries move the engine's **live** pull
/// discount a bounded step toward [`Metrics::suggest_pull_discount`].
///
/// Runs on whichever worker thread just recorded a query — there is no
/// sleeper thread. The step is at most a quarter of the gap (and at least
/// one unit), so a burst of unrepresentative queries cannot yank the knob;
/// in-flight queries are untouched because the engine reads the discount
/// once per request.
fn maybe_calibrate(engine: &PlannedEngine<ProductEngine>, metrics: &Metrics) {
    let pool = engine.scratch_pool();
    metrics.observe_scratch(pool.allocs(), pool.reuses());
    if !metrics.recorded().is_multiple_of(CALIBRATE_EVERY) {
        return;
    }
    calibrate_step(engine, metrics);
}

/// One bounded pull-discount step (the [`maybe_calibrate`] payload,
/// callable unconditionally from [`Server::calibrate`]).
fn calibrate_step(engine: &PlannedEngine<ProductEngine>, metrics: &Metrics) {
    let current = engine.pull_discount() as isize;
    let target = metrics.suggest_pull_discount() as isize;
    let gap = target - current;
    if gap == 0 {
        return;
    }
    let step = if gap / 4 == 0 { gap.signum() } else { gap / 4 };
    engine.set_pull_discount((current + step).max(1) as usize);
}

impl Server {
    /// A server over `catalog` with no path constraints.
    pub fn new(catalog: Arc<Catalog>, alphabet: Alphabet) -> Server {
        Server::with_constraints(catalog, ConstraintSet::default(), alphabet)
    }

    /// A server whose planner rewrites under `set` (the constraints known
    /// to hold on the served data).
    pub fn with_constraints(
        catalog: Arc<Catalog>,
        set: ConstraintSet,
        alphabet: Alphabet,
    ) -> Server {
        let config = ServerConfig::default();
        let engine = PlannedEngine::new(ProductEngine, set.clone(), alphabet.clone()).with_config(
            PlannerConfig {
                parallelism: config.parallelism.max(1),
                ..PlannerConfig::default()
            },
        );
        Server {
            catalog,
            engine: Arc::new(engine),
            set,
            alphabet: Mutex::new(alphabet),
            metrics: Arc::new(Metrics::new()),
            active: Arc::new(AtomicUsize::new(0)),
            config,
        }
    }

    /// Replace the serving knobs. Rebuilds the shared planner so its
    /// worker pool and scratch pool match `config.parallelism` (call this
    /// before serving traffic — the old engine's plan memo is discarded).
    pub fn with_config(mut self, config: ServerConfig) -> Server {
        if config.parallelism != self.config.parallelism {
            let alphabet = self.alphabet.lock().clone();
            self.engine = Arc::new(
                PlannedEngine::new(ProductEngine, self.set.clone(), alphabet).with_config(
                    PlannerConfig {
                        parallelism: config.parallelism.max(1),
                        ..PlannerConfig::default()
                    },
                ),
            );
        }
        self.config = config;
        self
    }

    /// Force one bounded calibration step (the same move the background
    /// pass makes every `CALIBRATE_EVERY` (256) recorded queries): nudge the
    /// engine's live pull discount a quarter of the way toward
    /// [`Metrics::suggest_pull_discount`]. Never touches in-flight
    /// queries.
    pub fn calibrate(&self) {
        calibrate_step(&self.engine, &self.metrics);
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The snapshot store this server serves from.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared planner (plan memo + scratch pool, shared by every
    /// worker thread).
    pub fn engine(&self) -> &Arc<PlannedEngine<ProductEngine>> {
        &self.engine
    }

    /// The shared serving metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Outstanding handles right now.
    pub fn active_queries(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Parse query text against the server's shared alphabet (labels are
    /// interned on first sight). This is the text front end: the returned
    /// [`Query`] flows through constraints → analyze → plan → eval when
    /// submitted.
    pub fn parse(&self, text: &str) -> Result<Query, ParseError> {
        let mut ab = self.alphabet.lock();
        Query::parse(&mut ab, text)
    }

    /// Parse conjunctive query text (`ans(x,z) :- x -[r*]-> y, …`) against
    /// the server's shared alphabet. Errors carry byte spans into `text`
    /// (atom bodies included). [`Session::submit_text`] routes here
    /// automatically when the text contains `:-`.
    pub fn parse_crpq(&self, text: &str) -> Result<Crpq, ParseError> {
        let mut ab = self.alphabet.lock();
        parse_crpq(&mut ab, text)
    }

    /// Open a session pinned to the latest published epoch.
    pub fn session(&self) -> Session<'_> {
        Session {
            server: self,
            snapshot: self.catalog.pin(),
        }
    }

    /// Open a session pinned to a specific retained epoch (time travel
    /// within the catalog's ring).
    pub fn session_at(&self, epoch: Epoch) -> Option<Session<'_>> {
        Some(Session {
            server: self,
            snapshot: self.catalog.pin_at(epoch)?,
        })
    }
}

/// One client's view of the data: a pinned snapshot plus the submission
/// API. Cheap to open; open as many as you like.
pub struct Session<'s> {
    server: &'s Server,
    snapshot: Arc<DeltaGraph>,
}

impl Session<'_> {
    /// The epoch this session is pinned to.
    pub fn epoch(&self) -> Epoch {
        self.snapshot.epoch()
    }

    /// The pinned snapshot itself.
    pub fn snapshot(&self) -> &Arc<DeltaGraph> {
        &self.snapshot
    }

    /// Re-pin to the latest published epoch. In-flight handles submitted
    /// before the refresh keep their old snapshot.
    pub fn refresh(&mut self) {
        self.snapshot = self.server.catalog.pin();
    }

    /// Take an admission slot, or reject synchronously at the cap.
    fn admit(&self) -> Result<AdmissionSlot, SubmitError> {
        let cap = self.server.config.max_concurrent;
        let active = &self.server.active;
        if active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_err()
        {
            self.server.metrics.record_rejected();
            return Err(SubmitError::Rejected {
                active: active.load(Ordering::SeqCst),
                cap,
            });
        }
        Ok(AdmissionSlot(active.clone()))
    }

    /// Stamp the server's default budget onto a request that carries none,
    /// and ensure it has a cancellation flag; returns the flag for the
    /// handle.
    fn controls(&self, mut req: EvalRequest) -> (EvalRequest, Arc<AtomicBool>) {
        if req.budget.is_none() {
            if let Some(b) = self.server.config.default_budget {
                req = req.with_budget(b);
            }
        }
        let cancel = match &req.cancel {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(AtomicBool::new(false));
                req = req.with_cancel(c.clone());
                c
            }
        };
        (req, cancel)
    }

    /// Submit a parsed query. Returns a [`QueryHandle`] whose worker is
    /// already running, or rejects synchronously (admission).
    pub fn submit(&self, query: &Query, req: EvalRequest) -> Result<QueryHandle, SubmitError> {
        let slot = self.admit()?;
        let (req, cancel) = self.controls(req);
        let class = QueryClass::of(&req.spec);
        let snapshot = self.snapshot.clone();
        let epoch = snapshot.epoch();
        let engine = self.server.engine.clone();
        let metrics = self.server.metrics.clone();
        let query = query.clone();
        let join = std::thread::spawn(move || {
            let start = Instant::now();
            let resp = engine.run_view(&query, &*snapshot, &req);
            metrics.record(class, start.elapsed(), &resp.stats, resp.termination);
            maybe_calibrate(&engine, &metrics);
            resp
        });
        Ok(QueryHandle {
            join,
            cancel,
            class,
            epoch,
            _slot: slot,
        })
    }

    /// Submit a conjunctive query: same admission, budget, cancellation,
    /// and metrics seams as [`Session::submit`], but the worker runs the
    /// cost-based join planner and semijoin executor
    /// ([`PlannedEngine::run_crpq`]). The request's [`SourceSpec`]
    /// restricts the *head* variables (source forms the first, target
    /// forms the second, pair/matrix both); accounted under
    /// [`QueryClass::Conjunctive`] with per-atom telemetry in the metrics.
    pub fn submit_crpq(&self, crpq: &Crpq, req: EvalRequest) -> Result<QueryHandle, SubmitError> {
        let slot = self.admit()?;
        let (req, cancel) = self.controls(req);
        let snapshot = self.snapshot.clone();
        let epoch = snapshot.epoch();
        let engine = self.server.engine.clone();
        let metrics = self.server.metrics.clone();
        let crpq = crpq.clone();
        let class = QueryClass::Conjunctive;
        let join = std::thread::spawn(move || {
            let start = Instant::now();
            let resp = engine.run_crpq(&crpq, &*snapshot, &req);
            metrics.record(class, start.elapsed(), &resp.stats, resp.termination);
            maybe_calibrate(&engine, &metrics);
            resp
        });
        Ok(QueryHandle {
            join,
            cancel,
            class,
            epoch,
            _slot: slot,
        })
    }

    /// Submit query text: parse against the shared alphabet, then submit
    /// with the given request shape. Text containing `:-` is parsed as a
    /// conjunctive query (`ans(x,z) :- x -[r*]-> y, …`) and routed through
    /// [`Session::submit_crpq`]; anything else is a plain path query.
    pub fn submit_text(&self, text: &str, spec: SourceSpec) -> Result<QueryHandle, SubmitError> {
        if text.contains(":-") {
            let crpq = self.server.parse_crpq(text)?;
            return self.submit_crpq(&crpq, EvalRequest::new(spec));
        }
        let query = self.server.parse(text)?;
        self.submit(&query, EvalRequest::new(spec))
    }

    /// Evaluate a conjunctive query synchronously on the caller's thread
    /// (no admission slot or worker; still recorded in the metrics under
    /// [`QueryClass::Conjunctive`]).
    pub fn run_crpq(&self, crpq: &Crpq, req: &EvalRequest) -> EvalResponse {
        let start = Instant::now();
        let resp = self.server.engine.run_crpq(crpq, &*self.snapshot, req);
        self.server.metrics.record(
            QueryClass::Conjunctive,
            start.elapsed(),
            &resp.stats,
            resp.termination,
        );
        maybe_calibrate(&self.server.engine, &self.server.metrics);
        resp
    }

    /// Evaluate synchronously on the caller's thread against the pinned
    /// snapshot (no admission slot, no worker thread; still recorded in
    /// the metrics). The low-latency path for point queries.
    pub fn run(&self, query: &Query, req: &EvalRequest) -> EvalResponse {
        let class = QueryClass::of(&req.spec);
        let start = Instant::now();
        let resp = self.server.engine.run_view(query, &*self.snapshot, req);
        self.server
            .metrics
            .record(class, start.elapsed(), &resp.stats, resp.termination);
        maybe_calibrate(&self.server.engine, &self.server.metrics);
        resp
    }
}

/// A running (or finished) submitted query. Holds its admission slot until
/// joined or dropped; dropping without joining detaches the worker (it
/// still finishes and records metrics).
pub struct QueryHandle {
    join: JoinHandle<EvalResponse>,
    cancel: Arc<AtomicBool>,
    class: QueryClass,
    epoch: Epoch,
    _slot: AdmissionSlot,
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryHandle")
            .field("class", &self.class)
            .field("epoch", &self.epoch)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl QueryHandle {
    /// Raise the cooperative cancellation flag. The worker stops at its
    /// next BFS level boundary and returns the sound subset collected so
    /// far with [`rpq_core::Termination::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Has the worker finished (successfully or not)?
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// The metrics class this query is accounted under.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The epoch the query is evaluating against.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Block until the worker finishes and take its response.
    pub fn join(self) -> EvalResponse {
        self.join.join().expect("query worker panicked")
    }
}
