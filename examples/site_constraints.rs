//! The introduction's motivating constraints, end to end: structural
//! knowledge about a university web site expressed as path constraints,
//! checked against the data, and used to answer implication questions.
//!
//! ```sh
//! cargo run --example site_constraints
//! ```

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::constraints::{parse_constraint, word_implies_constraint, ConstraintSet};
use rpq::core::eval_product;
use rpq::graph::InstanceBuilder;

fn main() {
    let mut ab = Alphabet::new();

    // --- a little Stanford-like site ---------------------------------------
    let mut b = InstanceBuilder::new(&mut ab);
    b.edge("Stanford", "CS-Department", "cs");
    b.edge("cs", "DB-group", "db");
    b.edge("db", "Ullman", "ullman");
    b.edge("ullman", "Classes", "ullman-classes");
    b.edge("ullman-classes", "cs345", "cs345-page");
    b.edge("cs", "Courses", "courses");
    b.edge("courses", "cs345", "cs345-page"); // same page — the constraint
    b.edge("cs345-page", "Syllabus", "syllabus");
    let (inst, names) = b.finish();
    let stanford = names["Stanford"];

    // --- the paper's example constraint ------------------------------------
    // CS-Department DB-group Ullman Classes cs345 = CS-Department Courses cs345
    let c1 = parse_constraint(
        &mut ab,
        "CS-Department.DB-group.Ullman.Classes.cs345 = CS-Department.Courses.cs345",
    )
    .unwrap();
    println!("constraint: {}", c1.display(&ab));
    println!("holds at Stanford: {}\n", c1.holds_at(&inst, stanford));
    assert!(c1.holds_at(&inst, stanford));

    // --- right congruence: implication of extended paths -------------------
    let e = ConstraintSet::from_constraints([c1]);
    let follow_up = parse_constraint(
        &mut ab,
        "CS-Department.DB-group.Ullman.Classes.cs345.Syllabus = CS-Department.Courses.cs345.Syllabus",
    )
    .unwrap();
    println!("does E imply {} ?", follow_up.display(&ab));
    let verdict = word_implies_constraint(&e, &follow_up);
    println!("Theorem 4.3(i) PTIME answer: {verdict:?}\n");
    assert!(verdict.is_implied());

    // the long and the short navigation really retrieve the same page
    let long = parse_regex(
        &mut ab,
        "CS-Department.DB-group.Ullman.Classes.cs345.Syllabus",
    )
    .unwrap();
    let short = parse_regex(&mut ab, "CS-Department.Courses.cs345.Syllabus").unwrap();
    let a1 = eval_product(&Nfa::thompson(&long), &inst, stanford).answers;
    let a2 = eval_product(&Nfa::thompson(&short), &inst, stanford).answers;
    assert_eq!(a1, a2);
    println!(
        "both navigations reach: {:?}",
        a1.iter().map(|&o| inst.node_name(o)).collect::<Vec<_>>()
    );

    // --- but not everything is implied --------------------------------------
    let bogus = parse_constraint(
        &mut ab,
        "CS-Department.Courses.cs345 = CS-Department.DB-group",
    )
    .unwrap();
    let v = word_implies_constraint(&e, &bogus);
    println!("\nnon-implication detected with witness: {v:?}");
    assert!(!v.is_implied());
}
