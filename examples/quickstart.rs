//! Quickstart: build a small semistructured database, run path queries with
//! every engine, and use a path constraint to simplify a recursive query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rpq::automata::{parse_regex, Alphabet};
use rpq::constraints::general::Budget;
use rpq::constraints::ConstraintSet;
use rpq::core::{DerivativeEngine, Engine, ProductEngine, Query, QuotientDfaEngine};
use rpq::datalog::translate::{run as run_datalog, translate_quotient};
use rpq::graph::{CsrGraph, InstanceBuilder};
use rpq::optimizer::optimize;

fn main() {
    // --- a tiny "department web site" -------------------------------------
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    b.edge("dept", "group", "db-group");
    b.edge("dept", "group", "systems-group");
    b.edge("db-group", "member", "alice");
    b.edge("systems-group", "member", "bob");
    b.edge("alice", "paper", "paper1");
    b.edge("bob", "paper", "paper2");
    b.edge("paper1", "cites", "paper2");
    b.edge("paper2", "cites", "paper1");
    let (inst, names) = b.finish();
    let dept = names["dept"];

    // Instance is the build form; freeze it into the label-indexed
    // query-time snapshot (forward + reverse CSR, per-label statistics).
    let graph = CsrGraph::from(&inst);
    println!(
        "snapshot: {} nodes, {} edges, {} labels",
        graph.num_nodes(),
        graph.num_edges(),
        graph.stats().num_labels()
    );

    // --- a path query: papers transitively cited from department members --
    let q = Query::parse(&mut ab, "group.member.paper.cites*").unwrap();
    println!("query: {}", q.regex().display(&ab));

    let product = ProductEngine.eval(&q, &graph, dept);
    println!(
        "product-automaton engine: {:?}  (pairs visited: {}, edges scanned: {})",
        product
            .answers
            .iter()
            .map(|&o| inst.node_name(o))
            .collect::<Vec<_>>(),
        product.stats.pairs_visited,
        product.stats.edges_scanned
    );

    // every engine agrees (Section 2.2's algorithms), through one trait
    let quotient = QuotientDfaEngine.eval(&q, &graph, dept);
    let derivative = DerivativeEngine.eval(&q, &graph, dept);
    assert_eq!(product.answers, quotient.answers);
    assert_eq!(product.answers, derivative.answers);

    // …including the Datalog translation (Section 2.3)
    let tq = translate_quotient(q.regex(), &ab).unwrap();
    assert!(tq.program.is_linear() && tq.program.is_monadic());
    let (datalog_answers, stats) = run_datalog(&tq, &inst, dept);
    assert_eq!(product.answers, datalog_answers);
    println!(
        "datalog (linear, monadic, {} IDB predicates): fixpoint in {} rounds",
        tq.idb_count, stats.rounds
    );

    // --- constraint-based optimization (Sections 3.2 / 4) -----------------
    // Suppose the site guarantees that following `cites` twice never leaves
    // the set reached by following it once: cites.cites = cites.
    let e = ConstraintSet::parse(&mut ab, ["cites.cites = cites"]).unwrap();
    let recursive = parse_regex(&mut ab, "cites*").unwrap();
    let opt = optimize(&e, &recursive, &ab, &Budget::default());
    println!(
        "under {{cites.cites = cites}}:  {}  ≡  {}   (recursion removed: {})",
        recursive.display(&ab),
        opt.query.display(&ab),
        opt.improved()
    );
    assert!(opt.improved());
    assert!(!opt.after.recursive);
}
