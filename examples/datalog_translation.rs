//! Section 2.3: path queries as linear monadic Datalog — print both
//! generated programs, run naive vs semi-naive, compare against the direct
//! product-automaton engine.
//!
//! ```sh
//! cargo run --example datalog_translation
//! ```

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::core::eval_product;
use rpq::datalog::engine::{eval_naive, eval_seminaive};
use rpq::datalog::translate::{load_instance, translate_quotient, translate_states};
use rpq::graph::generators::fig2_graph;
use rpq::graph::Oid;

fn main() {
    let mut ab = Alphabet::new();
    let (inst, _, o1) = fig2_graph(&mut ab);
    let q = parse_regex(&mut ab, "a.b*").unwrap();
    println!(
        "query p = {}   (Figure 2 graph, source o1)\n",
        q.display(&ab)
    );

    // --- quotient program D_p ----------------------------------------------
    let tq = translate_quotient(&q, &ab).unwrap();
    println!(
        "== quotient program D_p ({} IDB predicates) ==",
        tq.idb_count
    );
    print!("{}", tq.program.render());
    println!(
        "linear: {}   monadic: {}\n",
        tq.program.is_linear(),
        tq.program.is_monadic()
    );

    // --- state program ------------------------------------------------------
    let nfa = Nfa::thompson(&q);
    let ts = translate_states(&nfa);
    println!(
        "== automaton-state program ({} state predicates) ==",
        ts.idb_count
    );
    print!("{}", ts.program.render());
    println!(
        "linear: {}   monadic: {}\n",
        ts.program.is_linear(),
        ts.program.is_monadic()
    );

    // --- evaluation ----------------------------------------------------------
    let expected = eval_product(&nfa, &inst, o1).answers;
    let mut db_naive = load_instance(&tq, &inst, o1);
    let naive = eval_naive(&tq.program, &mut db_naive);
    let mut db_semi = load_instance(&tq, &inst, o1);
    let semi = eval_seminaive(&tq.program, &mut db_semi);
    let answers: Vec<Oid> = {
        let mut v: Vec<Oid> = db_semi
            .relation(tq.answer_pred)
            .iter()
            .map(|t| Oid(t[0] as u32))
            .collect();
        v.sort();
        v
    };
    assert_eq!(answers, expected);
    println!(
        "answers: {:?} (= product engine)",
        answers
            .iter()
            .map(|&o| inst.node_name(o))
            .collect::<Vec<_>>()
    );
    println!(
        "naive:     {} rounds, {} derivations",
        naive.rounds, naive.derivations
    );
    println!(
        "semi-naive: {} rounds, {} derivations  (the classical saving)",
        semi.rounds, semi.derivations
    );
}
