//! The paper's stated analogy (Section 1): the distributed evaluation
//! technique *is* a magic-set / query–subquery evaluation of the Datalog
//! program. This example runs all three on the same input and compares
//! their work: QSQ subgoals ≈ distributed subquery tasks ≈ product pairs.
//!
//! ```sh
//! cargo run --example qsq_vs_distributed
//! ```

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::core::eval_product;
use rpq::datalog::qsq::eval_qsq;
use rpq::datalog::translate::{load_instance, translate_quotient};
use rpq::distributed::{Delivery, Simulator};
use rpq::graph::InstanceBuilder;

fn main() {
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    // a site with a connected core and a large disconnected tail
    b.edge("o1", "a", "o2");
    b.edge("o2", "b", "o3");
    b.edge("o3", "b", "o2");
    b.edge("o3", "a", "o4");
    for i in 0..40 {
        b.edge(&format!("z{i}"), "a", &format!("z{}", i + 1));
        b.edge(&format!("z{i}"), "b", &format!("z{}", i + 2));
    }
    let (inst, names) = b.finish();
    let o1 = names["o1"];
    let q = parse_regex(&mut ab, "a.b.(b.b)*.a").unwrap();
    println!(
        "query {} from o1 ({} nodes, {} edges; 40+ unreachable)",
        q.display(&ab),
        inst.num_nodes(),
        inst.num_edges()
    );

    // 1. centralized product automaton
    let nfa = Nfa::thompson(&q);
    let product = eval_product(&nfa, &inst, o1);
    println!(
        "\nproduct engine: {} answers, {} (state,node) pairs visited",
        product.answers.len(),
        product.stats.pairs_visited
    );

    // 2. QSQ over the Datalog translation (goal-directed: the magic-set effect)
    let tq = translate_quotient(&q, &ab).unwrap();
    let db = load_instance(&tq, &inst, o1);
    let (qsq_answers, qsq_stats) = eval_qsq(&tq.program, &db, tq.answer_pred).unwrap();
    println!(
        "QSQ:            {} answers, {} subgoals, {} rule firings",
        qsq_answers.len(),
        qsq_stats.subgoals,
        qsq_stats.firings
    );

    // 3. bottom-up semi-naive. Note: the Section 2.3 translation is already
    // source-seeded — the magic-set restriction is built into the program —
    // so bottom-up is goal-directed here too; QSQ makes the subgoal table
    // (the paper's per-site subquery list) explicit.
    let mut db2 = load_instance(&tq, &inst, o1);
    let bu = rpq::datalog::engine::eval_seminaive(&tq.program, &mut db2);
    println!(
        "semi-naive:     {} IDB tuples derived, {} derivations (source-seeded program)",
        bu.idb_tuples, bu.derivations
    );

    // 4. the distributed protocol: subquery tasks = QSQ subgoals
    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
    let res = sim.run(o1, &q);
    println!(
        "distributed:    {} answers, {} subquery tasks registered, {} messages",
        res.answers.len(),
        res.tasks_registered,
        res.stats.total()
    );

    // all four agree on the answers
    let product_ids: Vec<u64> = product.answers.iter().map(|o| o.index() as u64).collect();
    assert_eq!(qsq_answers, product_ids);
    assert_eq!(res.answers, product.answers);
    println!("\nall engines agree; the goal-directed engines never touch the disconnected tail ✓");
    assert!(qsq_stats.subgoals <= product.stats.pairs_visited + product.answers.len() + 1);
}
