//! Theorem 4.10: deciding whether a recursive path query collapses to a
//! nonrecursive one under word equalities, and constructing the certified
//! equivalent.
//!
//! ```sh
//! cargo run --example boundedness
//! ```

use rpq::automata::{parse_regex, Alphabet};
use rpq::constraints::{
    bounded_under_path_constraints, decide_boundedness, suggested_radius, Boundedness,
    ConstraintSet, GeneralBoundedness,
};

fn main() {
    let cases: &[(&[&str], &str)] = &[
        (&["a.a = a"], "a*"),
        (&["a.a.a = ()"], "a*"),
        (&["a.a = a"], "(a+b)*"),
        (&["a.b = b.a"], "(a.b)* + (b.a)*"),
        (&["home = ()"], "(sec.home)*.sec"),
        (&[], "a*"),
    ];

    for (lines, query) in cases {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let p = parse_regex(&mut ab, query).unwrap();
        println!("E = {lines:?}");
        println!("p = {}", p.display(&ab));
        println!("  Lemma 4.9 radius K = {}", suggested_radius(&set));
        match decide_boundedness(&set, &p, &ab) {
            Ok(Boundedness::Bounded { equivalent, words }) => {
                println!(
                    "  BOUNDED:  E ⊨ p = {}   ({} words, certified both ways by Theorem 4.3)",
                    equivalent.display(&ab),
                    words.len()
                );
            }
            Ok(Boundedness::Unbounded { pump }) => {
                println!(
                    "  UNBOUNDED: tail {:?} can be pumped outside the K-sphere",
                    ab.render_word(&pump)
                );
            }
            Err(e) => println!("  error: {e}"),
        }
        println!();
    }
    // --- beyond Theorem 4.10: the open problem -----------------------------
    // "It remains open whether boundedness of a path query assuming a set
    // of full path constraints is decidable." The budgeted semi-decision:
    println!("— boundedness under FULL path constraints (open problem; semi-decision) —");
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a* <= a + ()"]).unwrap();
    let p = parse_regex(&mut ab, "a*").unwrap();
    match bounded_under_path_constraints(
        &set,
        &p,
        &ab,
        &rpq::constraints::general::Budget::default(),
        4,
        24,
    ) {
        GeneralBoundedness::Bounded { equivalent, proof } => println!(
            "E = {{a* ⊆ a + ε}}, p = a*:  BOUNDED, p ≡ {}  (certified by {proof})",
            equivalent.display(&ab)
        ),
        other => println!("unexpected: {other:?}"),
    }
}
