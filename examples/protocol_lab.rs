//! The protocol laboratory: the Section 3.1 agent protocol against the
//! decomposition baseline of the related work ([30]) and the Section 5
//! knowledge-carrying variant — plus fault injection showing where the
//! paper's reliability assumption is load-bearing.
//!
//! ```sh
//! cargo run --example protocol_lab
//! ```

use rpq::automata::{parse_regex, Alphabet};
use rpq::distributed::{
    run_and_check, run_carrying, run_decomposition_checked, run_with_faults, Delivery, FaultPlan,
    MessageKind, Partition,
};
use rpq::graph::InstanceBuilder;

fn main() {
    // A cyclic site graph: a ring with chords, queried with a*.
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    let n = 12usize;
    for i in 0..n {
        b.edge(&format!("v{i}"), "a", &format!("v{}", (i + 1) % n));
        if i % 3 == 0 {
            b.edge(&format!("v{i}"), "a", &format!("v{}", (i + 5) % n));
        }
    }
    let (inst, names) = b.finish();
    let src = names["v0"];
    let q = parse_regex(&mut ab, "a*").unwrap();

    println!("=== protocol comparison on a {n}-node ring with chords, query a* ===\n");

    let agent = run_and_check(&inst, &ab, src, &q, Delivery::Fifo);
    println!(
        "agents (Section 3.1):    {:>4} messages  {:>6} bytes   ({} answers)",
        agent.stats.total(),
        agent.stats.bytes,
        agent.answers.len()
    );

    let carrying = run_carrying(&inst, &ab, src, &q);
    println!(
        "carrying (Section 5):    {:>4} messages  {:>6} bytes   ({} spawns skipped, max {} carried)",
        carrying.stats.total(),
        carrying.stats.bytes,
        carrying.skipped_spawns,
        carrying.max_carried
    );
    assert_eq!(agent.answers, carrying.answers);

    for block in [1usize, 4] {
        let part = Partition::blocks(&inst, block);
        let dec = run_decomposition_checked(&inst, &ab, &part, src, &q);
        println!(
            "decomposition (blocks={block}): {:>2} messages  {:>6} bytes   ({} table entries, {} used)",
            dec.messages, dec.bytes, dec.table_entries, dec.table_entries_used
        );
        assert_eq!(dec.answers, agent.answers);
    }

    // --- fault injection ---------------------------------------------------
    println!("\n=== fault injection (the paper assumes reliable delivery) ===\n");

    let healthy = run_with_faults(&inst, &ab, src, &q, &FaultPlan::default());
    println!(
        "no faults:            terminated={} answers_complete={}",
        healthy.terminated, healthy.answers_complete
    );

    let drops = run_with_faults(
        &inst,
        &ab,
        src,
        &q,
        &FaultPlan {
            drop_percent: 25,
            only_kind: Some(MessageKind::Done),
            seed: 7,
            ..FaultPlan::default()
        },
    );
    println!(
        "25% done-drops:       terminated={} (dropped {}) — termination detection needs every done",
        drops.terminated, drops.dropped
    );

    let mut premature_seeds = Vec::new();
    for seed in 0..40 {
        let dup = run_with_faults(
            &inst,
            &ab,
            src,
            &q,
            &FaultPlan {
                duplicate_percent: 60,
                only_kind: Some(MessageKind::Subquery),
                seed,
                ..FaultPlan::default()
            },
        );
        if dup.premature_termination {
            premature_seeds.push(seed);
        }
    }
    println!(
        "60% subquery-dups:    premature termination in {}/40 seeded runs {:?}…",
        premature_seeds.len(),
        &premature_seeds[..premature_seeds.len().min(5)]
    );
    println!(
        "\nThe duplicate-subquery hazard: the dedup rule answers the duplicate with\n\
         `done` carrying the ORIGINAL task's mid, releasing the parent while the\n\
         subtree still runs — exactly why Section 3.1's 'every message eventually\n\
         reaches its destination' (and is delivered once) is load-bearing."
    );
}
