//! Section 2.4: general path queries with character-level label patterns,
//! the `μ` label-class translation of Example 2.1 / Figure 1, and content
//! selection (the SGML example).
//!
//! ```sh
//! cargo run --example general_path_queries
//! ```

use rpq::automata::Alphabet;
use rpq::core::content::{find_by_content, set_content};
use rpq::core::general::{eval_general, eval_general_direct, translate, GeneralPathQuery};
use rpq::graph::InstanceBuilder;

fn main() {
    // --- the paper's two-level query ---------------------------------------
    let mut ab = Alphabet::new();
    let mut b = InstanceBuilder::new(&mut ab);
    b.edge("root", "doc", "d1");
    b.edge("d1", "section", "s1");
    b.edge("d1", "Sections", "s2");
    b.edge("s1", "text", "t1");
    b.edge("s2", "text", "t2");
    b.edge("d1", "Paragraph", "p1");
    b.edge("d1", "appendix", "x1");
    let (inst, names) = b.finish();
    let root = names["root"];

    let q = GeneralPathQuery::parse(r#""doc" ("[sS]ections?" "text" + "[pP]aragraph")"#)
        .expect("parses");
    println!(
        "general query with {} patterns: {:?}",
        q.patterns.len(),
        q.pattern_sources
    );

    let mu = translate(&q, &inst, &ab);
    println!("\nμ translation (Proposition 2.2):");
    for (c, sig) in mu.class_signature.iter().enumerate() {
        println!(
            "  class [{}] — representative {:?}, satisfies patterns {:?}",
            c, mu.class_repr[c], sig
        );
    }
    println!("  μ(q) = {}", mu.mu_query.display(&mu.class_alphabet));

    let translated = eval_general(&q, &inst, root, &ab);
    let direct = eval_general_direct(&q, &inst, root, &ab);
    assert_eq!(translated, direct, "q(o,I) = μ(q)(o, μ(I))");
    println!(
        "\nanswers (both via μ and directly): {:?}",
        translated
            .iter()
            .map(|&o| inst.node_name(o))
            .collect::<Vec<_>>()
    );

    // --- Example 2.1's six label classes -----------------------------------
    let mut ab2 = Alphabet::new();
    let mut b2 = InstanceBuilder::new(&mut ab2);
    for (i, l) in ["b", "aab", "baa", "c", "dd", "zzz"].iter().enumerate() {
        b2.edge("o", l, &format!("t{i}"));
    }
    let (inst2, _) = b2.finish();
    let q2 =
        GeneralPathQuery::parse(r#"("a*b" "ba*") + ("a*b" "c") + ("ba*" "c") + "dd*" ("dd*")*"#)
            .expect("parses");
    let mu2 = translate(&q2, &inst2, &ab2);
    println!(
        "\nExample 2.1: {} equivalence classes (paper: six: [b],[ab],[ba],[c],[d],[h])",
        mu2.class_signature.len()
    );
    for (c, repr) in mu2.class_repr.iter().enumerate() {
        println!("  [{}] ∋ {:?}", c, repr);
    }

    // --- content selection --------------------------------------------------
    let mut ab3 = Alphabet::new();
    let mut b3 = InstanceBuilder::new(&mut ab3);
    b3.edge("home", "link", "tutorial");
    b3.edge("home", "link", "news");
    b3.edge("tutorial", "link", "reference");
    let (mut inst3, names3) = b3.finish();
    let home = names3["home"];
    set_content(
        &mut inst3,
        &mut ab3,
        names3["tutorial"],
        "All about SGML markup",
    );
    set_content(&mut inst3, &mut ab3, names3["news"], "XML news of the week");
    set_content(
        &mut inst3,
        &mut ab3,
        names3["reference"],
        "SGML reference manual",
    );
    let hits = find_by_content(&inst3, home, &ab3, "SGML");
    println!(
        "\npages whose content mentions SGML: {:?}",
        hits.iter().map(|&o| inst3.node_name(o)).collect::<Vec<_>>()
    );
}
