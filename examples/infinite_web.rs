//! Remark 2.1: evaluation over a (conceptually) infinite Web. Bounded
//! queries terminate after exploring finitely many pages; unbounded ones
//! stream answers forever — made observable through an expansion budget
//! ("eventually computable" queries).
//!
//! ```sh
//! cargo run --example infinite_web
//! ```

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::core::{StreamStatus, StreamingEval};
use rpq::graph::{InfiniteComb, InfiniteTree};

fn main() {
    let mut ab = Alphabet::new();
    let link = ab.intern("link");
    let article = ab.intern("article");

    // --- an infinite binary "web" of link/article edges ---------------------
    let tree = InfiniteTree {
        labels: vec![link, article],
    };

    // bounded query: terminates although the web is infinite
    let q1 = parse_regex(&mut ab, "link.link.article").unwrap();
    let nfa1 = Nfa::thompson(&q1);
    let mut ev = StreamingEval::new(&nfa1, &tree, 0, 1_000_000);
    let answers = ev.collect_all();
    println!(
        "link.link.article on the infinite tree: {} answer(s), status {:?}, {} pages fetched",
        answers.len(),
        ev.status(),
        ev.nodes_expanded()
    );
    assert_eq!(ev.status(), StreamStatus::Terminated);

    // unbounded query: the budget is the only thing that stops it
    let q2 = parse_regex(&mut ab, "(link + article)*").unwrap();
    let nfa2 = Nfa::thompson(&q2);
    let mut ev2 = StreamingEval::new(&nfa2, &tree, 0, 500);
    let a2 = ev2.collect_all();
    println!(
        "(link+article)* with a 500-page budget: {} answers streamed, status {:?}",
        a2.len(),
        ev2.status()
    );
    assert_eq!(ev2.status(), StreamStatus::BudgetExhausted);

    // --- eventually computable: every answer arrives, well, eventually ------
    let next = ab.intern("next");
    let tooth = ab.intern("tooth");
    let comb = InfiniteComb { next, tooth };
    let q3 = parse_regex(&mut ab, "next*.tooth").unwrap();
    let nfa3 = Nfa::thompson(&q3);
    let mut ev3 = StreamingEval::new(&nfa3, &comb, 0, 10);
    println!("\nnext*.tooth on the infinite comb, growing the budget:");
    let mut total = 0;
    for round in 0..5 {
        let batch = ev3.collect_all();
        total += batch.len();
        println!(
            "  budget round {round}: +{} answers (total {total}), status {:?}",
            batch.len(),
            ev3.status()
        );
        ev3.add_budget(10);
    }
    assert!(total >= 10);
}
