//! Section 3.2 end-to-end: caching a recursive query as a single label and
//! letting the optimizer substitute it — the paper's Example 3 — with the
//! message savings measured on the distributed simulator.
//!
//! ```sh
//! cargo run --example cached_site
//! ```

use rpq::automata::{parse_regex, Alphabet, Nfa};
use rpq::constraints::general::Budget;
use rpq::constraints::ConstraintSet;
use rpq::distributed::{Delivery, Simulator};
use rpq::graph::Instance;
use rpq::optimizer::{optimize, RewriteCache};

fn main() {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let cache_label = ab.intern("l");

    // A deep site: an alternating a/b backbone v0 -a→ v1 -b→ v2 -a→ …,
    // with an `a`-labeled dead-end branch at every even node (realistic
    // noise the recursive query must visit and abandon).
    let depth = 20usize; // backbone has 2·depth edges
    let mut inst = Instance::new();
    let v0 = inst.add_named_node("v0");
    let mut prev = v0;
    let mut evens = vec![v0];
    for i in 1..=2 * depth {
        let v = inst.add_named_node(&format!("v{i}"));
        inst.add_edge(prev, if i % 2 == 1 { a } else { b }, v);
        if i % 2 == 0 {
            evens.push(v);
            let trap = inst.add_node();
            inst.add_edge(v, a, trap);
        }
        prev = v;
    }
    // Materialize the cache: the answers of (a.b)* at v0 are exactly the
    // even backbone nodes, each given a direct l-edge. The path equality
    // l = (a.b)* then genuinely holds at v0.
    for &e in &evens {
        inst.add_edge(v0, cache_label, e);
    }
    let src = v0;
    let cached_query = parse_regex(&mut ab, "(a.b)*").unwrap();
    {
        // sanity: the constraint holds in the data
        let direct = rpq::core::eval_product(&Nfa::thompson(&cached_query), &inst, src).answers;
        let via_l = inst.word_targets(src, &[cache_label]);
        assert_eq!(direct, via_l);
    }
    println!(
        "site: {} nodes, {} edges; cache constraint l = (a.b)* holds at the source",
        inst.num_nodes(),
        inst.num_edges()
    );

    // --- the optimizer derives the paper's rewrites ------------------------
    let e = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    // Example 3's shape: a(ba)*b = (ab)⁺ = (ab)*·(ab) → l.a.b
    let q3 = parse_regex(&mut ab, "a.(b.a)*.b").unwrap();
    let opt3 = optimize(&e, &q3, &ab, &Budget::default());
    println!(
        "query {} optimized to {} (rule {:?})",
        q3.display(&ab),
        opt3.query.display(&ab),
        opt3.applied
    );
    assert!(opt3.improved());

    // The full cache hit: the cached query itself becomes a single hop.
    let q = parse_regex(&mut ab, "(a.b)*").unwrap();
    let opt = optimize(&e, &q, &ab, &Budget::default());
    println!(
        "query {} optimized to {} (rule {:?})",
        q.display(&ab),
        opt.query.display(&ab),
        opt.applied
    );
    assert!(opt.improved());

    // --- distributed evaluation with and without the rewrite hook ----------
    let mut plain = Simulator::new(&inst, &ab, Delivery::Fifo);
    let before = plain.run(src, &q);

    let cache = RewriteCache::new(&e, &ab, Budget::default());
    let src_site = src.0;
    let hook = move |site, incoming: &rpq::automata::Regex| {
        // the constraint holds at the source site only
        if site == src_site {
            cache.rewrite(incoming)
        } else {
            incoming.clone()
        }
    };
    let mut optimized = Simulator::new(&inst, &ab, Delivery::Fifo).with_rewrite(hook);
    let after = optimized.run(src, &q);

    assert_eq!(
        before.answers, after.answers,
        "rewrites must preserve answers"
    );
    println!(
        "distributed run: {} answers;  messages without rewrite: {} ({} bytes)",
        before.answers.len(),
        before.stats.total(),
        before.stats.bytes
    );
    println!(
        "                              messages with    rewrite: {} ({} bytes)",
        after.stats.total(),
        after.stats.bytes
    );
    let saved = before.stats.total() as f64 - after.stats.total() as f64;
    println!(
        "savings: {:.1}% of messages",
        100.0 * saved / before.stats.total() as f64
    );
    assert!(after.stats.total() < before.stats.total());
}
