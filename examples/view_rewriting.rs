//! Answering path queries from cached views (Section 5's combination
//! search), end to end: extract caches, search total and partial covers,
//! verify them, and measure the distributed payoff.
//!
//! ```sh
//! cargo run --example view_rewriting
//! ```

use rpq::automata::{parse_regex, Alphabet, Regex};
use rpq::constraints::ConstraintSet;
use rpq::distributed::{run_and_check, Delivery, Simulator};
use rpq::optimizer::{cache_defs, rewrite_with_views, ViewKind, ViewSearchConfig};

fn main() {
    // Two caches at the source site: l1 materializes (a.b)*, l2 does (c.d)*.
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["l1 = (a.b)*", "l2 = (c.d)*"]).unwrap();
    println!("caches found:");
    for d in cache_defs(&set) {
        println!("  {} = {}", ab.name(d.label), d.body.display(&ab));
    }

    // --- a total cover: both arms come from caches -------------------------
    let q = parse_regex(&mut ab, "a.(b.a)*.x + c.(d.c)*.y").unwrap();
    println!("\ntarget: {}", q.display(&ab));
    for r in rewrite_with_views(&set, &q, &ab, &ViewSearchConfig::default()) {
        println!(
            "  candidate: {:<24} kind={:?} uses={:?} proof={} score={}",
            format!("{}", r.query.display(&ab)),
            r.kind,
            r.uses.iter().map(|&s| ab.name(s)).collect::<Vec<_>>(),
            r.proof,
            r.cost.score()
        );
    }

    // --- a partial cover: one arm stays cache-free -------------------------
    let q2 = parse_regex(&mut ab, "a.(b.a)*.x + z.z").unwrap();
    println!("\ntarget: {}  (the z.z arm has no cache)", q2.display(&ab));
    let rs = rewrite_with_views(&set, &q2, &ab, &ViewSearchConfig::default());
    let best = rs.first().expect("a partial cover");
    assert_eq!(best.kind, ViewKind::Partial);
    println!("  best: {}  (partial cover)", best.query.display(&ab));

    // --- the distributed payoff -------------------------------------------
    // Build a site where l1 really is the cache of (a.b)*: backbone plus
    // l1-edges to every (a.b)*-reachable node, then x-tails.
    let a = ab.get("a").unwrap();
    let b = ab.get("b").unwrap();
    let l1 = ab.get("l1").unwrap();
    let x = ab.get("x").unwrap();
    let mut inst = rpq::graph::Instance::new();
    let v0 = inst.add_named_node("v0");
    let mut prev = v0;
    let mut evens = vec![v0];
    for i in 1..=16 {
        let v = inst.add_named_node(&format!("v{i}"));
        inst.add_edge(prev, if i % 2 == 1 { a } else { b }, v);
        if i % 2 == 0 {
            evens.push(v);
        }
        prev = v;
    }
    for &e in &evens {
        inst.add_edge(v0, l1, e);
        let t = inst.add_node();
        inst.add_edge(e, x, t);
    }
    let site_set = ConstraintSet::parse(&mut ab, ["l1 = (a.b)*"]).unwrap();
    assert!(site_set.holds_at(&inst, v0), "cache constraint must hold");

    let q3 = parse_regex(&mut ab, "(a.b)*.x").unwrap();
    let rewriting = rewrite_with_views(&site_set, &q3, &ab, &ViewSearchConfig::default())
        .into_iter()
        .next()
        .expect("view rewriting for (a.b)*.x");
    println!(
        "\ndistributed run of {}   vs   rewritten {}:",
        q3.display(&ab),
        rewriting.query.display(&ab)
    );

    let plain = run_and_check(&inst, &ab, v0, &q3, Delivery::Fifo);
    let src = v0.0;
    let q3c = q3.clone();
    let rq = rewriting.query.clone();
    let hook = move |site: u32, incoming: &Regex| -> Regex {
        if site == src && incoming == &q3c {
            rq.clone()
        } else {
            incoming.clone()
        }
    };
    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo).with_rewrite(hook);
    let optimized = sim.run(v0, &q3);
    assert_eq!(optimized.answers, plain.answers);
    println!(
        "  plain:     {:>4} messages / {:>6} bytes",
        plain.stats.total(),
        plain.stats.bytes
    );
    println!(
        "  optimized: {:>4} messages / {:>6} bytes   ({}% fewer messages)",
        optimized.stats.total(),
        optimized.stats.bytes,
        100 * (plain.stats.total() - optimized.stats.total()) / plain.stats.total()
    );
}
