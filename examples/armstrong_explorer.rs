//! Section 4.3: build Armstrong instances for word equalities, inspect
//! their K-sphere structure (Lemma 4.9 / Figure 5), and check
//! Proposition 4.8 on the truncation.
//!
//! ```sh
//! cargo run --example armstrong_explorer
//! ```

use rpq::automata::Alphabet;
use rpq::constraints::implication::word_implies_word_eq;
use rpq::constraints::{suggested_radius, ArmstrongSphere, ConstraintSet};

fn main() {
    let systems: &[&[&str]] = &[
        &["a.a = a"],
        &["a.a.a = ()"],
        &["a.b = b.a"],
        &["b.a = a", "b.b = b"],
    ];

    for lines in systems {
        let mut ab = Alphabet::new();
        let set = ConstraintSet::parse(&mut ab, lines.iter().copied()).unwrap();
        let syms: Vec<_> = ab.symbols().collect();
        let k = suggested_radius(&set);
        let radius = (k + 2).min(10);
        let sphere = ArmstrongSphere::build(&set, &syms, radius, 100_000).unwrap();

        println!("E = {lines:?}");
        println!(
            "  K (Lemma 4.9) = {k}; materialized radius {radius}: {} classes",
            sphere.num_nodes()
        );
        for n in 0..sphere.num_nodes().min(8) {
            let succ: Vec<String> = sphere.edges[n]
                .iter()
                .map(|&(a, m)| format!("--{}--> {}", ab.name(a), ab.render_word(&sphere.reps[m])))
                .collect();
            println!(
                "    [{}]  depth {}  {}",
                ab.render_word(&sphere.reps[n]),
                sphere.depth[n],
                succ.join("  ")
            );
        }
        let m = set.max_word_len();
        println!(
            "  Lemma 4.9 checks: indegree-1 violations outside M-sphere: {}; re-entry edges past K: {}",
            sphere.indegree_violations(m).len(),
            sphere.reentry_violations(k.min(radius.saturating_sub(1))).len()
        );

        // Proposition 4.8 on short words: same class ⇔ implied equality.
        let mut ok = 0;
        let mut total = 0;
        let mut words: Vec<Vec<_>> = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &words {
                for &s in &syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next);
        }
        for u in &words {
            for v in &words {
                let (Some(cu), Some(cv)) = (sphere.class_of_word(u), sphere.class_of_word(v))
                else {
                    continue;
                };
                total += 1;
                if (cu == cv) == word_implies_word_eq(&set, u, v) {
                    ok += 1;
                }
            }
        }
        println!("  Proposition 4.8 agreement on {total} word pairs: {ok}/{total}\n");
        assert_eq!(ok, total);
    }
}
