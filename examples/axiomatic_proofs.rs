//! Axiomatic proofs of path-constraint implication, with derivation trees.
//!
//! Section 5 of the paper asks for "a sound and (if possible) complete
//! axiomatization for path constraint implication … such an axiomatization
//! may yield rewrite rules of practical use." This example runs the sound
//! inference system of `rpq::constraints::axioms` on the paper's worked
//! examples and prints the proofs it finds.
//!
//! ```sh
//! cargo run --example axiomatic_proofs
//! ```

use rpq::automata::{parse_regex, Alphabet};
use rpq::constraints::axioms::{Prover, ProverConfig};
use rpq::constraints::ConstraintSet;

fn main() {
    // --- Example 2 of Section 3.2: {ll ⊆ l} ⊨ l* = l + ε ------------------
    let mut ab = Alphabet::new();
    let e2 = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
    let prover = Prover::new(&e2, ProverConfig::default());
    let l_star = parse_regex(&mut ab, "l*").unwrap();
    let l_eps = parse_regex(&mut ab, "l + ()").unwrap();

    println!("=== Example 2: {{l·l ⊆ l}} ⊢ l* ⊆ l + ε ===");
    let d = prover
        .prove_inclusion(&l_star, &l_eps)
        .expect("the star-induction proof");
    print!("{}", d.render(&ab));
    assert!(d.verify(&prover));
    println!(
        "(proof: {} nodes, depth {}; the reverse inclusion is a language fact)\n",
        d.num_nodes(),
        d.depth()
    );

    // --- Example 3: the cached query {l = (ab)*} ⊨ a(ba)*c = l·a·c --------
    let mut ab = Alphabet::new();
    let e3 = ConstraintSet::parse(&mut ab, ["l = (a.b)*"]).unwrap();
    let prover = Prover::new(&e3, ProverConfig::default());
    let p = parse_regex(&mut ab, "a.(b.a)*.c").unwrap();
    let q = parse_regex(&mut ab, "l.a.c").unwrap();

    println!("=== Example 3: {{l = (ab)*}} ⊢ a(ba)*c = l·a·c ===");
    for (x, y, dir) in [(&p, &q, "⊆"), (&q, &p, "⊇")] {
        let d = prover.prove_inclusion(x, y).expect("cache proof");
        println!("--- direction {dir} ---");
        print!("{}", d.render(&ab));
        assert!(d.verify(&prover));
    }
    println!();

    // --- The corrected Example 1: Σ*l ⊆ ε gives a nonrecursive envelope ---
    let mut ab = Alphabet::new();
    let e1 = ConstraintSet::parse(&mut ab, ["(l+a+b+d)*.l <= ()"]).unwrap();
    let prover = Prover::new(&e1, ProverConfig::default());
    let p = parse_regex(&mut ab, "(l.a + l.b)*.d").unwrap();
    let q = parse_regex(&mut ab, "(() + a + b).d").unwrap();

    println!("=== Example 1 (corrected): {{Σ*·l ⊆ ε}} ⊢ (la+lb)*d ⊆ (ε+a+b)d ===");
    let d = prover.prove_inclusion(&p, &q).expect("envelope proof");
    print!("{}", d.render(&ab));
    assert!(d.verify(&prover));

    // --- and a goal the system must NOT prove -----------------------------
    let mut ab = Alphabet::new();
    let e = ConstraintSet::parse(&mut ab, ["a <= b"]).unwrap();
    let prover = Prover::new(&e, ProverConfig::default());
    let b = parse_regex(&mut ab, "b").unwrap();
    let a = parse_regex(&mut ab, "a").unwrap();
    assert!(prover.prove_inclusion(&b, &a).is_none());
    println!("\n{{a ⊆ b}} ⊬ b ⊆ a   (sound: no proof found, and indeed refutable)");
}
