//! The Section 5 special case: sites with at most one outgoing edge per
//! label. On such *deterministic* instances every word denotes at most one
//! object, implication strengthens, and the decision procedure collapses
//! to congruence closure.
//!
//! ```sh
//! cargo run --example deterministic_sites
//! ```

use rpq::automata::{parse_word, Alphabet};
use rpq::constraints::deterministic::{det_implies_word, DetImplication, DetModel};
use rpq::constraints::implication::word_implies_word;
use rpq::constraints::ConstraintSet;

fn main() {
    // A site where both the page `a` and the page `a.x` are declared to be
    // covered by the cached link `c`.
    let mut ab = Alphabet::new();
    let set = ConstraintSet::parse(&mut ab, ["a <= c", "a.x <= c"]).unwrap();
    let ax = parse_word(&mut ab, "a.x").unwrap();
    let a = parse_word(&mut ab, "a").unwrap();

    println!("E = {{ a ⊆ c,  a·x ⊆ c }}");
    println!("question: does E imply  a·x ⊆ a ?\n");

    // General instances: no — c(o) may contain both targets.
    let general = word_implies_word(&set, &ax, &a);
    println!("over ALL instances (Theorem 4.3):        {general}");
    assert!(!general);

    // Deterministic instances: yes — a, a·x and c all hit the single
    // c-object, so they coincide (the singleton-target contraction).
    let det = det_implies_word(&set, &ax, &a);
    println!(
        "over DETERMINISTIC instances (Section 5): {}",
        det.is_implied()
    );
    assert!(det.is_implied());

    // Show the canonical deterministic model the procedure builds.
    let mut model = DetModel::for_premise(&set, &ax);
    println!(
        "\ncanonical deterministic model: {} object classes;",
        model.num_classes()
    );
    for (u, v) in [("a", "c"), ("a", "a.x"), ("a.x", "c")] {
        let uw = parse_word(&mut ab, u).unwrap();
        let vw = parse_word(&mut ab, v).unwrap();
        println!("  {u} ≡ {v}?  {}", model.same(&uw, &vw));
    }

    // And a refuted implication comes with a concrete deterministic site.
    let b_only = ConstraintSet::parse(&mut ab, ["a <= b"]).unwrap();
    let b = parse_word(&mut ab, "b").unwrap();
    match det_implies_word(&b_only, &b, &a) {
        DetImplication::Implied => unreachable!("b ⊆ a does not follow from a ⊆ b"),
        DetImplication::Refuted(w) => {
            println!(
                "\n{{a ⊆ b}} ⊭_det b ⊆ a — counterexample site with {} objects, {} links:",
                w.instance.num_nodes(),
                w.instance.num_edges()
            );
            for (from, label, to) in w.instance.edges() {
                println!(
                    "  {} -{}-> {}",
                    w.instance.node_name(from),
                    ab.name(label),
                    w.instance.node_name(to)
                );
            }
            assert!(b_only.holds_at(&w.instance, w.source));
        }
    }

    println!(
        "\nTakeaway: determinism upgrades inclusions to equalities (when the left\n\
         word is defined) and contracts words sharing a singleton target — the\n\
         paper's conjecture that this case 'may simplify some of the problems'\n\
         holds: the decision procedure is plain congruence closure, in PTIME."
    );
}
