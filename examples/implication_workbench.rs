//! A workbench for the Section 4 implication machinery: word constraints
//! (PTIME), path-by-word constraints (PSPACE), general constraints
//! (Theorem 4.2's budgeted engine), with derivation certificates and
//! counterexample witnesses.
//!
//! ```sh
//! cargo run --example implication_workbench
//! ```

use rpq::automata::{parse_regex, parse_word, Alphabet};
use rpq::constraints::general::{check, Budget, Refutation, Verdict};
use rpq::constraints::rewrite::RewriteSystem;
use rpq::constraints::{parse_constraint, ConstraintSet, WordImplication};

fn main() {
    // --- word constraints: PTIME with certificates --------------------------
    let mut ab = Alphabet::new();
    let e = ConstraintSet::parse(&mut ab, ["u1 <= u2", "u2.u3 <= u4"]).unwrap();
    let rules = RewriteSystem::from_constraints(&e);
    let u = parse_word(&mut ab, "u1.u3.u5").unwrap();
    let v = parse_word(&mut ab, "u4.u5").unwrap();
    println!("E = {{u1 ⊆ u2, u2.u3 ⊆ u4}}");
    match rules.derive(&u, &v, 100_000) {
        Some(chain) => {
            println!("E ⊨ u1.u3.u5 ⊆ u4.u5, derivation certificate:");
            for step in &chain {
                println!("    {}", ab.render_word(step));
            }
        }
        None => println!("no derivation"),
    }

    // --- path constraint implied by word constraints (Theorem 4.3 ii) ------
    let e2 = ConstraintSet::parse(&mut ab, ["l.l <= l"]).unwrap();
    let p = parse_regex(&mut ab, "l*").unwrap();
    let q = parse_regex(&mut ab, "l + ()").unwrap();
    println!("\nE = {{l.l ⊆ l}}: is l* = l + ε implied?");
    for (x, y, name) in [(&p, &q, "l* ⊆ l+ε"), (&q, &p, "l+ε ⊆ l*")] {
        match rpq::constraints::word_implies_path(&e2, x, y) {
            WordImplication::Implied => println!("    {name}: IMPLIED"),
            WordImplication::Refuted(w) => {
                println!("    {name}: refuted by {}", ab.render_word(&w))
            }
        }
    }

    // --- the general engine on the paper's three §3.2 examples --------------
    println!("\nTheorem 4.2 engine on the Section 3.2 examples:");
    let budget = Budget::default();

    // Example 1 — as literally stated (fails), and the sound direction.
    let mut ab1 = Alphabet::new();
    let e_x1 = ConstraintSet::parse(&mut ab1, ["(a+b+d+l)*.l = ()"]).unwrap();
    let literal = parse_constraint(&mut ab1, "(l.a + l.b)*.d = (a+b).d").unwrap();
    match check(&e_x1, &literal, &budget) {
        Verdict::Refuted(Refutation::Instance(w)) => println!(
            "  X1 literal claim REFUTED by a {}-node witness instance (see DESIGN.md)",
            w.instance.num_nodes()
        ),
        other => println!("  X1 literal: {other:?}"),
    }
    let e_x1b = ConstraintSet::parse(&mut ab1, ["(a+b+d+l)*.l <= ()"]).unwrap();
    let sound = parse_constraint(&mut ab1, "(l.a + l.b)*.d <= (() + a + b).d").unwrap();
    match check(&e_x1b, &sound, &budget) {
        Verdict::Implied { method } => {
            println!("  X1 sound direction PROVED ({method})")
        }
        other => println!("  X1 sound direction: {other:?}"),
    }

    // Example 2.
    let mut ab2 = Alphabet::new();
    let e_x2 = ConstraintSet::parse(&mut ab2, ["l.l <= l"]).unwrap();
    let x2 = parse_constraint(&mut ab2, "l* = l + ()").unwrap();
    match check(&e_x2, &x2, &budget) {
        Verdict::Implied { method } => println!("  X2 {{ll ⊆ l}} ⊨ l* = l+ε PROVED ({method})"),
        other => println!("  X2: {other:?}"),
    }

    // Example 3.
    let mut ab3 = Alphabet::new();
    let e_x3 = ConstraintSet::parse(&mut ab3, ["l = (a.b)*"]).unwrap();
    let x3 = parse_constraint(&mut ab3, "a.(b.a)*.c = l.a.c").unwrap();
    match check(&e_x3, &x3, &budget) {
        Verdict::Implied { method } => {
            println!("  X3 {{l = (ab)*}} ⊨ a(ba)*c = l.a.c PROVED ({method})")
        }
        other => println!("  X3: {other:?}"),
    }
    // --- the FO² view (Section 4's logic connection) -----------------------
    // Word-constraint implication is expressible with two variables; the
    // encoder + bounded countermodel search cross-check the PTIME route.
    use rpq::constraints::{bounded_countermodel, refutation_sentence};
    println!("\n— the FO² connection (Section 4) —");
    let mut ab = Alphabet::new();
    let e = ConstraintSet::parse(&mut ab, ["a <= b"]).unwrap();
    let u = parse_word(&mut ab, "b").unwrap();
    let v = parse_word(&mut ab, "a").unwrap();
    let labels: Vec<_> = ab.symbols().collect();
    let sentence = refutation_sentence(&e, &u, &v);
    println!(
        "refutation sentence for {{a ⊆ b}} ⊨? b ⊆ a uses {} quantifiers (2 variables)",
        sentence.quantifier_count()
    );
    match bounded_countermodel(&e, &u, &v, &labels, 2) {
        Some((inst, _)) => println!(
            "FO² countermodel found: {} nodes / {} edges — the implication FAILS,\n\
             agreeing with the PTIME rewrite procedure",
            inst.num_nodes(),
            inst.num_edges()
        ),
        None => println!("no countermodel ≤ 2 nodes"),
    }
}
