//! The distributed evaluation scenario of Section 3.1, reproducing the
//! Figure 2 graph and a Figure-3-style message trace, then scaling up to a
//! synthetic web graph and cross-checking the threaded runner.
//!
//! ```sh
//! cargo run --example distributed_crawl
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpq::automata::{parse_regex, Alphabet};
use rpq::distributed::{render_trace, run_and_check, run_threaded, Delivery, Simulator};
use rpq::graph::generators::{fig2_graph, web_graph};

fn main() {
    // --- Figures 2 & 3 ----------------------------------------------------
    let mut ab = Alphabet::new();
    let (inst, _d, o1) = fig2_graph(&mut ab);
    let q = parse_regex(&mut ab, "a.b*").unwrap();

    println!("== Figure 2 graph, query ab* asked by d at o1 ==");
    let mut sim = Simulator::new(&inst, &ab, Delivery::Fifo);
    let client = sim.client;
    let res = sim.run(o1, &q);
    print!("{}", render_trace(&res.trace, &ab, &inst, client));
    println!(
        "answers: {:?}",
        res.answers
            .iter()
            .map(|&o| inst.node_name(o))
            .collect::<Vec<_>>()
    );
    println!(
        "messages: {} total ({} subquery / {} answer / {} done / {} akn), {} bytes",
        res.stats.total(),
        res.stats.subqueries,
        res.stats.answers,
        res.stats.dones,
        res.stats.acks,
        res.stats.bytes
    );
    println!(
        "termination detected by the protocol itself: {}\n",
        res.termination_detected
    );

    // --- asynchrony does not change the answer ----------------------------
    println!("== same run under random message latencies ==");
    for seed in [1, 2, 3] {
        let r = run_and_check(
            &inst,
            &ab,
            o1,
            &q,
            Delivery::Random {
                seed,
                max_latency: 9,
            },
        );
        println!(
            "seed {seed}: {} messages, answers {:?}",
            r.stats.total(),
            r.answers
                .iter()
                .map(|&o| inst.node_name(o))
                .collect::<Vec<_>>()
        );
    }

    // --- a larger crawl ----------------------------------------------------
    println!("\n== synthetic web, 200 sites, query l0.(l1+l2)* ==");
    let mut ab2 = Alphabet::new();
    let labels: Vec<_> = (0..3).map(|i| ab2.intern(&format!("l{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let (web, src) = web_graph(&mut rng, 200, 2, &labels);
    let q2 = parse_regex(&mut ab2, "l0.(l1+l2)*").unwrap();
    let r = run_and_check(&web, &ab2, src, &q2, Delivery::Fifo);
    println!(
        "answers: {}   messages: {}   registered subquery tasks: {}",
        r.answers.len(),
        r.stats.total(),
        r.tasks_registered
    );

    // --- the genuinely concurrent runner agrees ---------------------------
    let threaded = run_threaded(&web, src, &q2);
    assert_eq!(threaded.answers, r.answers);
    println!(
        "threaded runner (one OS thread per site): {} messages, same answers ✓",
        threaded.messages
    );
}
